//! The parallel experiment harness's determinism contract, end to end:
//! every study must be **byte-identical** at any worker count, because the
//! pool forks per-sample seeds up-front and collects results in index
//! order (see `acorr_sim::pool`).

use active_correlation_tracking::apps;
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::place::Strategy;

fn bench(jobs: usize) -> Workbench {
    Workbench::new(4, 16).unwrap().with_threads(jobs)
}

#[test]
fn cutcost_study_is_bit_identical_across_worker_counts() {
    let app = || apps::by_name("SOR", 16).expect("known app");
    let seq = bench(1).cutcost_study(app, 12, 1).unwrap();
    for jobs in [2, 4] {
        let par = bench(jobs).cutcost_study(app, 12, 1).unwrap();
        // Full sample list, least-squares fit, and the CSV artifact the
        // bench binaries write must all match byte-for-byte.
        assert_eq!(seq.samples, par.samples, "jobs={jobs}");
        assert_eq!(seq.fit, par.fit, "jobs={jobs}");
        assert_eq!(seq.to_csv(), par.to_csv(), "jobs={jobs}");
    }
}

#[test]
fn heuristic_comparison_is_bit_identical_across_worker_counts() {
    let app = || apps::by_name("Water", 16).expect("known app");
    let strategies = [Strategy::MinCost, Strategy::RandomBalanced];
    let seq = bench(1).heuristic_comparison(app, &strategies, 2).unwrap();
    let par = bench(4).heuristic_comparison(app, &strategies, 2).unwrap();
    assert_eq!(seq, par);
}

#[test]
fn passive_study_is_bit_identical_across_worker_counts() {
    let app = || apps::by_name("FFT7", 16).expect("known app");
    let seq = bench(1).passive_study(app, 3).unwrap();
    let par = bench(4).passive_study(app, 3).unwrap();
    assert_eq!(seq.completeness, par.completeness);
    assert_eq!(seq.moves, par.moves);
}
