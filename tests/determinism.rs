//! The parallel experiment harness's determinism contract, end to end:
//! every study must be **byte-identical** at any worker count, because the
//! pool forks per-sample seeds up-front and collects results in index
//! order (see `acorr_sim::pool`).

use active_correlation_tracking::apps;
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::place::Strategy;

fn bench(jobs: usize) -> Workbench {
    Workbench::new(4, 16).unwrap().with_threads(jobs)
}

#[test]
fn cutcost_study_is_bit_identical_across_worker_counts() {
    let app = || apps::by_name("SOR", 16).expect("known app");
    let seq = bench(1).cutcost_study(app, 12, 1).unwrap();
    for jobs in [2, 4] {
        let par = bench(jobs).cutcost_study(app, 12, 1).unwrap();
        // Full sample list, least-squares fit, and the CSV artifact the
        // bench binaries write must all match byte-for-byte.
        assert_eq!(seq.samples, par.samples, "jobs={jobs}");
        assert_eq!(seq.fit, par.fit, "jobs={jobs}");
        assert_eq!(seq.to_csv(), par.to_csv(), "jobs={jobs}");
    }
}

#[test]
fn heuristic_comparison_is_bit_identical_across_worker_counts() {
    let app = || apps::by_name("Water", 16).expect("known app");
    let strategies = [Strategy::MinCost, Strategy::RandomBalanced];
    let seq = bench(1).heuristic_comparison(app, &strategies, 2).unwrap();
    let par = bench(4).heuristic_comparison(app, &strategies, 2).unwrap();
    assert_eq!(seq, par);
}

#[test]
fn passive_study_is_bit_identical_across_worker_counts() {
    let app = || apps::by_name("FFT7", 16).expect("known app");
    let seq = bench(1).passive_study(app, 3).unwrap();
    let par = bench(4).passive_study(app, 3).unwrap();
    assert_eq!(seq.completeness, par.completeness);
    assert_eq!(seq.moves, par.moves);
}

// ---------------------------------------------------------------------
// The online placement service: the whole decision loop is a pure
// function of (seed, scenario, jobs) — the decision timeline and the
// final mapping must be byte-identical at any worker count and across
// reruns with a fixed seed.
// ---------------------------------------------------------------------

use active_correlation_tracking::place::MigrationPolicy;
use active_correlation_tracking::sim::Scenario;
use active_correlation_tracking::ServeOptions;

fn serve_bench(jobs: usize) -> Workbench {
    Workbench::new(8, 64).unwrap().with_threads(jobs)
}

#[test]
fn serve_timeline_is_bit_identical_across_worker_counts() {
    for scenario in [Scenario::Hotspot, Scenario::Churn] {
        for policy in [MigrationPolicy::Greedy, MigrationPolicy::Interchange] {
            let options = ServeOptions::new(scenario).with_policy(policy);
            let seq = serve_bench(1).serve_traffic(&options);
            for jobs in [4, 8] {
                let par = serve_bench(jobs).serve_traffic(&options);
                assert_eq!(
                    seq.timeline_text(),
                    par.timeline_text(),
                    "{scenario}/{policy} jobs={jobs}"
                );
                assert_eq!(
                    seq.final_mapping, par.final_mapping,
                    "{scenario}/{policy} jobs={jobs}"
                );
                assert_eq!(
                    seq.snapshot(),
                    par.snapshot(),
                    "{scenario}/{policy} jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn serve_reruns_with_a_fixed_seed_are_identical() {
    let options = ServeOptions::new(Scenario::Churn);
    let run = || serve_bench(4).with_seed(0xFEED).serve_traffic(&options);
    let (a, b) = (run(), run());
    assert_eq!(a.snapshot(), b.snapshot());
    assert_eq!(a.timeline_digest(), b.timeline_digest());
    assert_eq!(a.final_mapping, b.final_mapping);
    assert_eq!(a.served_cut, b.served_cut);
}

#[test]
fn serve_seed_actually_matters() {
    // Churn draws its matchings from the seed: two different seeds must
    // not produce the same timeline (guards against a driver that
    // silently ignores the workbench seed).
    let options = ServeOptions::new(Scenario::Churn);
    let a = serve_bench(1).with_seed(1).serve_traffic(&options);
    let b = serve_bench(1).with_seed(2).serve_traffic(&options);
    assert_ne!(a.snapshot(), b.snapshot());
}
