//! End-to-end tests of the schedule-space exploration engine: the clean
//! suite stays clean under steered schedules and both protocols, the
//! seeded [`Racey`](acorr::apps::Racey) fixture is found, shrunk to a
//! minimal replay token, and the token reproduces deterministically.

use acorr::apps::{Barnes, Fft, Lu, Ocean, Racey, Sor, Spatial, Water};
use acorr::dsm::Program;
use acorr::explore::{ExploreOptions, FailureKind};
use acorr::place::Strategy;
use acorr::sched::{ExploreMode, Schedule};
use acorr::Workbench;

fn racey_bench() -> Workbench {
    // Both Racey threads must share a node for dispatch order to be
    // steerable.
    Workbench::new(1, 2).unwrap()
}

#[test]
fn seeded_race_is_found_shrunk_and_token_replays_deterministically() {
    let options = ExploreOptions {
        budget: 16,
        iterations: 1,
        mode: ExploreMode::Systematic { preemptions: 1 },
        ..ExploreOptions::default()
    };
    let report = racey_bench().explore_run(|| Racey, &options).unwrap();
    assert_eq!(report.app, "Racey");
    // The default schedule orders the writes through the lock: no
    // structural races in the baseline.
    assert_eq!(report.baseline_races, (0, 0));
    let failure = report.failure.expect("the seeded race must be found");
    assert_eq!(failure.kind, FailureKind::NewRace);
    assert!(
        failure.detail.contains("write-write race"),
        "{}",
        failure.detail
    );
    // Shrunk to the single decision that matters: dispatch thread 1 first.
    assert_eq!(failure.token, "s1:1");

    // The token replays byte-for-byte: same kind, same detail.
    let replay = ExploreOptions {
        replay: Some(Schedule::parse_token(&failure.token).unwrap()),
        ..options.clone()
    };
    for _ in 0..2 {
        let replayed = racey_bench().explore_run(|| Racey, &replay).unwrap();
        let found = replayed.failure.expect("replay reproduces the failure");
        assert_eq!(found.token, failure.token);
        assert_eq!(found.kind, failure.kind);
        assert_eq!(found.write_mode, failure.write_mode);
        assert_eq!(found.detail, failure.detail);
    }

    // Exploration itself is deterministic end to end.
    let again = racey_bench().explore_run(|| Racey, &options).unwrap();
    assert_eq!(again.failure, Some(failure));
    assert_eq!(again.schedules_run, report.schedules_run);
}

#[test]
fn random_mode_also_finds_the_seeded_race() {
    let options = ExploreOptions {
        budget: 12,
        iterations: 1,
        mode: ExploreMode::Random { seed: 11 },
        ..ExploreOptions::default()
    };
    let report = racey_bench().explore_run(|| Racey, &options).unwrap();
    let failure = report.failure.expect("random exploration finds the race");
    assert_eq!(failure.kind, FailureKind::NewRace);
    // Random-tail failures are concretized before shrinking, so the token
    // is the same minimal prefix.
    assert_eq!(failure.token, "s1:1");
}

#[test]
fn mini_suite_is_schedule_clean_under_both_protocols() {
    let bench = Workbench::new(2, 8).unwrap();
    let options = ExploreOptions {
        budget: 3,
        iterations: 1,
        mode: ExploreMode::Random { seed: 5 },
        ..ExploreOptions::default()
    };
    // The mini suite, as fresh-instance factories (the explored runs each
    // build their own DSM instance, so the factory must be re-invocable).
    let minis: Vec<fn() -> Box<dyn Program>> = vec![
        || Box::new(Barnes::new(1024, 8)),
        || Box::new(Fft::new("FFT-mini", 16, 16, 16, 8)),
        || Box::new(Lu::new("LU-mini", 256, 8)),
        || Box::new(Ocean::new(64, 8)),
        || Box::new(Spatial::new(8)),
        || Box::new(Sor::new(256, 256, 8)),
        || Box::new(Water::new(128, 8)),
    ];
    for factory in minis {
        let name = factory().name().to_owned();
        let report = bench.explore_run(factory, &options).unwrap();
        assert!(
            report.failure.is_none(),
            "{name}: {}",
            report.failure.unwrap()
        );
        assert_eq!(report.schedules_run, 3, "{name}");
        assert!(report.decision_points > 0, "{name}");
    }
}

#[test]
fn systematic_mode_keeps_sor_clean() {
    let bench = Workbench::new(2, 8).unwrap();
    let options = ExploreOptions {
        budget: 4,
        iterations: 1,
        mode: ExploreMode::Systematic { preemptions: 1 },
        ..ExploreOptions::default()
    };
    let report = bench.explore_run(|| Sor::new(64, 64, 8), &options).unwrap();
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    assert!(report.schedules_run >= 2, "systematic frontier expands");
}

#[test]
fn parallel_jobs_reports_are_bit_identical_to_serial() {
    // A failing exploration (Racey, systematic): schedules_run, the shrunk
    // token, kind, detail — the whole report — must not depend on the job
    // count.
    let failing = ExploreOptions {
        budget: 16,
        iterations: 1,
        mode: ExploreMode::Systematic { preemptions: 1 },
        ..ExploreOptions::default()
    };
    let serial = racey_bench().explore_run(|| Racey, &failing).unwrap();
    assert!(serial.failure.is_some());
    for jobs in [4, 8] {
        let parallel = racey_bench()
            .explore_run(
                || Racey,
                &ExploreOptions {
                    jobs,
                    ..failing.clone()
                },
            )
            .unwrap();
        assert_eq!(parallel, serial, "jobs={jobs}");
    }

    // A clean exploration (SOR, random): every schedule runs; the report
    // must again be independent of the job count.
    let bench = Workbench::new(2, 8).unwrap();
    let clean = ExploreOptions {
        budget: 6,
        iterations: 1,
        mode: ExploreMode::Random { seed: 5 },
        ..ExploreOptions::default()
    };
    let serial = bench.explore_run(|| Sor::new(64, 64, 8), &clean).unwrap();
    assert!(serial.failure.is_none());
    assert_eq!(serial.schedules_run, 6);
    for jobs in [4, 8] {
        let parallel = bench
            .explore_run(
                || Sor::new(64, 64, 8),
                &ExploreOptions {
                    jobs,
                    ..clean.clone()
                },
            )
            .unwrap();
        assert_eq!(parallel, serial, "jobs={jobs}");
    }
}

#[test]
fn budget_one_default_schedule_matches_heuristic_comparison_bit_for_bit() {
    let bench = Workbench::new(2, 8).unwrap();
    let rows = bench
        .heuristic_comparison(|| Sor::new(64, 64, 8), &[Strategy::MinCost], 2)
        .unwrap();
    let report = bench
        .explore_run(
            || Sor::new(64, 64, 8),
            &ExploreOptions {
                budget: 1,
                iterations: 2,
                strategy: Strategy::MinCost,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
    assert_eq!(report.baseline, rows[0]);
    assert!(report.failure.is_none());
    assert_eq!(report.schedules_run, 1);
}
