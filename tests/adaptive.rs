//! The §7 future-work scenario end-to-end: dynamic sharing patterns,
//! periodic re-tracking, aged correlations, migration.

use active_correlation_tracking::apps::Drift;
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::track::CorrelationMatrix;

#[test]
fn drift_correlations_change_between_phases() {
    // Track the same application at two different phases: the measured
    // correlation structure must differ (this is what defeats track-once).
    let bench = Workbench::new(4, 16).unwrap();
    let make = || Drift::new(512, 16, 2);
    let mut dsm = bench
        .dsm(
            make(),
            active_correlation_tracking::sim::Mapping::stretch(&bench.cluster),
        )
        .unwrap();
    let (_, early) = dsm.run_tracked_iteration().unwrap();
    dsm.run_iterations(7).unwrap(); // cross several phase boundaries
    let (_, late) = dsm.run_tracked_iteration().unwrap();
    let early_corr = CorrelationMatrix::from_access(&early);
    let late_corr = CorrelationMatrix::from_access(&late);
    assert_ne!(early_corr, late_corr);
}

#[test]
fn adaptive_policy_beats_static_on_traffic() {
    let bench = Workbench::new(4, 16).unwrap();
    let period = 8;
    let study = bench
        .adaptive_study(|| Drift::new(512, 16, period), 4 * period, period, 0.25)
        .unwrap();
    assert!(
        study.adaptive_stats.remote_misses < study.static_stats.remote_misses,
        "adaptive {} vs static {}",
        study.adaptive_stats.remote_misses,
        study.static_stats.remote_misses
    );
    assert!(study.adaptive_migrations > 0, "it must actually migrate");
}

#[test]
fn track_once_cannot_follow_the_drift() {
    // Track-once helps at most briefly; over several phases it converges
    // to (or below) the static baseline.
    let bench = Workbench::new(4, 16).unwrap();
    let period = 6;
    let study = bench
        .adaptive_study(|| Drift::new(512, 16, period), 5 * period, period, 0.25)
        .unwrap();
    let static_m = study.static_stats.remote_misses as f64;
    let once_m = study.track_once_stats.remote_misses as f64;
    assert!(
        once_m > static_m * 0.8,
        "track-once ({once_m}) should not durably beat static ({static_m})"
    );
    assert!(
        (study.adaptive_stats.remote_misses as f64) < once_m,
        "adaptive must beat track-once"
    );
}

#[test]
fn study_charges_tracking_costs() {
    // The adaptive policy's stats include its tracked iterations: its
    // tracking-fault count must be nonzero while static's is zero.
    let bench = Workbench::new(4, 16).unwrap();
    let study = bench
        .adaptive_study(|| Drift::new(512, 16, 8), 16, 8, 0.25)
        .unwrap();
    assert_eq!(study.static_stats.tracking_faults, 0);
    assert!(study.adaptive_stats.tracking_faults > 0);
    assert!(study.track_once_stats.tracking_faults > 0);
}

#[test]
fn drift_triggered_retracking_spends_fewer_tracked_iterations() {
    // Long stable phases: the drift detector should re-track roughly once
    // per phase boundary instead of every window, at comparable traffic.
    let bench = Workbench::new(4, 16).unwrap();
    let period = 12; // three checking windows per phase
    let study = bench
        .on_demand_study(|| Drift::new(512, 16, period), 4 * period, 4, 0.4, 0.25)
        .unwrap();
    assert!(
        study.on_demand_tracks < study.scheduled_tracks,
        "on-demand {} vs scheduled {} tracked iterations",
        study.on_demand_tracks,
        study.scheduled_tracks
    );
    assert!(
        study.on_demand_tracks >= 1,
        "it must react to phase changes"
    );
    // Traffic stays in the same regime as the scheduled policy.
    assert!(
        (study.on_demand.remote_misses as f64) < study.scheduled.remote_misses as f64 * 1.6 + 100.0,
        "on-demand {} vs scheduled {}",
        study.on_demand.remote_misses,
        study.scheduled.remote_misses
    );
}

#[test]
fn drift_detector_stays_quiet_on_static_apps() {
    use active_correlation_tracking::apps::Sor;
    // A static application: after the calibration window, passive snapshots
    // repeat and the detector must never trigger again.
    let bench = Workbench::new(4, 16).unwrap();
    let study = bench
        .on_demand_study(|| Sor::new(256, 256, 16), 24, 4, 0.4, 0.25)
        .unwrap();
    assert!(
        study.on_demand_tracks <= 1,
        "static pattern: {} re-tracks",
        study.on_demand_tracks
    );
}
