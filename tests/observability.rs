//! Acceptance tests for the structured observability layer: sinks are pure
//! observers (bit-identical statistics and golden tables with observability
//! on or off, under fault injection, at any thread count), exported
//! artifacts are well-formed, and run manifests replay to matching digests.

use active_correlation_tracking::apps::{self, Sor};
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::obs::{self, json, ObsConfig, RunManifest};
use active_correlation_tracking::place::Strategy;
use active_correlation_tracking::sim::FaultPlan;

fn bench() -> Workbench {
    Workbench::new(4, 16).unwrap()
}

#[test]
fn observer_is_pure_under_every_fault_preset() {
    for spec in ["none", "light", "moderate", "heavy"] {
        let faults = FaultPlan::parse(spec).unwrap();
        let app = || apps::by_name("FFT6", 16).unwrap();
        let plain = bench()
            .with_faults(faults.clone())
            .observed_heuristic_run(app, Strategy::MinCost, 2)
            .unwrap();
        let observed = bench()
            .with_faults(faults.clone())
            .with_observer(ObsConfig::all())
            .observed_heuristic_run(app, Strategy::MinCost, 2)
            .unwrap();
        assert_eq!(plain.row, observed.row, "{spec}: row drifted");
        assert_eq!(plain.stats, observed.stats, "{spec}: stats drifted");
        assert!(plain.observation.is_none(), "{spec}");
        assert!(observed.observation.is_some(), "{spec}");

        // And the observed row still matches the un-instrumented Table 6
        // driver exactly.
        let rows = bench()
            .with_faults(faults)
            .heuristic_comparison(app, &[Strategy::MinCost], 2)
            .unwrap();
        assert_eq!(rows[0], observed.row, "{spec}: Table 6 row drifted");
    }
}

#[test]
fn observer_is_pure_at_every_thread_count() {
    let reference = bench()
        .with_faults(FaultPlan::heavy(11))
        .conformance_run(Sor::new(128, 128, 16), 2)
        .unwrap();
    for threads in [1, 2, 4] {
        let observed = bench()
            .with_threads(threads)
            .with_faults(FaultPlan::heavy(11))
            .with_observer(ObsConfig::all())
            .conformance_run(Sor::new(128, 128, 16), 2)
            .unwrap();
        assert_eq!(reference, observed, "threads={threads}");
    }
}

#[test]
fn golden_tables_are_unchanged_with_all_sinks_attached() {
    let golden = |name: &str| {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(name);
        std::fs::read_to_string(path).unwrap()
    };

    // Table 2 snapshot, regenerated with every sink attached.
    let mut table2 = String::from("app,sample,cut_cost,remote_misses\n");
    for name in ["SOR", "Water"] {
        let study = Workbench::new(8, 64)
            .unwrap()
            .with_threads(4)
            .with_observer(ObsConfig::all())
            .cutcost_study(|| apps::by_name(name, 64).unwrap(), 6, 1)
            .unwrap();
        for (i, s) in study.samples.iter().enumerate() {
            table2.push_str(&format!("{name},{i},{},{}\n", s.cut_cost, s.remote_misses));
        }
    }
    assert_eq!(
        golden("table2.txt"),
        table2,
        "Table 2 drifted under observation"
    );

    // Table 5 fault counts for a representative subset, compared against
    // the corresponding rows of the full golden snapshot.
    let full = golden("table5.txt");
    for name in ["SOR", "Water", "FFT6"] {
        let row = Workbench::new(8, 64)
            .unwrap()
            .with_threads(2)
            .with_observer(ObsConfig::all())
            .tracking_overhead(|| apps::by_name(name, 64).unwrap())
            .unwrap();
        let line = format!("{name},{},{}\n", row.tracking_faults, row.coherence_faults);
        assert!(
            full.contains(&line),
            "Table 5 drifted under observation: {line:?} not in golden"
        );
    }
}

#[test]
fn manifest_replays_to_a_matching_digest() {
    let app = || apps::by_name("Water", 16).unwrap();
    let run = bench()
        .with_faults(FaultPlan::moderate(7))
        .with_observer(ObsConfig::all())
        .observed_heuristic_run(app, Strategy::MinCost, 2)
        .unwrap();
    let manifest = RunManifest::new("observability-test")
        .param("app", "Water")
        .param("faults", "moderate:7")
        .with_digest(obs::stats_digest(&run.stats));

    // Round-trip through JSON, then replay with the same parameters: the
    // recorded digest must match the replayed statistics bit-for-bit.
    let parsed = RunManifest::from_json(&manifest.to_json()).unwrap();
    assert_eq!(parsed.get("app"), Some("Water"));
    let replay = bench()
        .with_faults(FaultPlan::moderate(7))
        .observed_heuristic_run(app, Strategy::MinCost, 2)
        .unwrap();
    assert_eq!(parsed.digest, obs::stats_digest(&replay.stats));

    // A perturbed run is detected.
    let other = bench()
        .with_faults(FaultPlan::moderate(8))
        .observed_heuristic_run(app, Strategy::MinCost, 2)
        .unwrap();
    assert_ne!(parsed.digest, obs::stats_digest(&other.stats));
}

#[test]
fn exported_artifacts_are_well_formed_under_heavy_faults() {
    let run = bench()
        .with_faults(FaultPlan::heavy(3))
        .with_observer(ObsConfig::all())
        .observed_heuristic_run(|| Sor::new(256, 256, 16), Strategy::MinCost, 2)
        .unwrap();
    let observation = run.observation.unwrap();

    // The Chrome trace parses as JSON with the trace_event envelope.
    let chrome = json::parse(observation.chrome_trace.as_ref().unwrap()).unwrap();
    assert_eq!(
        chrome.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ns")
    );
    let events = chrome.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
    assert!(!events.is_empty());
    let phase = |e: &json::Value| e.get("ph").and_then(|v| v.as_str()).map(str::to_owned);
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("M")));
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("X")));
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("C")));

    // Every JSONL line is a standalone JSON object with a type tag.
    let jsonl = observation.events_jsonl.as_ref().unwrap();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        let value = json::parse(line).unwrap();
        assert!(value.get("type").and_then(|v| v.as_str()).is_some());
    }

    // The metrics time series has one row per barrier interval, and the
    // histograms carry at least the fetch-latency distribution.
    let metrics = observation.metrics_csv.as_ref().unwrap();
    let mut rows = metrics.lines();
    assert!(rows.next().unwrap().starts_with("barrier,at_ns,elapsed_ns"));
    assert!(rows.count() >= 2, "at least one interval per iteration");
    let histograms = observation.histograms_csv.as_ref().unwrap();
    assert!(histograms.starts_with("histogram,bucket,lo_ns,hi_ns,count"));
    assert!(histograms.lines().any(|l| l.starts_with("fetch,")));

    // The bounded ring drained events too.
    let ring = observation.ring.as_ref().unwrap();
    assert!(ring.iter().next().is_some());
}

#[test]
fn spans_and_analysis_are_pure_observers() {
    // ObsConfig::all() turns on span self-profiling alongside every sink;
    // recording spans and then running the post-hoc analytics must not
    // perturb the run by a single bit.
    let app = || apps::by_name("SOR", 64).unwrap();
    let plain = Workbench::new(8, 64)
        .unwrap()
        .observed_heuristic_run(app, Strategy::MinCost, 2)
        .unwrap();
    let observed = Workbench::new(8, 64)
        .unwrap()
        .with_observer(ObsConfig::all())
        .observed_heuristic_run(app, Strategy::MinCost, 2)
        .unwrap();
    assert_eq!(plain.row, observed.row, "row drifted under span profiling");
    assert_eq!(
        plain.stats, observed.stats,
        "stats drifted under span profiling"
    );

    // Spans reached both sinks: nestable duration events in the Chrome
    // trace, span_begin/span_end records in the JSONL stream.
    let observation = observed.observation.unwrap();
    let jsonl = observation.events_jsonl.unwrap();
    assert!(jsonl.contains("\"span_begin\"") && jsonl.contains("\"span_end\""));
    let chrome = json::parse(observation.chrome_trace.as_ref().unwrap()).unwrap();
    let events = chrome.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
    let phase = |e: &json::Value| e.get("ph").and_then(|v| v.as_str()).map(str::to_owned);
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("b")));
    assert!(events.iter().any(|e| phase(e).as_deref() == Some("e")));

    // The analytics themselves are post-hoc and deterministic: two passes
    // over the same recording produce byte-identical artifacts.
    let a = obs::Analysis::from_events(&jsonl).unwrap();
    let b = obs::Analysis::from_events(&jsonl).unwrap();
    assert_eq!(a.page_heat_csv(), b.page_heat_csv());
    assert_eq!(a.thread_comm_csv(), b.thread_comm_csv());
    assert_eq!(a.critical_path_csv(), b.critical_path_csv());
    assert_eq!(a.spans_csv(), b.spans_csv());
    assert!(a.spans.iter().any(|s| s.phase == "fetch"), "fetch spans");
    assert!(!a.pages.is_empty() && !a.intervals.is_empty());
}

// Golden count snapshot of the trace analytics for SOR at paper scale
// (64 threads on 8 nodes): the top-10 page-heat rows and the full
// critical-path decomposition. Regenerate after an *intentional* change
// with `UPDATE_GOLDEN=1 cargo test --test observability golden_` and
// review the diff like any other code change.
#[test]
fn golden_analysis_sor_heat_and_critical_path() {
    let observed = Workbench::new(8, 64)
        .unwrap()
        .with_observer(ObsConfig::all())
        .observed_heuristic_run(|| apps::by_name("SOR", 64).unwrap(), Strategy::MinCost, 2)
        .unwrap();
    let jsonl = observed.observation.unwrap().events_jsonl.unwrap();
    let analysis = obs::Analysis::from_events(&jsonl).unwrap();

    let mut out = String::from("# page_heat (top 10)\n");
    for line in analysis.page_heat_csv().lines().take(11) {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("# critical_path\n");
    out.push_str(&analysis.critical_path_csv());

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/analysis_sor.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &out).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test observability golden_` to create",
            path.display()
        )
    });
    assert_eq!(
        expected, out,
        "analysis snapshot drifted; if intentional, regenerate with \
         UPDATE_GOLDEN=1 and review the diff"
    );
}
