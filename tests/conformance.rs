//! Acceptance tests for deterministic fault injection and the coherence
//! conformance oracle at paper scale (64 threads on 8 nodes).

use active_correlation_tracking::apps;
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::sim::FaultPlan;

#[test]
fn all_ten_apps_are_oracle_clean_at_paper_scale_under_faults() {
    // 64 threads on 8 nodes with a moderate fault plan: every suite
    // application must terminate with zero oracle violations.
    for name in apps::SUITE_NAMES {
        let run = Workbench::new(8, 64)
            .unwrap()
            .with_faults(FaultPlan::moderate(0x00C0_FFEE))
            .conformance_run(apps::by_name(name, 64).unwrap(), 1)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(run.report.violations, 0, "{name}");
        assert!(run.report.barriers_checked > 0, "{name}");
        assert!(run.report.bytes_compared > 0, "{name}");
    }
}

#[test]
fn heavy_faults_stay_oracle_clean_and_are_reproducible() {
    let run = |seed| {
        Workbench::new(8, 64)
            .unwrap()
            .with_faults(FaultPlan::heavy(seed))
            .conformance_run(apps::by_name("FFT6", 64).unwrap(), 2)
            .unwrap()
    };
    let a = run(1);
    assert_eq!(a.report.violations, 0);
    assert!(a.stats.retries > 0, "heavy plan must drop something");
    // Same seed: byte-identical statistics and checking totals.
    let b = run(1);
    assert_eq!(a, b);
    // Different seed: same protocol outcomes (FFT6 is barrier-only),
    // different perturbed timing.
    let c = run(2);
    assert_eq!(a.stats.remote_misses, c.stats.remote_misses);
    assert_ne!(a.stats.elapsed, c.stats.elapsed);
}

#[test]
fn zero_fault_plan_reproduces_the_baseline_byte_identically() {
    // An explicit FaultPlan::none() must not change a single statistic
    // relative to the default (fault-free) configuration.
    let base = Workbench::new(8, 64)
        .unwrap()
        .conformance_run(apps::by_name("Water", 64).unwrap(), 2)
        .unwrap();
    let none = Workbench::new(8, 64)
        .unwrap()
        .with_faults(FaultPlan::none())
        .conformance_run(apps::by_name("Water", 64).unwrap(), 2)
        .unwrap();
    assert_eq!(base, none);
    assert_eq!(none.stats.retries, 0);
    assert_eq!(none.stats.net.total_retrans_messages(), 0);
}
