//! Cross-crate integration: the full track → analyze → place → migrate
//! pipeline on reduced application instances.

use active_correlation_tracking::apps::{self, Fft, Sor, Water};
use active_correlation_tracking::dsm::Program;
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::place::{min_cost, optimal};
use active_correlation_tracking::sim::{DetRng, Mapping};
use active_correlation_tracking::track::{
    cut_cost, render_ascii, render_pgm, sharing_degree, CorrelationMatrix, MapStyle,
};

fn bench() -> Workbench {
    Workbench::new(4, 16).unwrap()
}

#[test]
fn full_pipeline_reduces_misses() {
    let bench = bench();
    let app = || Sor::new(512, 512, 16);
    let truth = bench.ground_truth(app).unwrap();
    // Start scrambled, migrate to min-cost, verify steady-state improvement.
    let mut rng = DetRng::new(3);
    let scrambled = Mapping::stretch(&bench.cluster).permuted(&mut rng);
    let mut dsm = bench.dsm(app(), scrambled).unwrap();
    dsm.run_iterations(1).unwrap();
    let before = dsm.run_iterations(3).unwrap();
    dsm.migrate_to(min_cost(&truth.corr, &bench.cluster))
        .unwrap();
    dsm.run_iterations(1).unwrap(); // re-cache
    let after = dsm.run_iterations(3).unwrap();
    assert!(
        after.remote_misses < before.remote_misses,
        "{} -> {}",
        before.remote_misses,
        after.remote_misses
    );
}

#[test]
fn tracked_access_information_is_exhaustive_and_exact() {
    // Active tracking sees every (thread, page) the program touches: the
    // union of tracked bitmaps covers exactly the pages the scripts address.
    let bench = bench();
    let app = Water::new(128, 16);
    let truth = bench.ground_truth(|| Water::new(128, 16)).unwrap();
    let mut expected = std::collections::BTreeSet::new();
    for t in 0..16 {
        for op in app.script(t, 2) {
            if let active_correlation_tracking::dsm::Op::Read { addr, len }
            | active_correlation_tracking::dsm::Op::Write { addr, len } = op
            {
                if len > 0 {
                    for p in (addr / 4096)..=((addr + len - 1) / 4096) {
                        expected.insert((t, p as u32));
                    }
                }
            }
        }
    }
    let mut observed = std::collections::BTreeSet::new();
    for t in 0..16 {
        for p in truth.access.bitmap(t).iter_ones() {
            observed.insert((t, p as u32));
        }
    }
    let expected: std::collections::BTreeSet<(usize, u32)> = expected.into_iter().collect();
    assert_eq!(observed, expected);
}

#[test]
fn correlation_pipeline_is_deterministic() {
    let run = || {
        let bench = bench();
        let truth = bench
            .ground_truth(|| Fft::new("fft", 16, 16, 16, 16))
            .unwrap();
        (
            render_pgm(&truth.corr),
            truth.baseline.remote_misses,
            truth.tracked.elapsed,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn min_cost_tracks_optimal_on_real_app_correlations() {
    // The §5.1 claim, on correlations measured from a real (reduced) app
    // rather than synthetic matrices.
    let bench = Workbench::new(3, 12).unwrap();
    for make in [
        || apps::by_name("Water", 12).unwrap(),
        || apps::by_name("SOR", 12).unwrap(),
    ] {
        let truth = bench.ground_truth(make).unwrap();
        let heur = cut_cost(&truth.corr, &min_cost(&truth.corr, &bench.cluster));
        let opt = cut_cost(&truth.corr, &optimal(&truth.corr, &bench.cluster));
        assert!(
            heur as f64 <= opt as f64 * 1.01 + 1e-9,
            "{}: min-cost {heur} vs optimal {opt}",
            truth.app
        );
    }
}

#[test]
fn maps_render_for_tracked_apps() {
    let bench = bench();
    let truth = bench.ground_truth(|| Sor::new(256, 256, 16)).unwrap();
    let ascii = render_ascii(&truth.corr, &MapStyle::default());
    assert_eq!(ascii.lines().count(), 16);
    // SOR: nearest-neighbor only — the far corner is blank, the
    // near-diagonal is not.
    let bottom: Vec<char> = ascii.lines().last().unwrap().chars().collect();
    assert_eq!(bottom[15], ' ');
    assert_ne!(bottom[1], ' ');
    let pgm = render_pgm(&truth.corr);
    assert!(pgm.starts_with("P2"));
}

#[test]
fn sharing_degree_orders_apps_like_the_paper() {
    // SOR (boundary-only sharing) must have a much lower sharing degree
    // than Water (half-window sharing) at the same scale.
    let bench = bench();
    let sor = bench.ground_truth(|| Sor::new(256, 256, 16)).unwrap();
    let water = bench.ground_truth(|| Water::new(256, 16)).unwrap();
    let d_sor = sharing_degree(&sor.access, &sor.mapping);
    let d_water = sharing_degree(&water.access, &water.mapping);
    assert!(
        d_sor < 1.6 && d_water > 2.0 && d_water > d_sor,
        "SOR {d_sor} vs Water {d_water}"
    );
}

#[test]
fn aged_correlations_follow_a_phase_change() {
    use active_correlation_tracking::track::AgedCorrelation;
    let mut aged = AgedCorrelation::new(4, 0.5);
    let mut phase_a = CorrelationMatrix::zeros(4);
    phase_a.set(0, 1, 50);
    let mut phase_b = CorrelationMatrix::zeros(4);
    phase_b.set(2, 3, 50);
    for _ in 0..4 {
        aged.observe(&phase_a);
    }
    for _ in 0..3 {
        aged.observe(&phase_b);
    }
    let snap = aged.snapshot();
    assert!(snap.get(2, 3) > snap.get(0, 1));
}

#[test]
fn calibrated_miss_model_predicts_held_out_configurations() {
    use active_correlation_tracking::track::MissModel;
    // Calibrate a miss model on a few random SOR configurations, then
    // predict a held-out one; SOR's cut-miss relation is essentially exact,
    // so the prediction should land within a few percent.
    let bench = Workbench::new(4, 16).unwrap();
    let app = || Sor::new(512, 512, 16);
    let truth = bench.ground_truth(app).unwrap();
    let rng = DetRng::new(99);
    let run_misses = |mapping: &Mapping| -> u64 {
        let mut dsm = bench.dsm(app(), mapping.clone()).unwrap();
        dsm.run_iterations(1).unwrap();
        dsm.run_iterations(1).unwrap().remote_misses
    };
    let mut observations = Vec::new();
    let mut holdout = None;
    for s in 0..7 {
        let mapping = Mapping::random_balanced(&bench.cluster, &mut rng.fork(s));
        let cut = cut_cost(&truth.corr, &mapping);
        let misses = run_misses(&mapping);
        if s == 6 {
            holdout = Some((mapping, misses));
        } else {
            observations.push((cut, misses));
        }
    }
    let model = MissModel::calibrate(&observations).expect("calibrates");
    let (mapping, actual) = holdout.unwrap();
    let predicted = model.predict_mapping(&truth.corr, &mapping);
    let err = (predicted - actual as f64).abs() / actual.max(1) as f64;
    assert!(
        err < 0.10,
        "predicted {predicted:.0} vs actual {actual} ({:.1}% error)",
        err * 100.0
    );
}

#[test]
fn weighted_placement_trades_balance_for_affinity() {
    use active_correlation_tracking::place::{imbalance, min_cost_weighted, node_loads};
    // Real correlations from Water; synthetic weights where the first
    // threads carry double work.
    let bench = Workbench::new(4, 16).unwrap();
    let truth = bench.ground_truth(|| Water::new(256, 16)).unwrap();
    let weights: Vec<u64> = (0..16).map(|t| if t < 4 { 2 } else { 1 }).collect();
    let m = min_cost_weighted(&truth.corr, &bench.cluster, &weights, 1.15);
    assert!(
        imbalance(&m, &weights) <= 1.16,
        "{:?}",
        node_loads(&m, &weights)
    );
    // Still a sane mapping for the DSM.
    let mut dsm = bench.dsm(Water::new(256, 16), m).unwrap();
    dsm.run_iterations(1).unwrap();
}
