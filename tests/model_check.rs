//! End-to-end tests of the fault × schedule model-checking mode: bounded
//! sweeps keep the clean protocol clean, the seeded
//! [`InjectedBug::LosePartitionedInvalidations`] fixture is found, shrunk
//! to the pinned minimal replay token `s1!1`, and the token reproduces
//! byte-for-byte — mirroring the `s1:1` Racey pin in `exploration.rs`.

use acorr::apps::{Racey, Sor, Water};
use acorr::dsm::InjectedBug;
use acorr::explore::{ExploreOptions, FailureKind};
use acorr::sched::{ExploreMode, Schedule};
use acorr::Workbench;

fn model_check(faults: usize) -> ExploreMode {
    ExploreMode::ModelCheck {
        preemptions: 1,
        faults,
    }
}

#[test]
fn injected_partition_bug_is_found_shrunk_to_pinned_token_and_replays() {
    let bench = Workbench::new(2, 8).unwrap();
    let options = ExploreOptions {
        budget: 8,
        iterations: 1,
        mode: model_check(1),
        inject: Some(InjectedBug::LosePartitionedInvalidations),
        ..ExploreOptions::default()
    };
    let report = bench.explore_run(|| Sor::new(64, 64, 8), &options).unwrap();
    let failure = report.failure.expect("the injected bug must be found");
    // Pinned minimal counterexample: one prescribed fault action —
    // partition at the first barrier interval — with an all-default
    // schedule. Losing cross-cut invalidations leaves a stale valid copy,
    // which the oracle flags at the very next barrier.
    assert_eq!(failure.token, "s1!1");
    assert_eq!(failure.kind, FailureKind::OracleViolation);
    assert!(failure.detail.contains("directory"), "{}", failure.detail);
    assert!(report.distinct_states > 0, "pruning must observe states");

    // The token replays byte-for-byte: same kind, same detail, twice.
    let replay = ExploreOptions {
        replay: Some(Schedule::parse_token(&failure.token).unwrap()),
        ..options.clone()
    };
    for _ in 0..2 {
        let replayed = bench.explore_run(|| Sor::new(64, 64, 8), &replay).unwrap();
        let found = replayed.failure.expect("replay reproduces the failure");
        assert_eq!(found.token, failure.token);
        assert_eq!(found.kind, failure.kind);
        assert_eq!(found.write_mode, failure.write_mode);
        assert_eq!(found.detail, failure.detail);
    }

    // The whole search is deterministic end to end.
    let again = bench.explore_run(|| Sor::new(64, 64, 8), &options).unwrap();
    assert_eq!(again.failure, Some(failure));
    assert_eq!(again.schedules_run, report.schedules_run);
    assert_eq!(again.distinct_states, report.distinct_states);
}

#[test]
fn without_the_injected_bug_the_same_sweep_is_clean() {
    // The exact search that convicts the seeded bug exonerates the real
    // protocol: partitions heal, duplicates are absorbed, crashes recover.
    let bench = Workbench::new(2, 8).unwrap();
    let options = ExploreOptions {
        budget: 8,
        iterations: 1,
        mode: model_check(1),
        ..ExploreOptions::default()
    };
    for factory in [(|| Sor::new(64, 64, 8)) as fn() -> Sor, || {
        Sor::new(32, 32, 8)
    }] {
        let report = bench.explore_run(factory, &options).unwrap();
        assert!(report.failure.is_none(), "{}", report.failure.unwrap());
        assert!(report.schedules_run > 1, "the fault frontier must expand");
        assert!(report.distinct_states > 0);
    }
    let report = bench.explore_run(|| Water::new(128, 8), &options).unwrap();
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
}

#[test]
fn model_check_still_finds_pure_schedule_bugs() {
    // The product space contains the schedule axis: Racey's seeded race
    // (no faults involved) shrinks to the same fault-free token the
    // systematic mode pins, proving old tokens stay valid.
    let bench = Workbench::new(1, 2).unwrap();
    let options = ExploreOptions {
        budget: 16,
        iterations: 1,
        mode: model_check(1),
        ..ExploreOptions::default()
    };
    let report = bench.explore_run(|| Racey, &options).unwrap();
    let failure = report.failure.expect("the seeded race must be found");
    assert_eq!(failure.kind, FailureKind::NewRace);
    assert_eq!(failure.token, "s1:1");
    // And the PR-6 token grammar still replays unchanged.
    let replay = ExploreOptions {
        replay: Some(Schedule::parse_token("s1:1").unwrap()),
        ..options
    };
    let replayed = bench.explore_run(|| Racey, &replay).unwrap();
    assert_eq!(replayed.failure.unwrap().token, "s1:1");
}

#[test]
fn fault_tokens_round_trip_and_replay_cleanly_on_the_real_protocol() {
    // Round-trip: parse → format is a fixpoint for mixed tokens.
    for token in ["s1", "s1:1", "s1!1", "s1:1!0.2", "s1!0.4", "s1:1.0.2!3"] {
        let schedule = Schedule::parse_token(token).unwrap();
        assert_eq!(schedule.token(), token, "canonical tokens are fixpoints");
    }
    // Non-canonical trailing defaults survive parse and replay (the FIFO /
    // no-fault tail reproduces them), and a prescribed fault action on the
    // real protocol stays clean: replaying `s1!4` (crash node 1 at the
    // first interval) is an ordinary, passing run.
    let bench = Workbench::new(2, 8).unwrap();
    for token in ["s1!1", "s1!2", "s1!3", "s1!4"] {
        let options = ExploreOptions {
            iterations: 1,
            replay: Some(Schedule::parse_token(token).unwrap()),
            ..ExploreOptions::default()
        };
        let report = bench.explore_run(|| Sor::new(64, 64, 8), &options).unwrap();
        assert!(
            report.failure.is_none(),
            "{token}: {}",
            report.failure.unwrap()
        );
    }
}

#[test]
fn state_hash_pruning_collapses_revisited_states() {
    // Many distinct (schedule, faults) pairs funnel into the same
    // per-barrier visible image: a healed partition or an absorbed
    // duplicate leaves no trace in memory. Pruning detects the revisit
    // and expands no deviations from it, so the sweep sees far fewer
    // distinct states than schedules run.
    let bench = Workbench::new(2, 8).unwrap();
    let report = bench
        .explore_run(
            || Sor::new(32, 32, 8),
            &ExploreOptions {
                budget: 64,
                iterations: 1,
                mode: model_check(1),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
    assert!(report.failure.is_none(), "{}", report.failure.unwrap());
    assert!(report.distinct_states >= 1);
    assert!(
        report.distinct_states < report.schedules_run,
        "pruning must collapse revisits ({} schedules, {} distinct states)",
        report.schedules_run,
        report.distinct_states
    );
}
