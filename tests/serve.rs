//! Integration suite for the online placement service (`acorr serve`).
//!
//! The tentpole claims under test, at paper scale (64 threads, 8 nodes):
//!
//! * the hotspot-migration scenario's phase shifts are detected within
//!   one window of the traffic driver's ground truth;
//! * accepted re-mappings reduce measured cut cost against the
//!   never-re-mapped baseline;
//! * a static workload produces zero re-mapping decisions;
//! * the full decision timeline is pinned by a golden snapshot;
//! * decisions flow through the obs sinks (JSONL + Perfetto marks).

use active_correlation_tracking::obs::ObsConfig;
use active_correlation_tracking::place::{MigrationCostModel, MigrationPolicy};
use active_correlation_tracking::sim::{Mapping, Scenario, TrafficConfig, TrafficDriver};
use active_correlation_tracking::{ServeDecision, ServeOptions, ServeReport, Workbench};

fn bench() -> Workbench {
    Workbench::new(8, 64).unwrap()
}

fn serve(scenario: Scenario) -> ServeReport {
    bench().serve_traffic(&ServeOptions::new(scenario))
}

// Regenerate after an *intentional* behaviour change with:
//   UPDATE_GOLDEN=1 cargo test --test serve golden_
// and review the diff like any other code change.
fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test serve golden_` to create",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden snapshot {name} drifted; if intentional, regenerate with \
         UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_serve_hotspot_decision_timeline() {
    assert_golden("serve_hotspot.txt", &serve(Scenario::Hotspot).snapshot());
}

#[test]
fn hotspot_shifts_are_detected_within_one_window_of_ground_truth() {
    let options = ServeOptions::new(Scenario::Hotspot);
    let report = bench().serve_traffic(&options);
    let bench = bench();
    let driver = TrafficDriver::new(
        TrafficConfig::new(64, options.tenants, options.scenario, bench.seed)
            .with_period(options.period),
    );
    let truth = driver.shift_steps(options.steps as u64);
    assert!(!truth.is_empty(), "scenario must actually shift");
    let detected: Vec<u64> = report
        .timeline
        .iter()
        .filter_map(|d| match *d {
            ServeDecision::Shift { step, .. } => Some(step),
            ServeDecision::Remap { .. } => None,
        })
        .collect();
    assert_eq!(
        detected.len(),
        truth.len(),
        "every scripted shift is detected exactly once"
    );
    for (&shift, &fired) in truth.iter().zip(&detected) {
        assert!(
            fired >= shift && fired - shift < options.window as u64,
            "shift at step {shift} detected at step {fired}, outside one window"
        );
    }
}

#[test]
fn accepted_remaps_beat_the_never_remap_baseline() {
    let report = serve(Scenario::Hotspot);
    assert!(report.accepted >= 1, "hotspot must accept a re-mapping");
    assert!(report.migrated > 0);
    assert!(
        report.served_cut < report.static_cut,
        "served {} vs static {}",
        report.served_cut,
        report.static_cut
    );
}

#[test]
fn static_workload_fires_zero_remapping_events() {
    let report = serve(Scenario::Static);
    assert!(report.timeline.is_empty(), "{:?}", report.timeline);
    assert_eq!(report.shifts, 0);
    assert_eq!(report.accepted + report.rejected, 0);
    assert_eq!(report.migrated, 0);
    assert_eq!(report.served_cut, report.static_cut);
    let cluster = active_correlation_tracking::sim::ClusterConfig::new(8, 64).unwrap();
    assert_eq!(report.final_mapping, Mapping::stretch(&cluster));
}

#[test]
fn churn_remaps_follow_tenant_arrivals() {
    let report = serve(Scenario::Churn);
    assert!(report.shifts >= 2, "tenant churn keeps firing");
    assert!(report.accepted >= 1);
    assert!(report.served_cut < report.static_cut);
}

#[test]
fn diurnal_skew_shifts_load_but_not_placement() {
    // Intensity waves move weight, not structure: the detector's delta
    // stays below threshold and the service never re-maps.
    let report = serve(Scenario::Diurnal);
    assert_eq!(report.shifts, 0);
    assert_eq!(report.migrated, 0);
}

#[test]
fn prohibitive_cost_model_rejects_every_remap() {
    let options = ServeOptions::new(Scenario::Hotspot).with_cost_model(MigrationCostModel::new(
        u64::MAX / 4,
        2,
        0,
    ));
    let report = bench().serve_traffic(&options);
    assert!(report.shifts >= 1, "detection is independent of the gate");
    assert_eq!(report.accepted, 0);
    assert_eq!(report.migrated, 0);
    let cluster = active_correlation_tracking::sim::ClusterConfig::new(8, 64).unwrap();
    assert_eq!(
        report.final_mapping,
        Mapping::stretch(&cluster),
        "rejected plans leave the mapping alone"
    );
    assert_eq!(report.served_cut, report.static_cut);
}

#[test]
fn zero_cost_model_accepts_any_improvement() {
    let free = bench().serve_traffic(
        &ServeOptions::new(Scenario::Hotspot).with_cost_model(MigrationCostModel::zero()),
    );
    let gated = serve(Scenario::Hotspot);
    assert!(
        free.accepted >= gated.accepted,
        "the gate only removes re-maps"
    );
    assert_eq!(
        free.rejected + free.accepted,
        gated.rejected + gated.accepted
    );
}

#[test]
fn interchange_policy_bounds_movement_and_still_improves() {
    let options = ServeOptions::new(Scenario::Hotspot).with_policy(MigrationPolicy::Interchange);
    let report = bench().serve_traffic(&options);
    for decision in &report.timeline {
        if let ServeDecision::Remap { moves, .. } = *decision {
            assert!(
                moves <= 2 * options.max_swaps as u64,
                "interchange moves at most two threads per swap"
            );
        }
    }
    assert!(report.accepted >= 1);
    assert!(report.served_cut < report.static_cut);
}

#[test]
fn decisions_flow_through_the_obs_sinks() {
    let report = bench()
        .with_observer(ObsConfig::all())
        .serve_traffic(&ServeOptions::new(Scenario::Hotspot));
    let obs = report.observation.expect("observer configured");
    let jsonl = obs.events_jsonl.expect("jsonl sink on");
    assert!(jsonl.contains("\"type\":\"phase_shift\""));
    assert!(jsonl.contains("\"type\":\"remap_accepted\""));
    assert!(jsonl.contains("\"type\":\"remap_rejected\""));
    assert!(jsonl.contains("\"type\":\"migration\""));
    let chrome = obs.chrome_trace.expect("chrome sink on");
    assert!(chrome.contains("\"name\":\"remap_accepted\""));
    assert!(chrome.contains("\"name\":\"phase_shift\""));
}

#[test]
fn engine_backed_serve_migrates_a_drifting_app_mid_run() {
    use active_correlation_tracking::apps::Drift;
    // The live re-mapping hook: Drift's partner offset jumps mid-run;
    // the service detects it and re-places threads through
    // `Dsm::migrate_to` while the engine keeps running.
    let options = ServeOptions::new(Scenario::Static).with_steps(48);
    let report = Workbench::new(4, 8)
        .unwrap()
        .serve_app(|| Drift::new(256, 8, 8), &options)
        .unwrap();
    assert_eq!(report.label, "Drift (engine)");
    assert!(report.shifts >= 1, "drift shift detected");
    assert!(report.accepted >= 1, "re-map accepted");
    assert!(report.migrated > 0, "threads actually moved");
    assert!(report.served_cut < report.static_cut);
}

#[test]
fn engine_backed_serve_stays_quiet_on_a_stable_app() {
    use active_correlation_tracking::apps::Sor;
    let options = ServeOptions::new(Scenario::Static).with_steps(12);
    let report = Workbench::new(8, 64)
        .unwrap()
        .serve_app(|| Sor::new(64, 64, 64), &options)
        .unwrap();
    assert!(report.timeline.is_empty(), "{:?}", report.timeline);
    assert_eq!(report.migrated, 0);
}
