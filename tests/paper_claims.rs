//! The paper's four headline claims (§1), verified end-to-end at reduced
//! scale:
//!
//! 1. accurate thread affinities can be obtained **without multiple rounds
//!    of migration** (active tracking: complete in one round; passive:
//!    incomplete);
//! 2. thread affinities lead to **good approximations of communication
//!    requirements** (cut cost correlates with remote misses);
//! 3. simple heuristics **approximate optimal mappings** (min-cost within
//!    1% of branch-and-bound);
//! 4. **good placement is essential** (min-cost beats random on misses and
//!    traffic).

use active_correlation_tracking::apps::{self, Sor};
use active_correlation_tracking::dsm::Program as _;
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::place::{min_cost, optimal, Strategy};
use active_correlation_tracking::track::cut_cost;

fn bench() -> Workbench {
    Workbench::new(4, 16).unwrap()
}

#[test]
fn claim1_active_tracking_is_complete_in_one_round() {
    let bench = bench();
    let app = || apps::by_name("Water", 16).unwrap();
    let truth = bench.ground_truth(app).unwrap();
    // A second tracked round adds no information: the first was complete.
    let truth2 = bench.ground_truth(app).unwrap();
    assert_eq!(truth.access, truth2.access);
    assert!(truth.access.total_observations() > 0);
}

#[test]
fn claim1_passive_tracking_is_incomplete_and_migrates_repeatedly() {
    let bench = bench();
    let study = bench
        .passive_study(|| apps::by_name("Water", 16).unwrap(), 6)
        .unwrap();
    // Never complete, and information accrues over multiple rounds (the
    // paper's Figure 2), with nonzero migration churn.
    assert!(*study.completeness.last().unwrap() < 1.0);
    assert!(study.completeness[0] < *study.completeness.last().unwrap());
    assert!(study.moves.iter().sum::<usize>() > 0);
}

#[test]
fn claim2_cut_cost_predicts_remote_misses() {
    let bench = bench();
    // SOR's sharing is purely structural: the fit should be near-perfect
    // (the paper reports 0.961, 1.0 without the GC outlier).
    let study = bench
        .cutcost_study(|| Sor::new(512, 512, 16), 30, 1)
        .unwrap();
    let fit = study.fit.unwrap();
    assert!(fit.r > 0.95, "SOR r = {}", fit.r);
    assert!(fit.slope > 0.0);
    // A lock-heavy, less-structured app still correlates positively.
    let water = bench
        .cutcost_study(|| apps::by_name("Water", 16).unwrap(), 30, 1)
        .unwrap();
    assert!(
        water.fit.unwrap().r > 0.3,
        "Water r = {}",
        water.fit.unwrap().r
    );
}

#[test]
fn claim3_min_cost_is_near_optimal() {
    let bench = Workbench::new(4, 12).unwrap();
    for name in ["SOR", "Water", "FFT6"] {
        let truth = bench
            .ground_truth(|| apps::by_name(name, 12).unwrap())
            .unwrap();
        let heur = cut_cost(&truth.corr, &min_cost(&truth.corr, &bench.cluster));
        let opt = cut_cost(&truth.corr, &optimal(&truth.corr, &bench.cluster));
        assert!(
            heur as f64 <= opt as f64 * 1.01 + 1e-9,
            "{name}: {heur} vs optimal {opt}"
        );
    }
}

#[test]
fn claim4_good_placement_is_essential() {
    let bench = bench();
    for name in ["SOR", "FFT6", "LU1k"] {
        let rows = bench
            .heuristic_comparison(
                || apps::by_name(name, 16).unwrap(),
                &[Strategy::MinCost, Strategy::RandomBalanced],
                4,
            )
            .unwrap();
        let (mc, ran) = (&rows[0], &rows[1]);
        assert!(
            mc.remote_misses <= ran.remote_misses,
            "{name}: m-c {} vs ran {}",
            mc.remote_misses,
            ran.remote_misses
        );
        assert!(mc.cut_cost <= ran.cut_cost, "{name}");
        assert!(mc.total_mbytes <= ran.total_mbytes + 1e-9, "{name}");
    }
}

#[test]
fn tracking_cost_amortizes_below_one_percent() {
    // §4.2: "amortized slowdown was less than 1% for all of our
    // applications except Ocean" — the tracked iteration's extra cost
    // spread over a 100-iteration run.
    let bench = Workbench::new(8, 64).unwrap();
    for name in ["SOR", "LU2k", "Water", "FFT7"] {
        let row = bench
            .tracking_overhead(|| apps::by_name(name, 64).unwrap())
            .unwrap();
        let extra = row.time_on.as_secs_f64() - row.time_off.as_secs_f64();
        let amortized = extra / (row.time_off.as_secs_f64() * 100.0);
        assert!(
            amortized < 0.01,
            "{name}: amortized overhead {:.3}%",
            amortized * 100.0
        );
    }
}

#[test]
fn suite_runs_clean_at_reduced_scale() {
    // Every paper application constructs, validates, tracks, and runs at a
    // small thread count without protocol errors.
    let bench = Workbench::new(2, 8).unwrap();
    for name in apps::SUITE_NAMES {
        let truth = bench
            .ground_truth(|| apps::by_name(name, 8).unwrap())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(truth.tracked.tracking_faults > 0, "{name}");
        assert!(
            truth.tracked.tracking_faults >= truth.access.total_observations() as u64,
            "{name}: every recorded access implies a fault"
        );
        // Tracking costs time. For lock-heavy apps the pinned scheduler can
        // incidentally reduce lock ping-pong, so allow a small win there;
        // barrier-only apps must slow down outright.
        let barrier_only = apps::by_name(name, 8).unwrap().num_locks() == 0;
        if barrier_only {
            assert!(truth.tracked.elapsed > truth.baseline.elapsed, "{name}");
        } else {
            assert!(
                truth.tracked.elapsed.as_secs_f64() > truth.baseline.elapsed.as_secs_f64() * 0.85,
                "{name}: tracked {} vs baseline {}",
                truth.tracked.elapsed,
                truth.baseline.elapsed
            );
        }
    }
}

// ---------------------------------------------------------------------
// Golden regressions: byte-exact snapshots of the count columns behind
// every paper table and figure (Tables 1-6, Figures 1-3) at paper scale
// (64 threads on 8 nodes unless the exhibit says otherwise). The engine
// is deterministic, so these catch any unintended protocol drift.
//
// Regenerate after an *intentional* behaviour change with:
//   UPDATE_GOLDEN=1 cargo test --test paper_claims golden_
// and review the diff like any other code change.
// ---------------------------------------------------------------------

fn assert_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `UPDATE_GOLDEN=1 cargo test --test paper_claims golden_` to create",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden snapshot {name} drifted; if intentional, regenerate with \
         UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_table1_page_counts() {
    use active_correlation_tracking::mem::pages_for;
    let mut out = String::from("app,threads,shared_pages,locks\n");
    for name in apps::SUITE_NAMES {
        let app = apps::by_name(name, 64).unwrap();
        out.push_str(&format!(
            "{name},{},{},{}\n",
            app.num_threads(),
            pages_for(app.shared_bytes()),
            app.num_locks()
        ));
    }
    assert_golden("table1.txt", &out);
}

#[test]
fn golden_table2_cutcost_samples() {
    // Per-sample (cut cost, remote misses) pairs at reduced sample counts:
    // exercises random configuration generation, the tracked ground truth,
    // and measured runs in one snapshot.
    let mut out = String::from("app,sample,cut_cost,remote_misses\n");
    for name in ["SOR", "Water"] {
        let study = Workbench::new(8, 64)
            .unwrap()
            .with_threads(4)
            .cutcost_study(|| apps::by_name(name, 64).unwrap(), 6, 1)
            .unwrap();
        for (i, s) in study.samples.iter().enumerate() {
            out.push_str(&format!("{name},{i},{},{}\n", s.cut_cost, s.remote_misses));
        }
    }
    assert_golden("table2.txt", &out);
}

#[test]
fn golden_table5_fault_counts() {
    // Tracking and coherence fault counts for the full suite at 8x64.
    let mut out = String::from("app,tracking_faults,coherence_faults\n");
    for name in apps::SUITE_NAMES {
        let row = Workbench::new(8, 64)
            .unwrap()
            .with_threads(2)
            .tracking_overhead(|| apps::by_name(name, 64).unwrap())
            .unwrap();
        out.push_str(&format!(
            "{name},{},{}\n",
            row.tracking_faults, row.coherence_faults
        ));
    }
    assert_golden("table5.txt", &out);
}

#[test]
fn golden_table3_correlation_totals() {
    // Table 3 renders correlation maps at 32/48/64 threads; the count
    // columns behind each map are the total and peak pairwise correlation.
    let mut out = String::from("app,threads,total_correlation,max_off_diagonal\n");
    for name in apps::SUITE_NAMES {
        for threads in [32, 48, 64] {
            let truth = Workbench::new(8, threads)
                .unwrap()
                .ground_truth(|| apps::by_name(name, threads).unwrap())
                .unwrap();
            out.push_str(&format!(
                "{name},{threads},{},{}\n",
                truth.corr.total_correlation(),
                truth.corr.max_off_diagonal()
            ));
        }
    }
    assert_golden("table3.txt", &out);
}

#[test]
fn golden_table4_fft_input_sets() {
    // Table 4: 64-thread FFT maps across the three input sets. The input
    // set reshapes the thread clusters, which these totals pin down.
    let mut out = String::from("app,total_correlation,max_off_diagonal\n");
    for name in ["FFT6", "FFT7", "FFT8"] {
        let truth = Workbench::new(8, 64)
            .unwrap()
            .ground_truth(|| apps::by_name(name, 64).unwrap())
            .unwrap();
        out.push_str(&format!(
            "{name},{},{}\n",
            truth.corr.total_correlation(),
            truth.corr.max_off_diagonal()
        ));
    }
    assert_golden("table4.txt", &out);
}

#[test]
fn golden_table6_heuristic_counts() {
    // Table 6 compares full runs under each placement; the count columns
    // are remote misses and the placement's cut cost.
    use active_correlation_tracking::place::Strategy;
    let mut out = String::from("app,strategy,remote_misses,cut_cost\n");
    for name in ["SOR", "Water"] {
        let rows = Workbench::new(8, 64)
            .unwrap()
            .heuristic_comparison(
                || apps::by_name(name, 64).unwrap(),
                &[
                    Strategy::MinCost,
                    Strategy::Stretch,
                    Strategy::RandomBalanced,
                ],
                2,
            )
            .unwrap();
        for row in rows {
            out.push_str(&format!(
                "{name},{},{},{}\n",
                row.strategy, row.remote_misses, row.cut_cost
            ));
        }
    }
    assert_golden("table6.txt", &out);
}

#[test]
fn golden_fig1_scatter() {
    // Figure 1 is the cut-cost vs remote-miss scatter; Barnes complements
    // the SOR/Water samples already pinned by table2.txt.
    let study = Workbench::new(8, 64)
        .unwrap()
        .with_threads(4)
        .cutcost_study(|| apps::by_name("Barnes", 64).unwrap(), 6, 1)
        .unwrap();
    assert_golden("fig1.txt", &study.to_csv());
}

#[test]
fn golden_fig2_passive_rounds() {
    // Figure 2: passive-tracking completeness and migration churn per
    // round. Completeness is snapshotted in permille so the file stays
    // integer-only.
    let study = Workbench::new(4, 16)
        .unwrap()
        .passive_study(|| apps::by_name("Water", 16).unwrap(), 6)
        .unwrap();
    let mut out = String::from("round,completeness_permille,moves\n");
    for (i, (c, m)) in study.completeness.iter().zip(&study.moves).enumerate() {
        out.push_str(&format!("{i},{},{m}\n", (c * 1000.0).round() as u64));
    }
    assert_golden("fig2.txt", &out);
}

#[test]
fn golden_fig3_cutcost_by_nodes() {
    // Figure 3: 32-thread FFT maps on 4 nodes, 8 nodes, and a randomized
    // 4-node placement; the caption's claim is the cut-cost ordering.
    use active_correlation_tracking::place::{min_cost, place, Strategy};
    use active_correlation_tracking::sim::{ClusterConfig, DetRng};
    let truth = Workbench::new(4, 32)
        .unwrap()
        .ground_truth(|| apps::by_name("FFT6", 32).unwrap())
        .unwrap();
    let mut out = String::from("config,cut_cost\n");
    for nodes in [4usize, 8] {
        let cluster = ClusterConfig::new(nodes, 32).unwrap();
        let cut = cut_cost(&truth.corr, &min_cost(&truth.corr, &cluster));
        out.push_str(&format!("min-cost-{nodes}-nodes,{cut}\n"));
    }
    let cluster = ClusterConfig::new(4, 32).unwrap();
    let mut rng = DetRng::new(7);
    let random = place(Strategy::RandomBalanced, &truth.corr, &cluster, &mut rng);
    out.push_str(&format!(
        "randomized-4-nodes,{}\n",
        cut_cost(&truth.corr, &random)
    ));
    assert_golden("fig3.txt", &out);
}
