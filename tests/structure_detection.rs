//! The map-structure classifier (§3's by-eye judgement, mechanized) read
//! against the real tracked applications at the paper's scale.

use active_correlation_tracking::apps;
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::track::{compatible_node_sizes, profile_map, Structure};

fn profile(name: &str, threads: usize) -> active_correlation_tracking::track::MapProfile {
    let bench = Workbench::new(8, threads).unwrap();
    let truth = bench
        .ground_truth(|| apps::by_name(name, threads).unwrap())
        .unwrap();
    profile_map(&truth.corr)
}

#[test]
fn sor_is_nearest_neighbor() {
    let p = profile("SOR", 64);
    assert!(
        matches!(p.structure, Structure::NearestNeighbor { distance: 1 }),
        "{p}"
    );
}

#[test]
fn fft_cluster_sizes_follow_the_input() {
    // Table 4's progression, detected automatically.
    let p6 = profile("FFT6", 64);
    assert_eq!(p6.structure, Structure::Blocked { block: 8 }, "{p6}");
    let p7 = profile("FFT7", 64);
    assert_eq!(p7.structure, Structure::Blocked { block: 4 }, "{p7}");
    let p8 = profile("FFT8", 64);
    assert_eq!(p8.structure, Structure::Blocked { block: 2 }, "{p8}");
}

#[test]
fn lu_blocks_are_grid_rows() {
    let p = profile("LU2k", 64);
    assert_eq!(p.structure, Structure::Blocked { block: 8 }, "{p}");
}

#[test]
fn water_is_a_broad_band_not_blocks() {
    let p = profile("Water", 64);
    assert!(
        !matches!(p.structure, Structure::Blocked { .. }),
        "half-window sharing has no clean block edges: {p}"
    );
    assert!(p.density > 0.5, "most pairs share something: {p}");
}

#[test]
fn ocean_has_dense_background() {
    let p = profile("Ocean", 64);
    assert!(p.density > 0.9, "{p}");
}

#[test]
fn node_size_advice_matches_section3() {
    // §3: a 32-thread LU2k with 8-thread sharing blocks communicates much
    // more on 8 nodes (4 threads each) than on 4 nodes (8 threads each).
    // The advisor must reject per-node sizes that split the blocks.
    let p = profile("LU2k", 32);
    if let Structure::Blocked { block } = p.structure {
        let sizes = compatible_node_sizes(&p, 32);
        assert!(sizes.contains(&8) || sizes.contains(&block));
        assert!(
            !sizes.contains(&4) || block <= 4,
            "4/node splits {block}-blocks"
        );
    } else {
        panic!("LU2k @32 threads should be blocked: {p}");
    }
}
