//! Root crate: re-exports the acorr facade for examples and integration tests.
pub use acorr::*;
