//! Table 3 — correlation maps for every application at 32, 48 and 64
//! threads.
//!
//! Each map is printed as ASCII art (origin lower-left, darker = more
//! sharing, as in the paper) and written as a PGM image plus a CSV matrix
//! under `results/maps/`.

use acorr::apps;
use acorr::experiment::Workbench;
use acorr::track::{profile_map, render_ascii, render_csv, render_pgm, render_svg, MapStyle};
use acorr_bench::results_dir;

fn main() {
    let maps_dir = results_dir().join("maps");
    std::fs::create_dir_all(&maps_dir).expect("create maps dir");
    println!("Table 3: correlation maps (darker = more sharing, origin lower-left)\n");
    for name in apps::SUITE_NAMES {
        for threads in [32usize, 48, 64] {
            let bench = Workbench::new(8, threads).expect("cluster");
            let truth = bench
                .ground_truth(|| apps::by_name(name, threads).expect("known app"))
                .expect("tracked run");
            println!("--- {name}, {threads} threads ---");
            println!("{}", render_ascii(&truth.corr, &MapStyle::default()));
            println!("  detected structure: {}", profile_map(&truth.corr));
            let stem = format!("{name}_{threads}");
            std::fs::write(
                maps_dir.join(format!("{stem}.pgm")),
                render_pgm(&truth.corr),
            )
            .expect("write pgm");
            std::fs::write(
                maps_dir.join(format!("{stem}.csv")),
                render_csv(&truth.corr),
            )
            .expect("write csv");
            std::fs::write(
                maps_dir.join(format!("{stem}.svg")),
                render_svg(&truth.corr, &MapStyle::default()),
            )
            .expect("write svg");
            println!("  wrote results/maps/{stem}.pgm, .csv and .svg\n");
        }
    }
}
