//! Figure 1 — cut costs versus remote misses, one scatter per application.
//!
//! Same methodology as `table2`, rendered as ASCII scatter plots (cut cost
//! on x, remote misses on y) and written as CSV artifacts.
//!
//! Usage: `figure1 [--samples N]` (default 60 — enough to see the shape;
//! `table2` runs the full 300).

use acorr::apps;
use acorr::experiment::Workbench;
use acorr_bench::{arg_usize, ascii_scatter, write_artifact};

fn main() {
    let samples = arg_usize("--samples", 60);
    let bench = Workbench::new(8, 64).expect("8x64 cluster");
    println!("Figure 1: cut costs (x) versus remote misses (y), {samples} random configurations\n");
    for name in apps::TABLE2_NAMES {
        let study = bench
            .cutcost_study(|| apps::by_name(name, 64).expect("known app"), samples, 1)
            .expect("study");
        let points: Vec<(f64, f64)> = study
            .samples
            .iter()
            .map(|s| (s.cut_cost as f64, s.remote_misses as f64))
            .collect();
        println!("--- {name} ---");
        if let Some(fit) = study.fit {
            println!("fit: {fit}");
        }
        println!("{}", ascii_scatter(&points, 60, 16));
        write_artifact(&format!("figure1_{name}.csv"), &study.to_csv());
    }
}
