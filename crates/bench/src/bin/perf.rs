//! Offline wall-clock perf harness for the PR's two optimizations:
//!
//! 1. **Parallel experiment driver** — a Table-2-shaped `cutcost_study`
//!    run sequentially (1 worker) versus on the requested worker count,
//!    asserting the outputs are byte-identical before reporting speedup.
//! 2. **Incremental KL refinement** — [`refine_kl`] (D-value cache, O(n²)
//!    per pass) versus [`refine_kl_reference`] (direct recompute, O(n³)
//!    per pass) on seeded random matrices at 64–256 threads, asserting the
//!    refined mappings are bit-identical before reporting speedup.
//!
//! Writes `results/perf_pr1.csv` with one row per measurement. Runs with
//! plain `cargo run --release -p acorr-bench --bin perf`; criterion stays
//! behind its feature gate.
//!
//! Usage: `perf [--threads T] [--samples N] [--reps R]` (defaults: all
//! available workers, 24 samples, 3 measured reps).

use acorr::apps;
use acorr::experiment::Workbench;
use acorr::place::{refine_kl, refine_kl_reference};
use acorr::sim::{available_threads, resolve_threads, ClusterConfig, DetRng, Mapping};
use acorr::track::{cut_cost, CorrelationMatrix};
use acorr_bench::{arg_usize, best_of, write_artifact, Table};

fn main() {
    let threads = resolve_threads(arg_usize("--threads", 0));
    let samples = arg_usize("--samples", 24);
    let reps = arg_usize("--reps", 3);
    println!(
        "perf: wall-clock harness ({} host core(s) visible, measuring with \
         {threads} worker thread(s), best of {reps} reps)\n",
        available_threads()
    );

    // Parallel-section speedup is bounded by the host core count; record it
    // so a ~1x result on a 1-core box reads as expected, not as a failure.
    let mut csv = format!(
        "# host_cores={}, workers={threads}, samples={samples}, reps={reps}\n\
         section,case,baseline_ms,optimized_ms,speedup,identical\n",
        available_threads()
    );
    let mut table = Table::new(&[
        "Section",
        "Case",
        "Baseline (ms)",
        "Optimized (ms)",
        "Speedup",
        "Identical",
    ]);

    // --- 1. Sequential vs parallel cutcost_study (Table 2 shape). -------
    for name in ["FFT7", "SOR", "Water"] {
        let study = |jobs: usize| {
            Workbench::new(8, 64)
                .expect("8x64 cluster")
                .with_threads(jobs)
                .cutcost_study(|| apps::by_name(name, 64).expect("known app"), samples, 1)
                .expect("cutcost study")
        };
        let seq = study(1);
        let par = study(threads);
        let identical = seq.to_csv() == par.to_csv() && seq.fit == par.fit;
        let t_seq = best_of(reps, || {
            study(1);
        });
        let t_par = best_of(reps, || {
            study(threads);
        });
        push(
            &mut csv,
            &mut table,
            "cutcost_study",
            &format!("{name} x{samples} (1 vs {threads} workers)"),
            t_seq.as_secs_f64() * 1e3,
            t_par.as_secs_f64() * 1e3,
            identical,
        );
    }

    // --- 2. Reference vs incremental KL refinement. ---------------------
    for n in [64, 128, 256] {
        let mut rng = DetRng::new(0xBE7);
        let mut corr = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in (a + 1)..n {
                corr.set(a, b, rng.next_below(32));
            }
        }
        let cluster = ClusterConfig::new(8, n).expect("8-node cluster");
        let start = Mapping::random_balanced(&cluster, &mut rng);
        let slow = refine_kl_reference(&corr, start.clone());
        let fast = refine_kl(&corr, start.clone());
        let identical = slow == fast && cut_cost(&corr, &slow) == cut_cost(&corr, &fast);
        let t_ref = best_of(reps, || {
            refine_kl_reference(&corr, start.clone());
        });
        let t_inc = best_of(reps, || {
            refine_kl(&corr, start.clone());
        });
        push(
            &mut csv,
            &mut table,
            "refine_kl",
            &format!("{n} threads / 8 nodes"),
            t_ref.as_secs_f64() * 1e3,
            t_inc.as_secs_f64() * 1e3,
            identical,
        );
    }

    println!("{}", table.render());
    write_artifact("perf_pr1.csv", &csv);
    println!(
        "(speedup = baseline / optimized; \"identical\" asserts the optimized\n\
         path produced byte-identical results before timing it)"
    );
}

fn push(
    csv: &mut String,
    table: &mut Table,
    section: &str,
    case: &str,
    baseline_ms: f64,
    optimized_ms: f64,
    identical: bool,
) {
    assert!(identical, "{section}/{case}: outputs diverged");
    let speedup = baseline_ms / optimized_ms.max(1e-9);
    csv.push_str(&format!(
        "{section},{case},{baseline_ms:.3},{optimized_ms:.3},{speedup:.2},{identical}\n"
    ));
    table.row(&[
        section.to_string(),
        case.to_string(),
        format!("{baseline_ms:.1}"),
        format!("{optimized_ms:.1}"),
        format!("{speedup:.2}x"),
        identical.to_string(),
    ]);
}
