//! Tracked perf trajectory for the engine hot paths (`BENCH_pr6.json`).
//!
//! Measures two things per acceptance bin (`chaos`, `explore`), both at the
//! acceptance configuration of 64 threads on 8 nodes:
//!
//! 1. **Hot loop** — the per-interval dirty-tracking cycle (insert write
//!    spans, size the diff, count fragments, clear) replayed over the write
//!    streams the bin's applications actually generate. The *reference* is
//!    the byte-wise representation the engine used before this PR (one
//!    `bool` per byte, byte-stepped scans); the *optimized* path is the
//!    `u64`-chunked [`DirtyMask`](acorr::mem::DirtyMask) the engine uses
//!    now. Outputs are asserted identical before either is timed.
//! 2. **Wall clock** — an end-to-end representative run of the bin (one
//!    oracle-shadowed chaos cell, one schedule exploration) so the
//!    trajectory catches regressions outside the hot loop too.
//!
//! Writes `results/BENCH_pr6.json` (schema `acorr-bench/v1`, see
//! EXPERIMENTS.md). With `--baseline FILE` it additionally compares the
//! fresh measurement against the committed baseline and exits non-zero when
//! the hot-loop speedup drops below the 5x floor or regresses by more than
//! 10% relative to the baseline's machine-relative ratio —
//! `scripts/check_perf.sh` is a thin wrapper around this mode.
//!
//! Usage: `perf6 [--reps R] [--baseline FILE]` (default: 5 measured reps).

use acorr::apps;
use acorr::dsm::{Op, Program};
use acorr::experiment::Workbench;
use acorr::explore::ExploreOptions;
use acorr::mem::{span_pages, DirtyMask, PAGE_SIZE};
use acorr::sched::ExploreMode;
use acorr::sim::FaultPlan;
use acorr_bench::{arg_str, arg_usize, best_of, try_write_artifact, Table};

const NODES: usize = 8;
const THREADS: usize = 64;
/// Hot-loop speedup floor the gate enforces.
const SPEEDUP_FLOOR: f64 = 5.0;
/// Allowed relative slack vs the baseline's speedup ratio.
const REGRESSION_SLACK: f64 = 0.10;

/// One step of a bin's dirty-tracking replay: a write span landing on a
/// page, or a barrier closing the interval (size diffs, clear masks).
#[derive(Clone, Copy)]
enum Step {
    Span { page: u32, start: u16, end: u16 },
    Flush,
}

/// Extracts the dirty-tracking work an application generates: every write
/// span of every thread's script, page-split, with a flush per barrier.
/// `iters` repeats the script (LU's phases differ per iteration).
fn steps_of(program: &dyn Program, iters: usize) -> Vec<Step> {
    let mut steps = Vec::new();
    for iter in 0..iters {
        for t in 0..program.num_threads() {
            for op in program.script(t, iter) {
                match op {
                    Op::Write { addr, len } => {
                        for span in span_pages(addr, len) {
                            steps.push(Step::Span {
                                page: span.page.0,
                                start: span.start,
                                end: span.end,
                            });
                        }
                    }
                    Op::Barrier => steps.push(Step::Flush),
                    _ => {}
                }
            }
        }
        steps.push(Step::Flush);
    }
    steps
}

/// Replays the steps through the byte-wise reference representation: one
/// `bool` per byte, inserts and interval scans all step byte-at-a-time —
/// the shape of the pre-PR twin/diff comparison. Returns a checksum over
/// every interval's (dirty length, fragment count).
fn replay_bytewise(steps: &[Step], num_pages: usize) -> u64 {
    let mut masks: Vec<Vec<bool>> = vec![vec![false; PAGE_SIZE]; num_pages];
    let mut touched: Vec<u32> = Vec::new();
    let mut sum: u64 = 0;
    for step in steps {
        match *step {
            Step::Span { page, start, end } => {
                let mask = &mut masks[page as usize];
                if !mask.iter().any(|&b| b) {
                    touched.push(page);
                }
                for b in &mut mask[start as usize..end as usize] {
                    *b = true;
                }
            }
            Step::Flush => {
                for &page in &touched {
                    let mask = &mut masks[page as usize];
                    let mut len = 0u64;
                    let mut fragments = 0u64;
                    let mut prev = false;
                    for &b in mask.iter() {
                        len += b as u64;
                        fragments += (b && !prev) as u64;
                        prev = b;
                    }
                    sum = sum
                        .wrapping_mul(0x100000001b3)
                        .wrapping_add(len)
                        .wrapping_mul(0x100000001b3)
                        .wrapping_add(fragments);
                    mask.fill(false);
                }
                touched.clear();
            }
        }
    }
    sum
}

/// Replays the same steps through the word-chunked [`DirtyMask`]: inserts
/// are masked `u64` ORs, interval scans are popcounts and rising-edge
/// counts over 64 words, clears are word fills.
fn replay_mask(steps: &[Step], num_pages: usize) -> u64 {
    let mut masks: Vec<DirtyMask> = vec![DirtyMask::new(); num_pages];
    let mut touched: Vec<u32> = Vec::new();
    let mut sum: u64 = 0;
    for step in steps {
        match *step {
            Step::Span { page, start, end } => {
                let mask = &mut masks[page as usize];
                if mask.is_empty() {
                    touched.push(page);
                }
                mask.insert(start, end);
            }
            Step::Flush => {
                for &page in &touched {
                    let mask = &mut masks[page as usize];
                    sum = sum
                        .wrapping_mul(0x100000001b3)
                        .wrapping_add(mask.total_len())
                        .wrapping_mul(0x100000001b3)
                        .wrapping_add(mask.fragment_count() as u64);
                    mask.clear();
                }
                touched.clear();
            }
        }
    }
    sum
}

/// One bin's measurements.
#[derive(Clone)]
struct BinResult {
    name: &'static str,
    wall_ms: f64,
    reference_ms: f64,
    optimized_ms: f64,
}

impl BinResult {
    fn speedup(&self) -> f64 {
        self.reference_ms / self.optimized_ms.max(1e-9)
    }
}

/// Times one bin: the hot-loop replay over `apps_of` write streams and the
/// end-to-end `wall` closure.
fn measure_bin(
    name: &'static str,
    reps: usize,
    step_sets: &[(Vec<Step>, usize)],
    wall: impl FnMut(),
) -> BinResult {
    for (steps, num_pages) in step_sets {
        assert_eq!(
            replay_bytewise(steps, *num_pages),
            replay_mask(steps, *num_pages),
            "{name}: representations disagree on the diff stream"
        );
    }
    let reference = best_of(reps, || {
        for (steps, num_pages) in step_sets {
            std::hint::black_box(replay_bytewise(steps, *num_pages));
        }
    });
    let optimized = best_of(reps, || {
        for (steps, num_pages) in step_sets {
            std::hint::black_box(replay_mask(steps, *num_pages));
        }
    });
    let wall = best_of(reps.clamp(1, 2), wall);
    BinResult {
        name,
        wall_ms: wall.as_secs_f64() * 1e3,
        reference_ms: reference.as_secs_f64() * 1e3,
        optimized_ms: optimized.as_secs_f64() * 1e3,
    }
}

/// `git describe --always --dirty`, or `unknown` outside a checkout.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn render_json(git: &str, reps: usize, bins: &[BinResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"acorr-bench/v1\",\n");
    out.push_str("  \"bin\": \"perf6\",\n");
    out.push_str(&format!("  \"git\": \"{git}\",\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!(
        "  \"cluster\": {{ \"nodes\": {NODES}, \"threads\": {THREADS} }},\n"
    ));
    out.push_str("  \"bins\": {\n");
    for (i, bin) in bins.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{ \"wall_ms\": {:.3}, \"hot_loop\": {{ \
             \"reference_ms\": {:.3}, \"optimized_ms\": {:.3}, \
             \"speedup\": {:.2} }} }}{}\n",
            bin.name,
            bin.wall_ms,
            bin.reference_ms,
            bin.optimized_ms,
            bin.speedup(),
            if i + 1 < bins.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Pulls `"key": <number>` out of `json`, scoped to the section following
/// `"<bin>"`. Tiny by design: the schema is authored by this binary.
fn extract_f64(json: &str, bin: &str, key: &str) -> Option<f64> {
    let section = json.split(&format!("\"{bin}\"")).nth(1)?;
    let after = section.split(&format!("\"{key}\":")).nth(1)?;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Compares the fresh bins against a baseline JSON. Returns the failures.
fn gate(baseline: &str, bins: &[BinResult]) -> Vec<String> {
    let mut failures = Vec::new();
    for bin in bins {
        let fresh = bin.speedup();
        if fresh < SPEEDUP_FLOOR {
            failures.push(format!(
                "{}: hot-loop speedup {fresh:.2}x below the {SPEEDUP_FLOOR:.0}x floor",
                bin.name
            ));
        }
        match extract_f64(baseline, bin.name, "speedup") {
            Some(base) => {
                let allowed = base * (1.0 - REGRESSION_SLACK);
                if fresh < allowed {
                    failures.push(format!(
                        "{}: hot-loop speedup {fresh:.2}x regressed more than {:.0}% \
                         vs the baseline's {base:.2}x (floor {allowed:.2}x)",
                        bin.name,
                        REGRESSION_SLACK * 100.0
                    ));
                }
            }
            None => failures.push(format!(
                "{}: baseline JSON has no hot-loop speedup for this bin",
                bin.name
            )),
        }
    }
    failures
}

fn main() {
    let reps = arg_usize("--reps", 5).max(1);
    let baseline_path = arg_str("--baseline", "");
    println!(
        "perf6: engine hot-path trajectory ({THREADS} threads x {NODES} nodes, \
         best of {reps} reps)\n"
    );

    // Chaos bin: every suite application's write streams (the diff churn an
    // oracle-shadowed chaos cell drives), plus one representative
    // fault-injected conformance run end to end.
    let chaos_steps: Vec<(Vec<Step>, usize)> = apps::SUITE_NAMES
        .iter()
        .map(|&name| {
            let program = apps::by_name(name, THREADS).expect("known app");
            let num_pages = acorr::mem::pages_for(program.shared_bytes()) as usize;
            (steps_of(program.as_ref(), 2), num_pages)
        })
        .collect();
    let chaos_plan = FaultPlan::parse("moderate,seed=7").expect("preset parses");
    let chaos = measure_bin("chaos", reps, &chaos_steps, || {
        let run = Workbench::new(NODES, THREADS)
            .expect("cluster")
            .with_faults(chaos_plan.clone())
            .conformance_run(apps::by_name("Water", THREADS).expect("known app"), 1)
            .expect("oracle-clean run");
        assert_eq!(run.report.violations, 0);
    });

    // Explore bin: the write streams of the canonical exploration target,
    // plus a budget-2 exploration (default schedule + one steered) end to
    // end with all checkers attached.
    let sor = apps::by_name("SOR", THREADS).expect("known app");
    let explore_steps = vec![(
        steps_of(sor.as_ref(), 4),
        acorr::mem::pages_for(sor.shared_bytes()) as usize,
    )];
    let explore_options = ExploreOptions {
        budget: 2,
        iterations: 1,
        mode: ExploreMode::Random { seed: 5 },
        ..ExploreOptions::default()
    };
    let explore = measure_bin("explore", reps, &explore_steps, || {
        let report = Workbench::new(NODES, THREADS)
            .expect("cluster")
            .explore_run(
                || apps::by_name("SOR", THREADS).expect("known app"),
                &explore_options,
            )
            .expect("exploration runs");
        assert!(report.failure.is_none(), "SOR explores clean");
    });

    let bins = [chaos, explore];
    let mut table = Table::new(&[
        "Bin",
        "Wall (ms)",
        "Hot loop ref (ms)",
        "Hot loop opt (ms)",
        "Speedup",
    ]);
    for bin in &bins {
        table.row(&[
            bin.name.to_string(),
            format!("{:.1}", bin.wall_ms),
            format!("{:.3}", bin.reference_ms),
            format!("{:.3}", bin.optimized_ms),
            format!("{:.2}x", bin.speedup()),
        ]);
    }
    println!("{}", table.render());

    let json = render_json(&git_describe(), reps, &bins);
    if let Err(e) = try_write_artifact("BENCH_pr6.json", &json) {
        // A read-only checkout still prints the JSON; only the gate mode
        // needs the baseline file, and that is an input, not this output.
        eprintln!("warning: could not persist the artifact: {e}");
        println!("{json}");
    }

    if !baseline_path.is_empty() {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}", acorr::dsm::DsmError::io(&baseline_path, &e));
                std::process::exit(2);
            }
        };
        let failures = gate(&baseline, &bins);
        if failures.is_empty() {
            println!(
                "perf gate OK: every bin holds >={SPEEDUP_FLOOR:.0}x and is within \
                 {:.0}% of the baseline ratio ({baseline_path})",
                REGRESSION_SLACK * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("perf gate FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(page: u32, start: u16, end: u16) -> Step {
        Step::Span { page, start, end }
    }

    #[test]
    fn replays_agree_on_adversarial_streams() {
        let steps = vec![
            span(0, 0, 1),
            span(0, 4095, 4096),
            span(1, 63, 65),
            span(1, 100, 100),
            Step::Flush,
            span(0, 0, 4096),
            Step::Flush,
            span(2, 4090, 4096),
            span(2, 4000, 4090),
            Step::Flush,
        ];
        assert_eq!(replay_bytewise(&steps, 3), replay_mask(&steps, 3));
    }

    #[test]
    fn replays_agree_on_a_real_suite_app() {
        let program = apps::by_name("Water", 8).expect("known app");
        let pages = acorr::mem::pages_for(program.shared_bytes()) as usize;
        let steps = steps_of(program.as_ref(), 2);
        assert!(!steps.is_empty());
        assert_eq!(replay_bytewise(&steps, pages), replay_mask(&steps, pages));
    }

    #[test]
    fn json_round_trips_through_the_extractor() {
        let bins = [
            BinResult {
                name: "chaos",
                wall_ms: 1234.5,
                reference_ms: 100.0,
                optimized_ms: 4.0,
            },
            BinResult {
                name: "explore",
                wall_ms: 42.0,
                reference_ms: 80.0,
                optimized_ms: 10.0,
            },
        ];
        let json = render_json("deadbeef", 5, &bins);
        assert_eq!(extract_f64(&json, "chaos", "speedup"), Some(25.0));
        assert_eq!(extract_f64(&json, "explore", "speedup"), Some(8.0));
        assert_eq!(extract_f64(&json, "chaos", "wall_ms"), Some(1234.5));
        assert_eq!(extract_f64(&json, "absent", "speedup"), None);
    }

    #[test]
    fn gate_enforces_floor_and_regression_slack() {
        let ok = BinResult {
            name: "chaos",
            wall_ms: 1.0,
            reference_ms: 100.0,
            optimized_ms: 10.0, // 10x
        };
        let baseline = render_json(
            "base",
            5,
            &[BinResult {
                name: "chaos",
                wall_ms: 1.0,
                reference_ms: 100.0,
                optimized_ms: 9.5, // ~10.5x baseline
            }],
        );
        assert!(
            gate(&baseline, std::slice::from_ref(&ok)).is_empty(),
            "within 10% of baseline"
        );

        let slow = BinResult {
            name: "chaos",
            wall_ms: 1.0,
            reference_ms: 100.0,
            optimized_ms: 25.0, // 4x: below floor AND regressed
        };
        let failures = gate(&baseline, &[slow]);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("floor"));
        assert!(failures[1].contains("regressed"));

        let missing = gate("{}", &[ok]);
        assert_eq!(missing.len(), 1);
        assert!(missing[0].contains("no hot-loop speedup"));
    }
}
