//! Extension: the §3 node-count experiment.
//!
//! "A balanced, eight-node configuration would place 4 of the 32 threads on
//! each node. However, any such configuration would entail breaking up the
//! large sharing blocks, implying that an eight-node configuration would
//! have much more communication than a four-node configuration. We have
//! confirmed that this is the case."
//!
//! This binary confirms it too, for 32-thread LU2k and FFT6 on 2/4/8
//! nodes, and prints the structure advisor's take.

use acorr::apps;
use acorr::dsm::DsmConfig;
use acorr::experiment::{node_count_study, Workbench};
use acorr::sim::{Mapping, NetworkModel};
use acorr::track::{compatible_node_sizes, profile_map};
use acorr_bench::arg_usize;

fn main() {
    let iters = arg_usize("--iters", 10);
    let jobs = arg_usize("--threads", 0); // 0 = available parallelism
    for name in ["LU2k", "FFT6"] {
        println!("--- {name}, 32 threads, stretch placement, {iters} iterations ---");
        let rows = node_count_study(
            || apps::by_name(name, 32).expect("known app"),
            32,
            &[2, 4, 8],
            iters,
            jobs,
        )
        .expect("study");
        for row in &rows {
            println!("  {row}");
        }
        let bench = Workbench::new(4, 32).expect("cluster");
        let truth = bench
            .ground_truth(|| apps::by_name(name, 32).expect("known app"))
            .expect("tracked");
        let profile = profile_map(&truth.corr);
        println!(
            "  map says: {profile}\n  compatible per-node thread counts: {:?}\n",
            compatible_node_sizes(&profile, 32)
        );
    }
    // §3's punchline: "the communication difference turns out to be enough
    // to make the eight-node configuration slower than the four-node
    // configuration on some clusters of machines" — reproduce it on an
    // Ethernet-class cluster.
    println!("--- LU2k, 32 threads, Ethernet-class network ---");
    for nodes in [4usize, 8] {
        let bench = Workbench::new(nodes, 32).expect("cluster");
        let cluster = bench.cluster;
        let bench =
            bench.with_config(DsmConfig::new(cluster).with_network(NetworkModel::ethernet()));
        let mut dsm = bench
            .dsm(
                apps::by_name("LU2k", 32).expect("known app"),
                Mapping::stretch(&cluster),
            )
            .expect("dsm");
        dsm.run_iterations(1).expect("warm");
        let stats = dsm.run_iterations(iters).expect("run");
        println!(
            "  {nodes} nodes: {:>7.2}s, {:>7} misses",
            stats.elapsed.as_secs_f64(),
            stats.remote_misses
        );
    }
    println!(
        "  -> with expensive communication, splitting the 8-thread sharing\n\
        blocks makes the larger cluster slower — §3's observation."
    );
}
