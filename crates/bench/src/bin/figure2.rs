//! Figure 2 — passive information-gathering.
//!
//! Methodology (§4.1): track only remote faults, re-place with min-cost on
//! the partial correlations after each iteration, migrate, repeat. Reports
//! the cumulative percentage of the complete (active-tracking) sharing
//! information gathered after each round, plus the thread migrations per
//! round — the "ping-ponging" the paper describes.
//!
//! The migration rounds of one study are inherently sequential (each round
//! migrates before the next observes), so parallelism comes from fanning
//! the applications out across pool workers; output is printed in app order
//! and is bit-identical at any `--threads` value.
//!
//! Usage: `figure2 [--rounds N] [--threads T]` (defaults: 10 rounds, all
//! available worker threads).

use acorr::apps;
use acorr::experiment::Workbench;
use acorr::sim::{par_map_indexed, resolve_threads};
use acorr_bench::{arg_usize, write_artifact, Table};

const FIGURE2_APPS: [&str; 6] = ["Barnes", "FFT7", "LU2k", "Ocean", "SOR", "Water"];

fn main() {
    let rounds = arg_usize("--rounds", 10);
    let threads = resolve_threads(arg_usize("--threads", 0));
    println!(
        "Figure 2: passive information-gathering ({rounds} migration rounds, \
         {threads} worker thread(s))\n"
    );

    let mut header: Vec<String> = vec!["App".to_string()];
    header.extend((1..=rounds).map(|r| format!("r{r}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    let mut csv = String::from("app,round,completeness,moves\n");

    let per_app = (threads / FIGURE2_APPS.len()).max(1);
    // One workbench serves every row — it is plain configuration data.
    let bench = Workbench::new(8, 64)
        .expect("8x64 cluster")
        .with_threads(per_app);
    let studies = par_map_indexed(
        threads.min(FIGURE2_APPS.len()),
        FIGURE2_APPS.to_vec(),
        |_, name| {
            bench
                .passive_study(|| apps::by_name(name, 64).expect("known app"), rounds)
                .expect("passive study")
        },
    );
    for (name, study) in FIGURE2_APPS.into_iter().zip(studies) {
        let mut cells = vec![name.to_string()];
        for (r, (c, m)) in study.completeness.iter().zip(&study.moves).enumerate() {
            cells.push(format!("{:.0}%", c * 100.0));
            csv.push_str(&format!("{name},{},{c:.4},{m}\n", r + 1));
        }
        table.row(&cells);
        let total_moves: usize = study.moves.iter().sum();
        println!(
            "{name}: final completeness {:.1}%, {total_moves} thread migrations across rounds",
            study.completeness.last().copied().unwrap_or(0.0) * 100.0
        );
    }
    println!("\n{}", table.render());
    write_artifact("figure2.csv", &csv);
    println!(
        "Active tracking reaches 100% in ONE round by construction; the\n\
         passive mechanism above plateaus below that because only the first\n\
         local toucher of each page ever faults."
    );
}
