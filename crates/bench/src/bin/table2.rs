//! Table 2 — remote misses as a linear function of cut cost.
//!
//! Methodology (§2): derive ground-truth thread correlations with one
//! active-tracking phase, generate random thread configurations (at least
//! two threads per node, not necessarily balanced), run each and record
//! remote misses, then fit `misses = slope * cut + intercept`.
//!
//! Also writes the per-application Figure 1 scatter data to
//! `results/figure1_<app>.csv`.
//!
//! Applications fan out across pool workers and each application's samples
//! fan out across its workbench's share of the remaining threads; output is
//! bit-identical at any `--threads` value (see `acorr::sim::pool`).
//!
//! Usage: `table2 [--samples N] [--iters M] [--threads T]` (defaults: 300
//! samples, 1 measured iteration per sample — one iteration is the app's
//! natural unit of work — and all available worker threads; `--threads 1`
//! is the exact sequential path).

use acorr::apps;
use acorr::experiment::Workbench;
use acorr::sim::{par_map_indexed, resolve_threads};
use acorr_bench::{arg_usize, write_artifact, Table};

fn main() {
    let samples = arg_usize("--samples", 300);
    let iters = arg_usize("--iters", 1);
    let threads = resolve_threads(arg_usize("--threads", 0));

    println!(
        "Table 2: remote misses as a function of cut cost\n\
         ({samples} random configurations per application, {iters} measured iteration(s) each,\n\
         {threads} worker thread(s))\n"
    );
    let mut table = Table::new(&[
        "App",
        "Slope",
        "Y-intercept",
        "Corr. coeff.",
        "Paper slope",
        "Paper r",
    ]);
    let paper: &[(&str, f64, f64)] = &[
        ("Barnes", 0.227, 0.742),
        ("FFT7", 2.517, 0.925),
        ("FFT8", 2.805, 0.911),
        ("LU2k", 2.694, 0.724),
        ("Ocean", 4.508, 0.937),
        ("Spatial", 0.079, 0.458),
        ("SOR", 4.100, 0.961),
        ("Water", 0.402, 0.779),
    ];
    // One pool worker per application; each application's workbench gets an
    // equal share of the remaining threads for its sample fan-out. One
    // workbench serves every row — it is plain configuration data.
    let per_app = (threads / paper.len()).max(1);
    let bench = Workbench::new(8, 64)
        .expect("8x64 cluster")
        .with_threads(per_app);
    let studies = par_map_indexed(
        threads.min(paper.len()),
        paper.to_vec(),
        |_, (name, _, _)| {
            bench
                .cutcost_study(
                    || apps::by_name(name, 64).expect("known app"),
                    samples,
                    iters,
                )
                .expect("study")
        },
    );
    for (&(name, paper_slope, paper_r), study) in paper.iter().zip(studies) {
        let fit = study.fit.expect("non-degenerate fit");
        table.row(&[
            name.to_string(),
            format!("{:.3}", fit.slope),
            format!("{:.1}", fit.intercept),
            format!("{:.3}", fit.r),
            format!("{paper_slope:.3}"),
            format!("{paper_r:.3}"),
        ]);
        write_artifact(&format!("figure1_{name}.csv"), &study.to_csv());
    }
    println!("{}", table.render());
}
