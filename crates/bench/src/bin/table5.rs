//! Table 5 — 64-thread tracking overhead.
//!
//! For each application: iteration time with tracking off and on (measured
//! at the same iteration index on twin instances), the percent slowdown,
//! tracking and coherence fault counts during the tracked iteration, and
//! the sharing degree.
//!
//! Applications fan out across pool workers (each one also runs its twin
//! instances on two workers when threads allow); rows are printed in suite
//! order and are bit-identical at any `--threads` value.
//!
//! Usage: `table5 [--threads T]` (default: all available worker threads).

use acorr::apps;
use acorr::experiment::Workbench;
use acorr::sim::{par_map_indexed, resolve_threads};
use acorr_bench::{arg_usize, Table};

fn paper_row(name: &str) -> (f64, f64, u64, u64, f64) {
    // (off secs, slowdown %, tracking faults, coherence faults, degree)
    match name {
        "Barnes" => (2.24, 3.62, 8628, 8316, 6.583),
        "FFT6" => (0.37, 8.99, 5216, 928, 2.657),
        "FFT7" => (0.67, 11.28, 6112, 1824, 1.734),
        "FFT8" => (1.41, 7.32, 5600, 5920, 1.268),
        "LU1k" => (0.30, 8.11, 9855, 232, 7.359),
        "LU2k" => (0.80, 33.33, 36102, 344, 7.821),
        "Ocean" => (1.92, 69.92, 62039, 12439, 2.112),
        "Spatial" => (13.43, 1.27, 38286, 6296, 6.030),
        "SOR" => (0.15, 75.68, 8640, 56, 1.081),
        "Water" => (1.07, 2.25, 2983, 1427, 6.754),
        _ => (0.0, 0.0, 0, 0, 0.0),
    }
}

fn main() {
    let threads = resolve_threads(arg_usize("--threads", 0));
    println!(
        "Table 5: 64-thread tracking overhead (8 threads per node, {threads} worker thread(s))\n"
    );
    let mut table = Table::new(&[
        "App",
        "Off (s)",
        "On (s)",
        "Slowdown",
        "Tracking",
        "Coherence",
        "Degree",
        "[paper: slow%/track/degree]",
    ]);
    let suite: Vec<&str> = apps::SUITE_NAMES.to_vec();
    let per_app = (threads / suite.len()).max(1);
    // One workbench serves every row — it is plain configuration data.
    let bench = Workbench::new(8, 64)
        .expect("8x64 cluster")
        .with_threads(per_app);
    let rows = par_map_indexed(threads.min(suite.len()), suite.clone(), |_, name| {
        bench
            .tracking_overhead(|| apps::by_name(name, 64).expect("known app"))
            .expect("overhead run")
    });
    for (name, row) in suite.into_iter().zip(rows) {
        let (_, p_slow, p_track, _, p_deg) = paper_row(name);
        table.row(&[
            name.to_string(),
            format!("{:.2}", row.time_off.as_secs_f64()),
            format!("{:.2}", row.time_on.as_secs_f64()),
            format!("{:.2}%", row.slowdown_pct),
            row.tracking_faults.to_string(),
            row.coherence_faults.to_string(),
            format!("{:.3}", row.sharing_degree),
            format!("{p_slow:.2}% / {p_track} / {p_deg:.3}"),
        ]);
    }
    println!("{}", table.render());
}
