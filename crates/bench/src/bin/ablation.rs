//! Ablations over the cost-model parameters DESIGN.md calls out.
//!
//! Three sensitivity sweeps show *why* the headline results look the way
//! they do, and that they are not artifacts of one parameter choice:
//!
//! 1. **Tracking-fault cost** vs Table 5 slowdown — the dominant term of
//!    active tracking's overhead.
//! 2. **Network latency** vs the min-cost/random gap — placement matters
//!    more on slower networks.
//! 3. **GC threshold** vs Ocean's behaviour — the paper's §2 note that
//!    garbage collection causes extra remote faults.

use acorr::apps;
use acorr::dsm::DsmConfig;
use acorr::experiment::Workbench;
use acorr::place::Strategy;
use acorr::sim::{CostModel, NetworkModel, SimDuration};
use acorr_bench::Table;

fn main() {
    tracking_fault_sweep();
    latency_sweep();
    gc_sweep();
}

fn tracking_fault_sweep() {
    println!("Ablation 1: tracking-fault cost vs tracked-iteration slowdown\n");
    let mut table = Table::new(&[
        "Fault cost",
        "SOR slowdown",
        "LU2k slowdown",
        "Water slowdown",
    ]);
    // One validated workbench for the whole sweep; each cell only swaps the
    // cost model (Workbench is cheap, but re-validating the same topology
    // 12 times in the hot sweep was pure waste).
    let base = Workbench::new(8, 64).expect("cluster");
    let cluster = base.cluster;
    for us in [0u64, 20, 60, 120] {
        let cost = CostModel {
            tracking_fault: SimDuration::from_micros(us),
            ..CostModel::default()
        };
        let mut cells = vec![format!("{us} us")];
        for name in ["SOR", "LU2k", "Water"] {
            let bench = base
                .clone()
                .with_config(DsmConfig::new(cluster).with_cost(cost));
            let row = bench
                .tracking_overhead(|| apps::by_name(name, 64).expect("known app"))
                .expect("run");
            cells.push(format!("{:.1}%", row.slowdown_pct));
        }
        table.row(&cells);
    }
    println!("{}", table.render());
}

fn latency_sweep() {
    println!("Ablation 2: network latency vs the placement payoff (LU1k, 10 iters)\n");
    let mut table = Table::new(&[
        "Latency",
        "m-c misses",
        "ran misses",
        "m-c time",
        "ran time",
        "time ratio",
    ]);
    for us in [20u64, 60, 180] {
        let net = NetworkModel {
            latency: SimDuration::from_micros(us),
            ..NetworkModel::default()
        };
        let bench = Workbench::new(8, 64).expect("cluster");
        let cluster = bench.cluster;
        let bench = bench.with_config(DsmConfig::new(cluster).with_network(net));
        let rows = bench
            .heuristic_comparison(
                || apps::by_name("LU1k", 64).expect("known app"),
                &[Strategy::MinCost, Strategy::RandomBalanced],
                10,
            )
            .expect("run");
        let (mc, ran) = (&rows[0], &rows[1]);
        table.row(&[
            format!("{us} us"),
            mc.remote_misses.to_string(),
            ran.remote_misses.to_string(),
            format!("{:.1}s", mc.time.as_secs_f64()),
            format!("{:.1}s", ran.time.as_secs_f64()),
            format!("{:.2}x", ran.time.as_secs_f64() / mc.time.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    println!("(a slower network widens the random-placement penalty — the paper's\n motivation is strongest exactly where communication is expensive)\n");
}

fn gc_sweep() {
    println!("Ablation 3: GC threshold vs Ocean coherence behaviour (8 iters)\n");
    let mut table = Table::new(&[
        "GC threshold",
        "GC runs",
        "Remote misses",
        "Diff MB",
        "Time",
    ]);
    for threshold in [2_000usize, 16_384, usize::MAX / 2] {
        let bench = Workbench::new(8, 64).expect("cluster");
        let cluster = bench.cluster;
        let bench = bench.with_config(DsmConfig::new(cluster).with_gc_threshold(threshold));
        let mapping = acorr::sim::Mapping::stretch(&cluster);
        let mut dsm = bench
            .dsm(apps::by_name("Ocean", 64).expect("known app"), mapping)
            .expect("dsm");
        dsm.run_iterations(1).expect("warm");
        let stats = dsm.run_iterations(8).expect("run");
        let label = if threshold > 1_000_000 {
            "off".to_string()
        } else {
            threshold.to_string()
        };
        table.row(&[
            label,
            stats.gc_runs.to_string(),
            stats.remote_misses.to_string(),
            format!("{:.1}", stats.diff_mbytes()),
            format!("{:.1}s", stats.elapsed.as_secs_f64()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "(consolidation invalidates replicas and converts long diff chains\n\
         into full-page refetches: diff traffic falls, page traffic and\n\
         consolidation stalls rise — the GC interference §2 lists as a\n\
         contributing factor to deviations from the linear cut-cost model)"
    );
}
