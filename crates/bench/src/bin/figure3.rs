//! Figure 3 — 32-thread FFT (2^6x2^6x2^6) free-zone maps.
//!
//! (a) four nodes: the same-node "free zones" cover the sharing clusters —
//!     low cut cost;
//! (b) eight nodes: the smaller free zones cover only half of each
//!     cluster — higher cut cost;
//! (c) four nodes with randomly permuted thread assignment — much higher
//!     cut cost that neither configuration addresses.

use acorr::apps::Fft;
use acorr::experiment::Workbench;
use acorr::sim::{ClusterConfig, DetRng, Mapping};
use acorr::track::{cut_cost, render_ascii, render_svg, MapStyle};
use acorr_bench::write_artifact;

fn main() {
    let bench = Workbench::new(4, 32).expect("4x32 cluster");
    let truth = bench.ground_truth(|| Fft::paper6(32)).expect("tracked run");

    let four = ClusterConfig::new(4, 32).expect("4 nodes");
    let eight = ClusterConfig::new(8, 32).expect("8 nodes");
    let mut rng = DetRng::new(0xF163);
    let configs = [
        ("(a) 4 nodes, stretch", Mapping::stretch(&four)),
        ("(b) 8 nodes, stretch", Mapping::stretch(&eight)),
        (
            "(c) 4 nodes, randomized",
            Mapping::stretch(&four).permuted(&mut rng),
        ),
    ];
    println!("Figure 3: 32-thread FFT 64^3 — free zones (same-node pairs shown as '\u{b7}')\n");
    let mut artifact = String::new();
    for (i, (label, mapping)) in configs.into_iter().enumerate() {
        let cut = cut_cost(&truth.corr, &mapping);
        let style = MapStyle {
            free_zones: Some(mapping),
            scale_max: None,
        };
        let art = render_ascii(&truth.corr, &style);
        println!("--- {label}: cut cost {cut} ---");
        println!("{art}");
        artifact.push_str(&format!("--- {label}: cut cost {cut} ---\n{art}\n"));
        write_artifact(
            &format!("figure3_{}.svg", (b'a' + i as u8) as char),
            &render_svg(&truth.corr, &style),
        );
    }
    write_artifact("figure3.txt", &artifact);
    println!(
        "The randomized assignment's cut cost exceeds both stretch\n\
         configurations, and the 8-node cut exceeds the 4-node cut — the\n\
         ordering the paper uses to motivate reconfiguration by migration."
    );
}
