//! Chaos study — protocol robustness across fault intensities.
//!
//! Runs every suite application under every fault-plan preset in
//! [`FAULT_PRESETS`] — the single table `FaultPlan::parse` itself resolves
//! preset names from, so the accepted `--plans` names, the default list and
//! the printed legend can never drift from the parser — with the coherence
//! conformance oracle shadowing each run. For each (app, plan) cell it
//! reports simulated time, remote misses, first-send traffic,
//! fault-injected recoveries (retransmissions, duplicate deliveries,
//! checksum-caught corruptions, partition-delayed messages, crashes), and
//! what the oracle checked. A run only appears here if the oracle found
//! zero release-consistency violations — any violation aborts the cell
//! loudly.
//!
//! For barrier-only applications the paper-reproduction counters (misses,
//! first-send bytes) are *identical* across crash-free intensities: fault
//! injection perturbs timing and adds retransmissions, never protocol
//! outcomes — the binary asserts this. Crash plans are exempt: a wiped
//! cache legitimately re-fetches pages, so crashes move the miss counters
//! (the oracle still certifies the outcome). Lock-based applications
//! (Barnes, Ocean, Spatial, Water) may shift by a handful of misses
//! because perturbed timing legitimately reorders lock grants, and release
//! consistency admits either order.
//!
//! Usage: `chaos [--threads T] [--nodes N] [--iters I] [--seed S] [--jobs J]
//! [--plans LIST]` (defaults: 16 threads, 4 nodes, 3 iterations, seed 7,
//! all cores, every preset). `--plans` is a comma-separated list of
//! preset names; a malformed name is reported through the same
//! `DsmError::FaultSpec` diagnostic the CLI prints, not a panic.
//! `--threads 64 --nodes 8` reproduces the acceptance configuration.

use acorr::apps;
use acorr::dsm::DsmError;
use acorr::experiment::{ConformanceRun, Workbench};
use acorr::sim::{par_map_indexed, resolve_threads, FaultPlan, FAULT_PRESETS};
use acorr_bench::{arg_str, arg_usize, write_artifact, Table};

/// The default `--plans` list: every preset name, in table order.
fn default_plan_spec() -> String {
    FAULT_PRESETS
        .iter()
        .map(|p| p.name)
        .collect::<Vec<_>>()
        .join(",")
}

/// One line per preset: name and summary, straight from the table.
fn preset_legend() -> String {
    FAULT_PRESETS
        .iter()
        .map(|p| format!("  {:<10} {}", p.name, p.summary))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Resolves the `--plans` preset list. Each label round-trips through
/// [`FaultPlan::parse`] with the study seed appended, so unknown presets
/// surface as [`DsmError::FaultSpec`] exactly like `acorr run --faults`.
fn plans(spec: &str, seed: u64) -> Result<Vec<(String, FaultPlan)>, DsmError> {
    spec.split(',')
        .map(str::trim)
        .filter(|label| !label.is_empty())
        .map(|label| {
            let plan = if label == "none" {
                FaultPlan::parse(label)
            } else {
                FaultPlan::parse(&format!("{label},seed={seed}"))
            }
            .map_err(DsmError::from)?;
            Ok((label.to_string(), plan))
        })
        .collect()
}

fn main() {
    let threads = arg_usize("--threads", 16);
    let nodes = arg_usize("--nodes", 4);
    let iters = arg_usize("--iters", 3);
    let seed = arg_usize("--seed", 7) as u64;
    let jobs = resolve_threads(arg_usize("--jobs", 0));
    let plan_spec = arg_str("--plans", &default_plan_spec());
    let plans = plans(&plan_spec, seed).unwrap_or_else(|e| {
        eprintln!("{e}\navailable presets:\n{}", preset_legend());
        std::process::exit(2);
    });
    if plans.is_empty() {
        eprintln!(
            "--plans selected no fault plans\navailable presets:\n{}",
            preset_legend()
        );
        std::process::exit(2);
    }
    println!(
        "Chaos study: {threads} threads on {nodes} nodes, {iters} iterations, \
         fault seed {seed} ({jobs} worker thread(s))\nplans:\n{}\n",
        preset_legend()
    );

    let cells: Vec<(&'static str, String, FaultPlan)> = apps::SUITE_NAMES
        .iter()
        .flat_map(|&app| {
            plans
                .iter()
                .map(move |(label, plan)| (app, label.clone(), plan.clone()))
        })
        .collect();
    // One base workbench serves every cell; only the fault plan differs.
    let bench = Workbench::new(nodes, threads).expect("cluster");
    let runs: Vec<ConformanceRun> = par_map_indexed(jobs, cells.clone(), |_, (app, _, plan)| {
        bench
            .clone()
            .with_faults(plan)
            .conformance_run(apps::by_name(app, threads).expect("known app"), iters)
            .expect("oracle-clean run")
    });

    let mut table = Table::new(&[
        "App",
        "Plan",
        "Time (s)",
        "Misses",
        "MB sent",
        "Retries",
        "Dups",
        "Corrupt",
        "Part delay",
        "Crashes",
        "Retrans KB",
        "Checked MB",
        "Hazy B",
    ]);
    let mut csv = String::from(
        "app,plan,time_s,remote_misses,bytes_sent,retries,retrans_messages,\
         retrans_bytes,dup_messages,dup_bytes,corrupt_detected,\
         partition_delays,crashes,pages_wiped,barriers_checked,\
         bytes_compared,hazy_bytes\n",
    );
    for ((app, label, _), run) in cells.iter().zip(&runs) {
        assert_eq!(run.report.violations, 0, "{app}/{label}: oracle violation");
        let s = &run.stats;
        table.row(&[
            app.to_string(),
            label.to_string(),
            format!("{:.3}", s.elapsed.as_secs_f64()),
            s.remote_misses.to_string(),
            format!("{:.2}", s.net.total_bytes() as f64 / 1e6),
            s.retries.to_string(),
            s.dup_messages.to_string(),
            s.corrupt_detected.to_string(),
            s.partition_delays.to_string(),
            s.crashes.to_string(),
            format!("{:.1}", s.net.total_retrans_bytes() as f64 / 1e3),
            format!("{:.1}", run.report.bytes_compared as f64 / 1e6),
            run.report.hazy_bytes.to_string(),
        ]);
        csv.push_str(&format!(
            "{app},{label},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            s.elapsed.as_secs_f64(),
            s.remote_misses,
            s.net.total_bytes(),
            s.retries,
            s.net.total_retrans_messages(),
            s.net.total_retrans_bytes(),
            s.dup_messages,
            s.dup_bytes,
            s.corrupt_detected,
            s.partition_delays,
            s.crashes,
            s.pages_wiped,
            run.report.barriers_checked,
            run.report.bytes_compared,
            run.report.hazy_bytes,
        ));
    }
    println!("{}", table.render());

    // Invariant: without locks there is no timing-dependent ordering, so
    // the paper-reproduction counters never move with the plan — except
    // under crashes, which wipe caches and legitimately re-fetch. The
    // check pins every crash-free plan to the first crash-free plan's
    // counters.
    for (cell_chunk, run_chunk) in cells.chunks(plans.len()).zip(runs.chunks(plans.len())) {
        let app = cell_chunk[0].0;
        if apps::by_name(app, threads).expect("known app").num_locks() > 0 {
            continue;
        }
        let mut baseline: Option<&acorr::dsm::IterStats> = None;
        for (cell, run) in cell_chunk.iter().zip(run_chunk) {
            if cell.2.crash_prob > 0.0 {
                continue;
            }
            match baseline {
                None => baseline = Some(&run.stats),
                Some(base) => {
                    assert_eq!(
                        run.stats.remote_misses, base.remote_misses,
                        "{}/{}: crash-free faults must not change barrier-only \
                         protocol outcomes",
                        cell.0, cell.1
                    );
                    assert_eq!(run.stats.net.total_bytes(), base.net.total_bytes());
                }
            }
        }
    }
    println!(
        "invariant holds: barrier-only apps keep identical misses and \
         first-send bytes across crash-free plans"
    );
    write_artifact("chaos.csv", &csv);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_list_matches_the_presets() {
        // The default spec is derived from FAULT_PRESETS, so every name
        // resolves and builds exactly the preset's plan for the study seed.
        let resolved = plans(&default_plan_spec(), 7).unwrap();
        assert_eq!(resolved.len(), FAULT_PRESETS.len());
        for (preset, (label, plan)) in FAULT_PRESETS.iter().zip(&resolved) {
            assert_eq!(preset.name, label);
            assert_eq!(*plan, (preset.build)(7), "{label}");
        }
        // The listing and the parser share the table: every legend line
        // names an accepted preset.
        let legend = preset_legend();
        for preset in FAULT_PRESETS {
            assert!(legend.contains(preset.name), "{legend}");
            assert!(legend.contains(preset.summary), "{legend}");
        }
        // The classic four are still the table's head, in order.
        let labels: Vec<&str> = resolved.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(&labels[..4], ["none", "light", "moderate", "heavy"]);
        assert_eq!(resolved[0].1, FaultPlan::none());
    }

    #[test]
    fn malformed_preset_routes_through_dsm_error() {
        let err = plans("light,bogus", 7).unwrap_err();
        assert!(matches!(err, DsmError::FaultSpec(_)));
        assert!(err.to_string().starts_with("fault spec error:"), "{err}");
        assert!(err.to_string().contains("bogus"), "{err}");
    }
}
