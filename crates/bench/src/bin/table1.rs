//! Table 1 — application characteristics: synchronization types, input
//! sizes, and shared pages, for the full suite at 64 threads.

use acorr::apps;
use acorr::dsm::Program;
use acorr::mem::pages_for;
use acorr_bench::Table;

fn input_label(name: &str) -> &'static str {
    match name {
        "Barnes" => "8192 bodies",
        "FFT6" => "64x64x64",
        "FFT7" => "64x64x128",
        "FFT8" => "64x64x256",
        "LU1k" => "1024x1024",
        "LU2k" => "2048x2048",
        "Ocean" => "256 oceans",
        "Spatial" => "4096 mols",
        "SOR" => "2048x2048",
        "Water" => "512 mols",
        _ => "?",
    }
}

/// Paper values for side-by-side comparison.
fn paper_pages(name: &str) -> u64 {
    match name {
        "Barnes" => 251,
        "FFT6" => 1796,
        "FFT7" => 3588,
        "FFT8" => 7172,
        "LU1k" => 1032,
        "LU2k" => 4105,
        "Ocean" => 3191,
        "Spatial" => 569,
        "SOR" => 4099,
        "Water" => 44,
        _ => 0,
    }
}

fn main() {
    println!("Table 1: Application Characteristics (64 threads)\n");
    let mut table = Table::new(&[
        "Application",
        "Synchronization",
        "Input size",
        "Shared pages",
        "Paper pages",
    ]);
    for name in apps::SUITE_NAMES {
        let app = apps::by_name(name, 64).expect("suite name");
        let sync = if app.num_locks() > 0 {
            "barrier, lock"
        } else {
            "barrier"
        };
        table.row(&[
            name.to_string(),
            sync.to_string(),
            input_label(name).to_string(),
            pages_for(app.shared_bytes()).to_string(),
            paper_pages(name).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Note: FFT page counts are lower than the paper's because this\n\
         reproduction stores complex f32 elements (8 B) in two arrays; the\n\
         2x scaling across FFT6/7/8 — which drives every FFT result — is\n\
         preserved. All other applications match Table 1 closely."
    );
}
