//! Extension: the §7 adaptive-migration experiment on the dynamic Drift
//! application.
//!
//! "We plan to extend our results with dynamic applications... Note that
//! the stretch heuristic is only applicable to applications with static
//! sharing patterns. We will need to rely on min-cost in order to obtain
//! good performance for adaptive applications."
//!
//! Three policies over the same run, all costs (tracking iterations and
//! migrations) included.

use acorr::apps::Drift;
use acorr::dsm::DsmConfig;
use acorr::experiment::Workbench;
use acorr::obs::{Analysis, ObsConfig};
use acorr::sim::{NetworkModel, SimDuration};
use acorr_bench::arg_usize;

fn main() {
    let period = arg_usize("--period", 12);
    let phases = arg_usize("--phases", 4);
    let total = period * phases;
    println!(
        "Drift: 2048 particles, 64 threads on 8 nodes, partner offset jumps\n\
         every {period} iterations, {total} iterations total\n"
    );
    for (label, latency_us) in [
        ("Myrinet-class (60 us latency)", 60u64),
        ("commodity Ethernet-class (400 us latency)", 400),
    ] {
        let net = NetworkModel {
            latency: SimDuration::from_micros(latency_us),
            ..NetworkModel::default()
        };
        let bench = Workbench::new(8, 64).expect("8x64 cluster");
        let cluster = bench.cluster;
        let bench = bench.with_config(DsmConfig::new(cluster).with_network(net));
        let study = bench
            .adaptive_study(|| Drift::new(2048, 64, period), total, period, 0.25)
            .expect("study");
        println!("=== {label} ===");
        println!("{study}");
        let vs_static = study.static_stats.remote_misses as f64
            / study.adaptive_stats.remote_misses.max(1) as f64;
        let time_ratio =
            study.static_stats.elapsed.as_secs_f64() / study.adaptive_stats.elapsed.as_secs_f64();
        println!(
            "  -> adaptive: {vs_static:.1}x fewer remote misses, {time_ratio:.2}x end-to-end speedup\n"
        );
    }
    // When to re-track: fixed schedule vs drift detection on passive
    // observations.
    let bench = Workbench::new(8, 64).expect("8x64 cluster");
    let study = bench
        .on_demand_study(|| Drift::new(2048, 64, period), total, 4, 0.4, 0.25)
        .expect("study");
    println!("=== when to re-track (window = 4 iterations) ===");
    println!("{study}\n");
    // Analytics smoke: the phase-change detector must flag Drift's partner
    // jumps from the observed run, and the trace analytics must decompose
    // the same event stream without touching the measured statistics.
    let bench = Workbench::new(2, 8)
        .expect("2x8 cluster")
        .with_observer(ObsConfig::all());
    let scan = bench
        .phase_scan(|| Drift::new(256, 8, 4), 16, 2)
        .expect("phase scan");
    let obs = scan.observation.expect("observer configured");
    let jsonl = obs.events_jsonl.expect("jsonl sink on");
    let analysis = Analysis::from_events(&jsonl).expect("well-formed event log");
    println!("=== phase detection + trace analytics smoke (Drift 8 threads, 2 nodes) ===");
    println!(
        "  detected {} phase shift(s): {:?}",
        scan.shifts.len(),
        scan.shifts
    );
    assert!(
        !scan.shifts.is_empty(),
        "Drift's partner jumps must register as phase shifts"
    );
    println!(
        "  analytics: {} hot page(s), {} thread(s), {} interval(s), {} span phase(s)",
        analysis.pages.len(),
        analysis.threads.len(),
        analysis.intervals.len(),
        analysis.spans.len()
    );
    assert!(
        analysis.spans.iter().any(|s| s.phase == "fetch"),
        "span profiling must capture fetches"
    );
    println!();
    println!(
        "Adaptation halves the coherence traffic; end-to-end time lands near\n\
         parity because every cost is charged — the tracked iterations, the\n\
         stack copies, the post-migration re-caching, and the loss of lock\n\
         locality (min-cost optimizes page affinity, not lock affinity).\n\
         That accounting is the point: §7's adaptive story is a traffic win\n\
         first, and a time win only where coherence traffic, not compute or\n\
         synchronization, dominates."
    );
}
