//! Table 4 — 64-thread FFT correlation maps versus input set.
//!
//! The paper's observation: at 2^6x2^6x2^6 sharing organizes into eight
//! 8-thread clusters; doubling the input halves the cluster size; doubling
//! again approaches uniform all-to-all. The mechanism is the ratio of the
//! transpose processor-block size to the page size, which this binary also
//! prints.

use acorr::apps::Fft;
use acorr::experiment::Workbench;
use acorr::mem::PAGE_SIZE;
use acorr::track::{profile_map, render_ascii, render_pgm, MapStyle};
use acorr_bench::results_dir;

type FftVariant = (&'static str, fn(usize) -> Fft);

fn main() {
    let maps_dir = results_dir().join("maps");
    std::fs::create_dir_all(&maps_dir).expect("create maps dir");
    let bench = Workbench::new(8, 64).expect("cluster");
    println!("Table 4: 64-thread FFT versus input set\n");
    let variants: [FftVariant; 3] = [
        ("FFT6", Fft::paper6),
        ("FFT7", Fft::paper7),
        ("FFT8", Fft::paper8),
    ];
    for (name, make) in variants {
        let app = make(64);
        let blocks_per_page = PAGE_SIZE as u64 / app.block_bytes().max(1);
        let truth = bench.ground_truth(|| make(64)).expect("tracked run");
        println!(
            "--- {name}: transpose block {} B, {} blocks/page -> expected cluster size {} ---",
            app.block_bytes(),
            blocks_per_page,
            blocks_per_page.max(1),
        );
        println!("{}", render_ascii(&truth.corr, &MapStyle::default()));
        println!("  detected structure: {}", profile_map(&truth.corr));
        std::fs::write(
            maps_dir.join(format!("table4_{name}.pgm")),
            render_pgm(&truth.corr),
        )
        .expect("write pgm");
        println!("  wrote results/maps/table4_{name}.pgm\n");
    }
}
