//! Tracked perf trajectory for production-scale placement (`BENCH_pr9.json`).
//!
//! The ROADMAP's scale goal: place 10⁵–10⁶ threads on ~10³ nodes in
//! seconds. This binary measures the sparse-store + multilevel pipeline at
//! three scale points (10k×64, 100k×256, 1M×1000 — synthetic power-law
//! affinity, ~8 edges per thread, seed 42) and pins its *outputs*, not just
//! its timings:
//!
//! 1. **Assignment digests** — the `fnv1a:` fingerprint of each scale
//!    point's mapping is machine-independent; the gate compares it (and the
//!    cut cost) against the committed baseline byte for byte, so any
//!    unintended behaviour change in the generator, the sparse store or the
//!    partitioner fails CI even when it is timing-neutral.
//! 2. **Worker invariance** — the 10k point is regenerated and placed at
//!    `--jobs 1/4/8`; all digests must be identical (the determinism
//!    contract of `acorr::sim::pool` extended through the whole pipeline).
//! 3. **Head-to-head** — at 2048 threads × 16 nodes (the largest size the
//!    paper's direct `min_cost` heuristic handles comfortably), the
//!    multilevel path must be at least [`SPEEDUP_FLOOR`]× faster while
//!    keeping the cut within [`QUALITY_CEILING`]× of the direct result,
//!    with a relative regression check against the baseline's speedup.
//!
//! Wall-clock milliseconds at the scale points are recorded in the
//! artifact but *not* gated — they vary by machine; the digests do not.
//!
//! Writes `results/BENCH_pr9.json` (schema `acorr-bench/v1`, see
//! EXPERIMENTS.md). With `--baseline FILE` it compares against the
//! committed baseline and exits non-zero on any gate failure —
//! `scripts/check_perf.sh` wraps this mode.
//!
//! Usage: `perf9 [--reps R] [--baseline FILE]` (default: 3 measured reps;
//! the 1M point always runs once).

use acorr::experiment::{mapping_digest, scale_placement_study, ScalePlacement};
use acorr::place::{min_cost, multilevel_place, power_law_affinity};
use acorr::sim::ClusterConfig;
use acorr::track::cut_cost;
use acorr_bench::{arg_str, arg_usize, time_fn, try_write_artifact, Table};

/// The tracked scale points: (threads, nodes).
const SCALE_POINTS: &[(usize, usize)] = &[(10_000, 64), (100_000, 256), (1_000_000, 1000)];
/// Affinity edges per thread fed to the synthetic generator.
const DEGREE: usize = 8;
/// Generator seed (changing it changes every pinned digest).
const SEED: u64 = 42;
/// Worker counts the invariance check runs the 10k point under.
const JOBS_MATRIX: &[usize] = &[1, 4, 8];
/// Head-to-head instance: the largest size `min_cost` handles comfortably.
const HEAD_THREADS: usize = 2048;
const HEAD_NODES: usize = 16;
/// Multilevel must beat direct `min_cost` by at least this factor here
/// (measured ~100x on the reference machine; the floor leaves an order of
/// magnitude of slack for slower hardware).
const SPEEDUP_FLOOR: f64 = 10.0;
/// Allowed relative slack vs the baseline's speedup ratio (timing noise on
/// a sub-second measurement is larger than perf6's hot loops).
const REGRESSION_SLACK: f64 = 0.25;
/// Multilevel cut may exceed the direct `min_cost` cut by at most this
/// factor on the head-to-head instance. Above the `kl_threshold` the
/// multilevel path trades full-resolution KL for coarse structure; measured
/// ~1.43x at 2048x16.
const QUALITY_CEILING: f64 = 1.5;

/// One measured scale point (best-of-reps timings, invariant outputs).
struct ScaleRow {
    label: String,
    row: ScalePlacement,
}

/// Measures one scale point `reps` times, keeping the fastest timings and
/// asserting the outputs never vary across reps.
fn measure_scale(threads: usize, nodes: usize, reps: usize) -> ScaleRow {
    let mut best: Option<ScalePlacement> = None;
    for _ in 0..reps {
        let row = scale_placement_study(threads, nodes, DEGREE, SEED, 0).expect("valid topology");
        best = Some(match best {
            None => row,
            Some(prev) => {
                assert_eq!(prev.digest, row.digest, "reps must be bit-identical");
                assert_eq!(prev.cut, row.cut, "reps must be bit-identical");
                ScalePlacement {
                    gen_ms: prev.gen_ms.min(row.gen_ms),
                    place_ms: prev.place_ms.min(row.place_ms),
                    ..row
                }
            }
        });
    }
    ScaleRow {
        label: format!("{threads}x{nodes}"),
        row: best.expect("reps >= 1"),
    }
}

/// The 2048×16 head-to-head: multilevel (sparse) vs direct `min_cost`
/// (dense), same synthetic store.
struct HeadToHead {
    multilevel_ms: f64,
    direct_ms: f64,
    multilevel_cut: u64,
    direct_cut: u64,
}

impl HeadToHead {
    fn speedup(&self) -> f64 {
        self.direct_ms / self.multilevel_ms.max(1e-9)
    }

    fn quality(&self) -> f64 {
        self.multilevel_cut as f64 / (self.direct_cut as f64).max(1.0)
    }
}

fn measure_head_to_head(reps: usize) -> HeadToHead {
    let corr = power_law_affinity(HEAD_THREADS, DEGREE, SEED, 0);
    let dense = corr.to_dense();
    let cluster = ClusterConfig::new(HEAD_NODES, HEAD_THREADS).expect("valid topology");
    let mut multilevel_ms = f64::INFINITY;
    let mut direct_ms = f64::INFINITY;
    let mut multilevel_cut = 0;
    let mut direct_cut = 0;
    for _ in 0..reps {
        let (m, t) = time_fn(|| multilevel_place(&corr, &cluster));
        multilevel_ms = multilevel_ms.min(t.as_secs_f64() * 1e3);
        multilevel_cut = cut_cost(&corr, &m);
        let (m, t) = time_fn(|| min_cost(&dense, &cluster));
        direct_ms = direct_ms.min(t.as_secs_f64() * 1e3);
        direct_cut = cut_cost(&corr, &m);
    }
    HeadToHead {
        multilevel_ms,
        direct_ms,
        multilevel_cut,
        direct_cut,
    }
}

/// `git describe --always --dirty`, or `unknown` outside a checkout.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn render_json(git: &str, reps: usize, scales: &[ScaleRow], head: &HeadToHead) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"acorr-bench/v1\",\n");
    out.push_str("  \"bin\": \"perf9\",\n");
    out.push_str(&format!("  \"git\": \"{git}\",\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    out.push_str(&format!(
        "  \"generator\": {{ \"degree\": {DEGREE}, \"seed\": {SEED} }},\n"
    ));
    out.push_str("  \"scale\": {\n");
    for (i, s) in scales.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{ \"edges\": {}, \"gen_ms\": {:.1}, \"place_ms\": {:.1}, \
             \"cut\": {}, \"stretch_cut\": {}, \"digest\": \"{}\" }}{}\n",
            s.label,
            s.row.edges,
            s.row.gen_ms,
            s.row.place_ms,
            s.row.cut,
            s.row.stretch_cut,
            s.row.digest,
            if i + 1 < scales.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"head_to_head\": {{ \"threads\": {HEAD_THREADS}, \"nodes\": {HEAD_NODES}, \
         \"multilevel_ms\": {:.2}, \"direct_ms\": {:.2}, \"multilevel_cut\": {}, \
         \"direct_cut\": {}, \"speedup\": {:.2}, \"quality\": {:.4} }}\n",
        head.multilevel_ms,
        head.direct_ms,
        head.multilevel_cut,
        head.direct_cut,
        head.speedup(),
        head.quality(),
    ));
    out.push_str("}\n");
    out
}

/// Pulls `"key": <number>` out of `json`, scoped to the section following
/// `"<section>"`. Tiny by design: the schema is authored by this binary.
fn extract_f64(json: &str, section: &str, key: &str) -> Option<f64> {
    let section = json.split(&format!("\"{section}\"")).nth(1)?;
    let after = section.split(&format!("\"{key}\":")).nth(1)?;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Pulls `"key": "<string>"` out of `json`, scoped like [`extract_f64`].
fn extract_str(json: &str, section: &str, key: &str) -> Option<String> {
    let section = json.split(&format!("\"{section}\"")).nth(1)?;
    let after = section.split(&format!("\"{key}\":")).nth(1)?;
    let trimmed = after.trim_start();
    let rest = trimmed.strip_prefix('"')?;
    Some(rest.split('"').next()?.to_string())
}

/// Compares fresh measurements against a baseline JSON. Returns failures.
fn gate(baseline: &str, scales: &[ScaleRow], head: &HeadToHead) -> Vec<String> {
    let mut failures = Vec::new();
    for s in scales {
        match extract_str(baseline, &s.label, "digest") {
            Some(base) if base == s.row.digest => {}
            Some(base) => failures.push(format!(
                "{}: mapping digest {} diverged from the baseline's {base} \
                 (behaviour change in generator, store or partitioner)",
                s.label, s.row.digest
            )),
            None => failures.push(format!("{}: baseline JSON has no digest", s.label)),
        }
        match extract_f64(baseline, &s.label, "cut") {
            Some(base) if base == s.row.cut as f64 => {}
            Some(base) => failures.push(format!(
                "{}: cut {} diverged from the baseline's {base}",
                s.label, s.row.cut
            )),
            None => failures.push(format!("{}: baseline JSON has no cut", s.label)),
        }
    }
    let speedup = head.speedup();
    if speedup < SPEEDUP_FLOOR {
        failures.push(format!(
            "head-to-head: multilevel speedup {speedup:.2}x below the \
             {SPEEDUP_FLOOR:.1}x floor vs direct min_cost"
        ));
    }
    if head.quality() > QUALITY_CEILING {
        failures.push(format!(
            "head-to-head: multilevel cut is {:.3}x the direct min_cost cut \
             (ceiling {QUALITY_CEILING:.2}x)",
            head.quality()
        ));
    }
    match extract_f64(baseline, "head_to_head", "speedup") {
        Some(base) => {
            let allowed = base * (1.0 - REGRESSION_SLACK);
            if speedup < allowed {
                failures.push(format!(
                    "head-to-head: speedup {speedup:.2}x regressed more than {:.0}% \
                     vs the baseline's {base:.2}x (floor {allowed:.2}x)",
                    REGRESSION_SLACK * 100.0
                ));
            }
        }
        None => failures.push("head_to_head: baseline JSON has no speedup".to_string()),
    }
    failures
}

fn main() {
    let reps = arg_usize("--reps", 3).max(1);
    let baseline_path = arg_str("--baseline", "");
    println!(
        "perf9: production-scale placement trajectory (degree {DEGREE}, seed {SEED}, \
         best of {reps} reps; 1M point runs once)\n"
    );

    // Scale points (the 1M point runs a single rep — it is the measurement
    // the ROADMAP cares about, and one run is ~7 s).
    let scales: Vec<ScaleRow> = SCALE_POINTS
        .iter()
        .map(|&(threads, nodes)| {
            let point_reps = if threads >= 1_000_000 { 1 } else { reps };
            measure_scale(threads, nodes, point_reps)
        })
        .collect();

    // Worker invariance at the 10k point: same digest at every jobs count.
    let invariance_digests: Vec<String> = JOBS_MATRIX
        .iter()
        .map(|&jobs| {
            let (threads, nodes) = SCALE_POINTS[0];
            let corr = power_law_affinity(threads, DEGREE, SEED, jobs);
            let cluster = ClusterConfig::new(nodes, threads).expect("valid topology");
            mapping_digest(&multilevel_place(&corr, &cluster))
        })
        .collect();
    let jobs_invariant = invariance_digests
        .iter()
        .all(|d| *d == scales[0].row.digest);

    let head = measure_head_to_head(reps);

    let mut table = Table::new(&[
        "Scale",
        "Edges",
        "Gen (ms)",
        "Place (ms)",
        "Cut",
        "Stretch cut",
        "Digest",
    ]);
    for s in &scales {
        table.row(&[
            s.label.clone(),
            s.row.edges.to_string(),
            format!("{:.1}", s.row.gen_ms),
            format!("{:.1}", s.row.place_ms),
            s.row.cut.to_string(),
            s.row.stretch_cut.to_string(),
            s.row.digest.clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "jobs invariance at {}: {} ({:?})",
        scales[0].label,
        if jobs_invariant { "OK" } else { "FAILED" },
        JOBS_MATRIX
    );
    println!(
        "head-to-head {HEAD_THREADS}x{HEAD_NODES}: multilevel {:.1} ms (cut {}) vs \
         min_cost {:.1} ms (cut {}) -> {:.2}x faster, {:.3}x cut\n",
        head.multilevel_ms,
        head.multilevel_cut,
        head.direct_ms,
        head.direct_cut,
        head.speedup(),
        head.quality(),
    );

    let json = render_json(&git_describe(), reps, &scales, &head);
    if let Err(e) = try_write_artifact("BENCH_pr9.json", &json) {
        eprintln!("warning: could not persist the artifact: {e}");
        println!("{json}");
    }

    if !jobs_invariant {
        eprintln!(
            "perf gate FAILED: jobs matrix {JOBS_MATRIX:?} produced digests \
             {invariance_digests:?}, expected {}",
            scales[0].row.digest
        );
        std::process::exit(1);
    }

    if !baseline_path.is_empty() {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}", acorr::dsm::DsmError::io(&baseline_path, &e));
                std::process::exit(2);
            }
        };
        let failures = gate(&baseline, &scales, &head);
        if failures.is_empty() {
            println!(
                "perf gate OK: digests and cuts match the baseline, multilevel holds \
                 >={SPEEDUP_FLOOR:.1}x over min_cost within {QUALITY_CEILING:.2}x cut \
                 ({baseline_path})"
            );
        } else {
            for f in &failures {
                eprintln!("perf gate FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale_row(label: &str, cut: u64, digest: &str) -> ScaleRow {
        ScaleRow {
            label: label.to_string(),
            row: ScalePlacement {
                threads: 10,
                nodes: 2,
                degree: DEGREE,
                seed: SEED,
                edges: 30,
                gen_ms: 1.0,
                place_ms: 2.0,
                cut,
                stretch_cut: cut * 3,
                digest: digest.to_string(),
            },
        }
    }

    fn head(multilevel_ms: f64, direct_ms: f64, ml_cut: u64, direct_cut: u64) -> HeadToHead {
        HeadToHead {
            multilevel_ms,
            direct_ms,
            multilevel_cut: ml_cut,
            direct_cut,
        }
    }

    #[test]
    fn json_round_trips_through_the_extractors() {
        let scales = vec![
            scale_row("10000x64", 525_364, "fnv1a:c8b9583da5ea3075"),
            scale_row("100000x256", 4_234_012, "fnv1a:e1285098d3c4cfcd"),
        ];
        let h = head(10.0, 45.0, 110, 100);
        let json = render_json("deadbeef", 3, &scales, &h);
        assert_eq!(
            extract_str(&json, "10000x64", "digest").as_deref(),
            Some("fnv1a:c8b9583da5ea3075")
        );
        assert_eq!(extract_f64(&json, "100000x256", "cut"), Some(4_234_012.0));
        assert_eq!(extract_f64(&json, "head_to_head", "speedup"), Some(4.5));
        assert_eq!(extract_f64(&json, "head_to_head", "quality"), Some(1.1));
        assert_eq!(extract_str(&json, "absent", "digest"), None);
        assert_eq!(extract_f64(&json, "10000x64", "absent"), None);
    }

    #[test]
    fn gate_pins_digests_and_cuts_exactly() {
        let scales = vec![scale_row("10000x64", 100, "fnv1a:aaaa")];
        let h = head(1.0, 45.0, 100, 100);
        let baseline = render_json("base", 3, &scales, &h);
        assert!(gate(&baseline, &scales, &h).is_empty());

        let moved = vec![scale_row("10000x64", 100, "fnv1a:bbbb")];
        let failures = gate(&baseline, &moved, &h);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("digest"));

        let worse = vec![scale_row("10000x64", 101, "fnv1a:aaaa")];
        let failures = gate(&baseline, &worse, &h);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("cut 101"));
    }

    #[test]
    fn gate_enforces_speedup_floor_quality_ceiling_and_regression() {
        let scales = vec![scale_row("10000x64", 100, "fnv1a:aaaa")];
        let good = head(1.0, 45.0, 100, 100); // 45x
        let baseline = render_json("base", 3, &scales, &good);

        // Below the absolute floor AND regressed vs baseline 45x.
        let slow = head(9.0, 45.0, 100, 100); // 5x
        let failures = gate(&baseline, &scales, &slow);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("floor"));
        assert!(failures[1].contains("regressed"));

        // Cut quality above the ceiling.
        let sloppy = head(1.0, 45.0, 200, 100); // 2.0x quality
        let failures = gate(&baseline, &scales, &sloppy);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("ceiling"));

        // Baseline without the section.
        let failures = gate("{}", &scales, &good);
        assert!(
            failures.iter().any(|f| f.contains("no digest")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("no speedup")),
            "{failures:?}"
        );
    }
}
