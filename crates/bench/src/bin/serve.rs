//! Benchmarks the online placement service (`acorr serve`).
//!
//! Times one service run per (scenario × policy) cell at paper scale
//! (64 threads on 8 nodes, 48 steps), records the decision counters and
//! cut totals, re-checks the worker-invariance contract (the hotspot
//! timeline digest at `--jobs 1/4/8` must be identical), and writes
//! `results/serve.csv`.
//!
//! Usage: `serve [--reps R] [--steps N]` (default: 3 reps, 48 steps).

use acorr::experiment::Workbench;
use acorr::place::MigrationPolicy;
use acorr::sim::Scenario;
use acorr::ServeOptions;
use acorr_bench::{arg_usize, best_of, try_write_artifact, Table};

fn main() {
    let reps = arg_usize("--reps", 3);
    let steps = arg_usize("--steps", 48);

    let mut table = Table::new(&[
        "scenario",
        "policy",
        "ms",
        "shifts",
        "accepted",
        "rejected",
        "moved",
        "served_cut",
        "static_cut",
    ]);
    let mut csv = String::from(
        "scenario,policy,ms,shifts,accepted,rejected,moved,served_cut,static_cut,timeline_digest\n",
    );
    for scenario in Scenario::ALL {
        for policy in MigrationPolicy::ALL {
            let options = ServeOptions::new(scenario)
                .with_steps(steps)
                .with_policy(policy);
            let bench = Workbench::new(8, 64).expect("paper cluster");
            let ms = best_of(reps, || {
                bench.serve_traffic(&options);
            })
            .as_secs_f64()
                * 1000.0;
            let report = bench.serve_traffic(&options);
            table.row(&[
                scenario.name().to_owned(),
                policy.name().to_owned(),
                format!("{ms:.2}"),
                report.shifts.to_string(),
                report.accepted.to_string(),
                report.rejected.to_string(),
                report.migrated.to_string(),
                report.served_cut.to_string(),
                report.static_cut.to_string(),
            ]);
            csv.push_str(&format!(
                "{},{},{ms:.3},{},{},{},{},{},{},{}\n",
                scenario.name(),
                policy.name(),
                report.shifts,
                report.accepted,
                report.rejected,
                report.migrated,
                report.served_cut,
                report.static_cut,
                report.timeline_digest(),
            ));
        }
    }
    println!("online placement service, 64 threads x 8 nodes, {steps} steps:");
    println!("{}", table.render());

    // Worker invariance: the hotspot decision timeline must not depend
    // on how many workers generate traffic.
    let options = ServeOptions::new(Scenario::Hotspot).with_steps(steps);
    let digests: Vec<String> = [1usize, 4, 8]
        .iter()
        .map(|&jobs| {
            Workbench::new(8, 64)
                .expect("paper cluster")
                .with_threads(jobs)
                .serve_traffic(&options)
                .timeline_digest()
        })
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "timeline digest diverged across jobs: {digests:?}"
    );
    println!("jobs invariance (hotspot timeline digest): {}", digests[0]);

    if let Err(e) = try_write_artifact("serve.csv", &csv) {
        eprintln!("skipping artifact: {e}");
    }
}
