//! Extension: the §6 protocol comparison.
//!
//! "Relaxed consistency models hide false sharing effectively without
//! recourse to multi-threading... the level of false sharing in both
//! systems is higher... as neither system incorporates a 'delta interval'
//! mechanism... This optimization has long been known to be crucial to the
//! performance of single-writer DSM protocols \[Mirage\]."
//!
//! This binary runs paper applications under three protocols — multi-writer
//! LRC (CVM), single-writer with no delta, single-writer with a 1 ms
//! delta — and shows (i) multi-writer's false-sharing immunity and (ii) the
//! delta interval's effect on single-writer ping-ponging.

use acorr::apps;
use acorr::dsm::{DsmConfig, WriteMode};
use acorr::experiment::Workbench;
use acorr::sim::{Mapping, SimDuration};
use acorr_bench::{arg_usize, Table};

fn main() {
    let iters = arg_usize("--iters", 6);
    let threads = arg_usize("--threads", 64);
    println!(
        "Protocol comparison: multi-writer LRC vs single-writer (±delta),\n\
         {threads} threads on 8 nodes, stretch placement, {iters} iterations\n"
    );
    let modes = [
        ("multi-writer", WriteMode::MultiWriter),
        (
            "single-writer",
            WriteMode::SingleWriter {
                delta: SimDuration::ZERO,
            },
        ),
        (
            "sw + 1ms delta",
            WriteMode::SingleWriter {
                delta: SimDuration::from_millis(1),
            },
        ),
    ];
    let mut table = Table::new(&[
        "App",
        "Protocol",
        "Time (s)",
        "Remote misses",
        "Ownership transfers",
        "Total MB",
    ]);
    for name in ["SOR", "Water", "LU1k", "Ocean"] {
        for (label, mode) in modes {
            let bench = Workbench::new(8, threads).expect("cluster");
            let cluster = bench.cluster;
            let bench = bench.with_config(DsmConfig::new(cluster).with_write_mode(mode));
            let mut dsm = bench
                .dsm(
                    apps::by_name(name, threads).expect("known app"),
                    Mapping::stretch(&cluster),
                )
                .expect("dsm");
            dsm.run_iterations(1).expect("warm");
            let stats = dsm.run_iterations(iters).expect("run");
            table.row(&[
                name.to_string(),
                label.to_string(),
                format!("{:.2}", stats.elapsed.as_secs_f64()),
                stats.remote_misses.to_string(),
                stats.ownership_transfers.to_string(),
                format!("{:.1}", stats.total_mbytes()),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Reading the table: multi-writer LRC has zero ownership transfers —\n\
         write-write false sharing (Water's molecule pages, LU's row pages,\n\
         Ocean's column sweeps) is absorbed by twins and diffs, which is §6's\n\
         point that relaxed multi-writer protocols hide false sharing. Under\n\
         single-writer ownership the same pages ping-pong in full (2-4x the\n\
         misses and traffic). SOR, with no write sharing at all, is the\n\
         counterpoint: single-writer wins there by skipping diff overhead.\n\
         The delta interval's effect is modest here because this engine\n\
         already guarantees a faulting access completes when its page\n\
         arrives; without that guarantee, delta = 0 is not slow — it\n\
         livelocks (we reproduced exactly that during development)."
    );
}
