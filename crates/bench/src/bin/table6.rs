//! Table 6 — 8-node performance by placement heuristic.
//!
//! For each application in the paper's Table 6: a full multi-iteration run
//! under the min-cost placement ("m-c") and under a random balanced
//! placement ("ran"), reporting time, remote misses, total and diff
//! megabytes, and the cut cost of the placement.
//!
//! Applications fan out across pool workers, and each application's two
//! strategy runs fan out across its workbench's thread share; rows are
//! printed in table order and are bit-identical at any `--threads` value.
//!
//! Usage: `table6 [--iters N] [--threads T]` (defaults: each application's
//! natural iteration count, all available worker threads).

use acorr::apps;
use acorr::dsm::Program;
use acorr::experiment::Workbench;
use acorr::place::Strategy;
use acorr::sim::{par_map_indexed, resolve_threads};
use acorr_bench::{arg_usize, Table};

const TABLE6_APPS: [&str; 7] = ["Barnes", "FFT7", "LU1k", "Ocean", "Spatial", "SOR", "Water"];

fn main() {
    let iters_override = arg_usize("--iters", 0);
    let threads = resolve_threads(arg_usize("--threads", 0));
    println!(
        "Table 6: 8-node performance by heuristic (m-c = min-cost, ran = random, \
         {threads} worker thread(s))\n"
    );
    let mut table = Table::new(&[
        "App",
        "Strategy",
        "Time (s)",
        "Remote misses",
        "Total MB",
        "Diff MB",
        "Cut cost",
    ]);
    let per_app = (threads / TABLE6_APPS.len()).max(1);
    // One workbench serves every row — it is plain configuration data.
    let bench = Workbench::new(8, 64)
        .expect("8x64 cluster")
        .with_threads(per_app);
    let app_rows = par_map_indexed(
        threads.min(TABLE6_APPS.len()),
        TABLE6_APPS.to_vec(),
        |_, name| {
            let app = apps::by_name(name, 64).expect("known app");
            let iters = if iters_override > 0 {
                iters_override
            } else {
                app.default_iterations()
            };
            bench
                .heuristic_comparison(
                    || apps::by_name(name, 64).expect("known app"),
                    &[Strategy::MinCost, Strategy::RandomBalanced],
                    iters,
                )
                .expect("comparison run")
        },
    );
    for (name, rows) in TABLE6_APPS.into_iter().zip(app_rows) {
        for row in rows {
            let label = match row.strategy {
                Strategy::MinCost => "m-c",
                Strategy::RandomBalanced => "ran",
                other => {
                    table.row(&[
                        name.to_string(),
                        other.to_string(),
                        format!("{:.1}", row.time.as_secs_f64()),
                        row.remote_misses.to_string(),
                        format!("{:.1}", row.total_mbytes),
                        format!("{:.1}", row.diff_mbytes),
                        row.cut_cost.to_string(),
                    ]);
                    continue;
                }
            };
            table.row(&[
                name.to_string(),
                label.to_string(),
                format!("{:.1}", row.time.as_secs_f64()),
                row.remote_misses.to_string(),
                format!("{:.1}", row.total_mbytes),
                format!("{:.1}", row.diff_mbytes),
                row.cut_cost.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(each app runs its natural iteration count after one warm-up iteration)");
}
