//! Table 6 — 8-node performance by placement heuristic.
//!
//! For each application in the paper's Table 6: a full multi-iteration run
//! under the min-cost placement ("m-c") and under a random balanced
//! placement ("ran"), reporting time, remote misses, total and diff
//! megabytes, and the cut cost of the placement.
//!
//! Usage: `table6 [--iters N]` (default: each application's natural
//! iteration count).

use acorr::apps;
use acorr::dsm::Program;
use acorr::experiment::Workbench;
use acorr::place::Strategy;
use acorr_bench::{arg_usize, Table};

const TABLE6_APPS: [&str; 7] = ["Barnes", "FFT7", "LU1k", "Ocean", "Spatial", "SOR", "Water"];

fn main() {
    let iters_override = arg_usize("--iters", 0);
    let bench = Workbench::new(8, 64).expect("8x64 cluster");
    println!("Table 6: 8-node performance by heuristic (m-c = min-cost, ran = random)\n");
    let mut table = Table::new(&[
        "App",
        "Strategy",
        "Time (s)",
        "Remote misses",
        "Total MB",
        "Diff MB",
        "Cut cost",
    ]);
    for name in TABLE6_APPS {
        let app = apps::by_name(name, 64).expect("known app");
        let iters = if iters_override > 0 {
            iters_override
        } else {
            app.default_iterations()
        };
        let rows = bench
            .heuristic_comparison(
                || apps::by_name(name, 64).expect("known app"),
                &[Strategy::MinCost, Strategy::RandomBalanced],
                iters,
            )
            .expect("comparison run");
        for row in rows {
            let label = match row.strategy {
                Strategy::MinCost => "m-c",
                Strategy::RandomBalanced => "ran",
                other => {
                    table.row(&[
                        name.to_string(),
                        other.to_string(),
                        format!("{:.1}", row.time.as_secs_f64()),
                        row.remote_misses.to_string(),
                        format!("{:.1}", row.total_mbytes),
                        format!("{:.1}", row.diff_mbytes),
                        row.cut_cost.to_string(),
                    ]);
                    continue;
                }
            };
            table.row(&[
                name.to_string(),
                label.to_string(),
                format!("{:.1}", row.time.as_secs_f64()),
                row.remote_misses.to_string(),
                format!("{:.1}", row.total_mbytes),
                format!("{:.1}", row.diff_mbytes),
                row.cut_cost.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("(each app runs its natural iteration count after one warm-up iteration)");
}
