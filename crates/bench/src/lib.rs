//! # acorr-bench — the table/figure regeneration harness
//!
//! One binary per table and figure of the paper:
//!
//! | Binary    | Regenerates |
//! |-----------|-------------|
//! | `table1`  | Application characteristics |
//! | `table2`  | Remote misses as a function of cut cost (also writes the Figure 1 scatter CSVs) |
//! | `table3`  | Correlation maps at 32/48/64 threads |
//! | `table4`  | 64-thread FFT maps versus input set |
//! | `table5`  | 64-thread tracking overhead |
//! | `table6`  | 8-node performance by placement heuristic |
//! | `figure1` | ASCII scatter plots of cut cost vs remote misses |
//! | `figure2` | Passive information-gathering per migration round |
//! | `figure3` | 32-thread FFT free-zone maps on 4/8 nodes + randomized |
//!
//! Artifacts (CSV, PGM, TXT) land in `./results/`. Criterion micro-benches
//! for the engine, tracking, analysis, and placement live in `benches/`.

use acorr::dsm::DsmError;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Wall-clock measurement of one call to `f`, returning its result and the
/// elapsed time. The criterion micro-benches stay behind the `criterion`
/// feature; this plain harness is what the offline `perf` binary and the
/// PR-gating speedup checks use.
pub fn time_fn<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// Runs `f` once to warm up, then `reps` measured times, returning the best
/// (minimum) wall-clock duration — the standard noise-resistant estimator
/// for a deterministic workload.
///
/// # Panics
///
/// Panics if `reps` is zero.
pub fn best_of(reps: usize, mut f: impl FnMut()) -> Duration {
    assert!(reps > 0, "need at least one measured rep");
    f(); // warm-up: page in code and data, fill allocator pools
    (0..reps)
        .map(|_| time_fn(&mut f).1)
        .min()
        .expect("reps > 0")
}

/// Directory where binaries drop their artifacts (created on demand).
///
/// # Errors
///
/// Returns [`DsmError::Io`] when the directory cannot be created (e.g. the
/// working directory is read-only).
pub fn try_results_dir() -> Result<PathBuf, DsmError> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).map_err(|e| DsmError::io(dir.display().to_string(), &e))?;
    Ok(dir.to_path_buf())
}

/// Directory where binaries drop their artifacts (created on demand).
///
/// # Panics
///
/// Panics if the directory cannot be created; callers that want to degrade
/// gracefully use [`try_results_dir`].
pub fn results_dir() -> PathBuf {
    try_results_dir().expect("create results dir")
}

/// Name of the currently running bench binary (for manifest provenance).
fn tool_name() -> String {
    std::env::args()
        .next()
        .as_deref()
        .map(Path::new)
        .and_then(|p| p.file_stem())
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string()
}

/// Writes an artifact under `results/` and reports the path on stdout.
///
/// Every artifact also gets a companion [`acorr::obs::RunManifest`] under
/// `results/manifests/<name>.json` recording which binary produced it and an
/// FNV-1a digest of its bytes, so a regenerated artifact can be compared
/// against the recorded run without diffing the full contents.
///
/// # Errors
///
/// Returns [`DsmError::Io`] with the failing path when `results/` cannot be
/// created or written (e.g. a read-only checkout).
pub fn try_write_artifact(name: &str, contents: &str) -> Result<(), DsmError> {
    let path = try_results_dir()?.join(name);
    std::fs::write(&path, contents).map_err(|e| DsmError::io(path.display().to_string(), &e))?;
    println!("  wrote {}", path.display());

    let manifest_dir = try_results_dir()?.join("manifests");
    std::fs::create_dir_all(&manifest_dir)
        .map_err(|e| DsmError::io(manifest_dir.display().to_string(), &e))?;
    let manifest = acorr::obs::RunManifest::new(&tool_name())
        .param("artifact", name)
        .param("bytes", &contents.len().to_string())
        .with_digest(acorr::obs::bytes_digest(contents.as_bytes()));
    let manifest_path = manifest_dir.join(format!("{name}.json"));
    std::fs::write(&manifest_path, manifest.to_json())
        .map_err(|e| DsmError::io(manifest_path.display().to_string(), &e))?;
    Ok(())
}

/// Writes an artifact under `results/`, warning on stderr and continuing if
/// the write fails — a bench run on a read-only checkout still prints its
/// tables; only the on-disk copy is lost. Binaries whose exit code *gates*
/// on the artifact (the perf trajectory) use [`try_write_artifact`] and
/// fail loudly instead.
pub fn write_artifact(name: &str, contents: &str) {
    if let Err(e) = try_write_artifact(name, contents) {
        eprintln!("  warning: skipping artifact {name}: {e}");
    }
}

/// Parses `--flag value` style integer options from the command line, with a
/// default. E.g. `arg_usize("--samples", 300)`.
pub fn arg_usize(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--flag value` style string options from the command line, with a
/// default. E.g. `arg_str("--plans", "none,light")`.
pub fn arg_str(flag: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

/// A simple markdown table builder for terminal reports.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let _ = write!(out, "|");
            for i in 0..cols {
                let _ = write!(out, " {:width$} |", cells[i], width = widths[i]);
            }
            let _ = writeln!(out);
        };
        emit(&mut out, &self.header);
        let _ = write!(&mut out, "|");
        for w in &widths {
            let _ = write!(&mut out, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(&mut out);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Renders an ASCII scatter plot of `(x, y)` points, `width x height`
/// characters, with axis extents in the caption.
pub fn ascii_scatter(points: &[(f64, f64)], width: usize, height: usize) -> String {
    if points.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut xmin, mut xmax) = (f64::MAX, f64::MIN);
    let (mut ymin, mut ymax) = (f64::MAX, f64::MIN);
    for &(x, y) in points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    let xspan = (xmax - xmin).max(1e-12);
    let yspan = (ymax - ymin).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for &(x, y) in points {
        let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
        let row = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
        let cell = &mut grid[height - 1 - row][col];
        *cell = match *cell {
            ' ' => '.',
            '.' => 'o',
            _ => '@',
        };
    }
    let mut out = String::new();
    for line in grid {
        let _ = writeln!(out, "|{}", line.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    let _ = writeln!(
        out,
        "x: {:.0}..{:.0} (cut cost)   y: {:.0}..{:.0} (remote misses)",
        xmin, xmax, ymin, ymax
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(&["App", "Pages"]);
        t.row(&["SOR".into(), "4099".into()]);
        t.row(&["Water".into(), "44".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("App"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("SOR"));
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "aligned");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        Table::new(&["a", "b"]).row(&["only one".into()]);
    }

    #[test]
    fn scatter_plots_extremes() {
        let pts = [(0.0, 0.0), (10.0, 5.0), (5.0, 2.5)];
        let art = ascii_scatter(&pts, 21, 11);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 13);
        // Low-left and top-right corners are populated.
        assert_eq!(lines[10].chars().nth(1), Some('.'));
        assert_eq!(lines[0].chars().nth(21), Some('.'));
        assert!(art.contains("x: 0..10"));
    }

    #[test]
    fn scatter_handles_empty_and_degenerate() {
        assert_eq!(ascii_scatter(&[], 10, 5), "(no data)\n");
        let one = ascii_scatter(&[(3.0, 3.0)], 10, 5);
        assert!(one.contains('.'));
    }

    #[test]
    fn write_artifact_emits_a_companion_manifest() {
        let name = "test-artifact-manifest.txt";
        let contents = "hello, results\n";
        write_artifact(name, contents);

        let artifact = results_dir().join(name);
        let manifest_path = results_dir().join("manifests").join(format!("{name}.json"));
        assert_eq!(std::fs::read_to_string(&artifact).unwrap(), contents);

        let manifest_json = std::fs::read_to_string(&manifest_path).unwrap();
        let manifest = acorr::obs::RunManifest::from_json(&manifest_json).unwrap();
        assert_eq!(manifest.get("artifact"), Some(name));
        assert_eq!(
            manifest.get("bytes"),
            Some(contents.len().to_string().as_str())
        );
        assert_eq!(
            manifest.digest,
            acorr::obs::bytes_digest(contents.as_bytes())
        );

        std::fs::remove_file(artifact).unwrap();
        std::fs::remove_file(manifest_path).unwrap();
    }

    #[test]
    fn arg_parsing_falls_back_to_default() {
        assert_eq!(arg_usize("--definitely-not-passed", 42), 42);
        assert_eq!(arg_str("--also-not-passed", "fallback"), "fallback");
    }

    #[test]
    fn time_fn_returns_result_and_duration() {
        let (value, elapsed) = time_fn(|| 6 * 7);
        assert_eq!(value, 42);
        assert!(elapsed.as_nanos() > 0 || elapsed.is_zero());
    }

    #[test]
    fn best_of_runs_warmup_plus_reps() {
        let mut calls = 0;
        let _ = best_of(3, || calls += 1);
        assert_eq!(calls, 4, "one warm-up plus three measured reps");
    }

    #[test]
    #[should_panic(expected = "at least one measured rep")]
    fn best_of_rejects_zero_reps() {
        best_of(0, || {});
    }
}
