//! Placement heuristic costs: how expensive each strategy is per decision,
//! and the ablation the paper implies — seeding alone versus seeding plus
//! Kernighan-Lin refinement versus exact branch and bound.

use acorr::place::{anneal, jarvis_patrick, min_cost, optimal, refine_kl, AnnealConfig};
use acorr::sim::{ClusterConfig, DetRng, Mapping};
use acorr::track::CorrelationMatrix;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn random_matrix(n: usize, seed: u64) -> CorrelationMatrix {
    let mut rng = DetRng::new(seed);
    let mut c = CorrelationMatrix::zeros(n);
    for a in 0..n {
        for b in (a + 1)..n {
            c.set(a, b, rng.next_below(32));
        }
    }
    c
}

fn neighbor_matrix(n: usize) -> CorrelationMatrix {
    let mut c = CorrelationMatrix::zeros(n);
    for i in 0..n - 1 {
        c.set(i, i + 1, 8);
    }
    c
}

fn bench_min_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement/min_cost");
    for &(n, nodes) in &[(32usize, 4usize), (64, 8), (128, 8)] {
        let corr = random_matrix(n, 42);
        let cluster = ClusterConfig::new(nodes, n).expect("cluster");
        group.bench_function(format!("random_{n}t_{nodes}n"), |b| {
            b.iter(|| black_box(min_cost(&corr, &cluster)));
        });
    }
    let corr = neighbor_matrix(64);
    let cluster = ClusterConfig::new(8, 64).expect("cluster");
    group.bench_function("chain_64t_8n", |b| {
        b.iter(|| black_box(min_cost(&corr, &cluster)));
    });
    group.finish();
}

fn bench_alternative_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement/alternatives");
    let corr = random_matrix(64, 42);
    let cluster = ClusterConfig::new(8, 64).expect("cluster");
    group.bench_function("jarvis_patrick_64t", |b| {
        b.iter(|| black_box(jarvis_patrick(&corr, &cluster)));
    });
    group.sample_size(10);
    group.bench_function("anneal_64t", |b| {
        let mut rng = DetRng::new(5);
        b.iter(|| black_box(anneal(&corr, &cluster, &AnnealConfig::default(), &mut rng)));
    });
    group.finish();
}

fn bench_refinement_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement/kl_refine");
    let corr = random_matrix(64, 7);
    let cluster = ClusterConfig::new(8, 64).expect("cluster");
    let mut rng = DetRng::new(9);
    let start = Mapping::random_balanced(&cluster, &mut rng);
    group.bench_function("from_random_64t", |b| {
        b.iter(|| black_box(refine_kl(&corr, start.clone())));
    });
    let stretch = Mapping::stretch(&cluster);
    group.bench_function("from_stretch_64t", |b| {
        b.iter(|| black_box(refine_kl(&corr, stretch.clone())));
    });
    group.finish();
}

fn bench_optimal(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement/optimal");
    group.sample_size(20);
    for &(n, nodes) in &[(8usize, 2usize), (12, 3)] {
        let corr = random_matrix(n, 3);
        let cluster = ClusterConfig::new(nodes, n).expect("cluster");
        group.bench_function(format!("bnb_{n}t_{nodes}n"), |b| {
            b.iter(|| black_box(optimal(&corr, &cluster)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_min_cost,
    bench_alternative_heuristics,
    bench_refinement_ablation,
    bench_optimal
);
criterion_main!(benches);
