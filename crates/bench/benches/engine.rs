//! Engine throughput: how fast the simulator executes application
//! iterations, tracked iterations, and migrations (real time, not simulated
//! time). These bound how large a parameter sweep the table binaries can
//! afford.

use acorr::apps::{Fft, Sor, Water};
use acorr::dsm::{Dsm, DsmConfig, Program, WriteMode};
use acorr::sim::{ClusterConfig, Mapping};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn dsm_of<P: Program + Clone>(app: &P, nodes: usize) -> Dsm<P> {
    let cluster = ClusterConfig::new(nodes, app.num_threads()).expect("cluster");
    Dsm::new(
        DsmConfig::new(cluster),
        app.clone(),
        Mapping::stretch(&cluster),
    )
    .expect("dsm")
}

fn bench_iterations(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/iteration");
    let sor = Sor::new(512, 512, 16);
    group.bench_function("sor_512_16t", |b| {
        let mut dsm = dsm_of(&sor, 4);
        dsm.run_iterations(1).expect("warm");
        b.iter(|| black_box(dsm.run_iterations(1).expect("iteration")));
    });
    let water = Water::new(256, 16);
    group.bench_function("water_256_16t", |b| {
        let mut dsm = dsm_of(&water, 4);
        dsm.run_iterations(1).expect("warm");
        b.iter(|| black_box(dsm.run_iterations(1).expect("iteration")));
    });
    let fft = Fft::new("fft", 32, 32, 32, 16);
    group.bench_function("fft_32k_16t", |b| {
        let mut dsm = dsm_of(&fft, 4);
        dsm.run_iterations(1).expect("warm");
        b.iter(|| black_box(dsm.run_iterations(1).expect("iteration")));
    });
    group.finish();
}

fn bench_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/tracked_iteration");
    let sor = Sor::new(512, 512, 16);
    group.bench_function("sor_512_16t", |b| {
        let mut dsm = dsm_of(&sor, 4);
        dsm.run_iterations(1).expect("warm");
        b.iter(|| black_box(dsm.run_tracked_iteration().expect("tracked")));
    });
    group.finish();
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/protocol");
    let water = Water::new(256, 16);
    let cluster = ClusterConfig::new(4, 16).expect("cluster");
    group.bench_function("multi_writer_water", |b| {
        let mut dsm = Dsm::new(
            DsmConfig::new(cluster),
            water.clone(),
            Mapping::stretch(&cluster),
        )
        .expect("dsm");
        dsm.run_iterations(1).expect("warm");
        b.iter(|| black_box(dsm.run_iterations(1).expect("iteration")));
    });
    group.bench_function("single_writer_water", |b| {
        let mut dsm = Dsm::new(
            DsmConfig::new(cluster).with_write_mode(WriteMode::SingleWriter {
                delta: acorr::sim::SimDuration::from_micros(100),
            }),
            water.clone(),
            Mapping::stretch(&cluster),
        )
        .expect("dsm");
        dsm.run_iterations(1).expect("warm");
        b.iter(|| black_box(dsm.run_iterations(1).expect("iteration")));
    });
    group.finish();
}

fn bench_migration(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/migration");
    let water = Water::new(256, 16);
    let cluster = ClusterConfig::new(4, 16).expect("cluster");
    let a = Mapping::stretch(&cluster);
    let b_map = {
        let mut rng = acorr::sim::DetRng::new(1);
        a.permuted(&mut rng)
    };
    group.bench_function("swap_16_threads", |b| {
        let mut dsm = dsm_of(&water, 4);
        dsm.run_iterations(1).expect("warm");
        let mut flip = false;
        b.iter(|| {
            let target = if flip { a.clone() } else { b_map.clone() };
            flip = !flip;
            black_box(dsm.migrate_to(target).expect("migrate"))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_iterations,
    bench_tracking,
    bench_protocols,
    bench_migration
);
criterion_main!(benches);
