//! Analysis-layer costs: building correlation matrices from access bitmaps,
//! evaluating cut costs, rendering maps — the per-decision overhead a
//! runtime system would pay when using tracking output online.

use acorr::mem::{AccessMatrix, FixedBitset, PageId, RangeSet};
use acorr::sim::{ClusterConfig, DetRng, Mapping};
use acorr::track::{cut_cost, render_pgm, CorrelationMatrix};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn synthetic_access(threads: usize, pages: usize, per_thread: usize) -> AccessMatrix {
    let mut rng = DetRng::new(11);
    let mut m = AccessMatrix::new(threads, pages);
    for t in 0..threads {
        for _ in 0..per_thread {
            m.record(t, PageId(rng.index(pages) as u32));
        }
    }
    m
}

fn bench_correlation(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/correlation_matrix");
    let access = synthetic_access(64, 4096, 500);
    group.bench_function("from_access_64t_4096p", |b| {
        b.iter(|| black_box(CorrelationMatrix::from_access(&access)));
    });
    group.finish();
}

fn bench_cut_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/cut_cost");
    let access = synthetic_access(64, 4096, 500);
    let corr = CorrelationMatrix::from_access(&access);
    let cluster = ClusterConfig::new(8, 64).expect("cluster");
    let mapping = Mapping::stretch(&cluster);
    group.bench_function("64t", |b| {
        b.iter(|| black_box(cut_cost(&corr, &mapping)));
    });
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/render");
    let access = synthetic_access(64, 4096, 500);
    let corr = CorrelationMatrix::from_access(&access);
    group.bench_function("pgm_64t", |b| {
        b.iter(|| black_box(render_pgm(&corr)));
    });
    group.finish();
}

fn bench_substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/substrate");
    // The two hot per-access data structures of the engine.
    group.bench_function("bitset_intersection_8192b", |b| {
        let mut x = FixedBitset::new(8192);
        let mut y = FixedBitset::new(8192);
        for i in (0..8192).step_by(3) {
            x.insert(i);
        }
        for i in (0..8192).step_by(5) {
            y.insert(i);
        }
        b.iter(|| black_box(x.intersection_count(&y)));
    });
    group.bench_function("rangeset_64_inserts", |b| {
        b.iter(|| {
            let mut s = RangeSet::new();
            for i in 0..64u16 {
                s.insert(i * 64, i * 64 + 32);
            }
            black_box(s.total_len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_correlation,
    bench_cut_cost,
    bench_render,
    bench_substrate
);
criterion_main!(benches);
