//! Property tests: every placement strategy yields a valid, constraint-
//! respecting mapping on arbitrary correlation matrices.

// Property tests require the external `proptest` crate, which the
// offline default build cannot fetch; see the crate Cargo.toml.
#![cfg(feature = "proptest")]

use acorr_place::{
    anneal, imbalance, jarvis_patrick, min_cost, min_cost_weighted, node_loads, optimal, refine_kl,
    AnnealConfig,
};
use acorr_sim::{ClusterConfig, DetRng, Mapping};
use acorr_track::{cut_cost, CorrelationMatrix};
use proptest::prelude::*;

fn matrix_strategy(n: usize) -> impl Strategy<Value = CorrelationMatrix> {
    proptest::collection::vec(0u64..32, n * (n - 1) / 2).prop_map(move |vals| {
        let mut c = CorrelationMatrix::zeros(n);
        let mut it = vals.into_iter();
        for a in 0..n {
            for b in (a + 1)..n {
                c.set(a, b, it.next().expect("sized"));
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clustering heuristics always produce balanced mappings covering
    /// every node, and KL refinement never increases the cut.
    #[test]
    fn heuristics_produce_valid_balanced_mappings(
        corr in matrix_strategy(12),
        nodes in 2usize..=4,
    ) {
        let cluster = ClusterConfig::new(nodes, 12).expect("cluster");
        for m in [min_cost(&corr, &cluster), jarvis_patrick(&corr, &cluster)] {
            prop_assert!(m.is_balanced(), "{m}");
            prop_assert!(m.node_counts().iter().all(|&c| c > 0));
        }
        let mut rng = DetRng::new(7);
        let start = Mapping::random_balanced(&cluster, &mut rng);
        let before = cut_cost(&corr, &start);
        let refined = refine_kl(&corr, start);
        prop_assert!(cut_cost(&corr, &refined) <= before);
    }

    /// The exact optimum lower-bounds every heuristic.
    #[test]
    fn optimal_lower_bounds_heuristics(corr in matrix_strategy(10)) {
        let cluster = ClusterConfig::new(2, 10).expect("cluster");
        let opt = cut_cost(&corr, &optimal(&corr, &cluster));
        let mut rng = DetRng::new(1);
        for cut in [
            cut_cost(&corr, &min_cost(&corr, &cluster)),
            cut_cost(&corr, &jarvis_patrick(&corr, &cluster)),
            cut_cost(&corr, &anneal(&corr, &cluster, &AnnealConfig::default(), &mut rng)),
            cut_cost(&corr, &Mapping::stretch(&cluster)),
        ] {
            prop_assert!(opt <= cut, "optimal {opt} vs heuristic {cut}");
        }
    }

    /// Weighted placement respects its capacity bound whenever the bound is
    /// satisfiable, and never leaves a node empty.
    #[test]
    fn weighted_respects_capacity(
        corr in matrix_strategy(10),
        weights in proptest::collection::vec(1u64..8, 10),
        tol_pct in 5u32..60,
    ) {
        let cluster = ClusterConfig::new(2, 10).expect("cluster");
        let tolerance = 1.0 + tol_pct as f64 / 100.0;
        let m = min_cost_weighted(&corr, &cluster, &weights, tolerance);
        prop_assert!(m.node_counts().iter().all(|&c| c > 0));
        let total: u64 = weights.iter().sum();
        let capacity = ((total as f64 / 2.0) * tolerance).floor() as u64;
        let capacity = capacity.max(total.div_ceil(2));
        // Satisfiable iff no single weight exceeds capacity (then first-fit
        // decreasing over 2 nodes always fits within the floor+tolerance).
        if weights.iter().all(|&w| w <= capacity) {
            for load in node_loads(&m, &weights) {
                prop_assert!(load <= capacity, "load {load} > capacity {capacity}");
            }
            prop_assert!(imbalance(&m, &weights) <= 2.0);
        }
    }
}
