//! Equivalence of the incremental (D-value-cached) placement kernels with
//! the direct reference implementations, on seeded random matrices:
//!
//! * `refine_kl` must return a mapping **bit-identical** to
//!   `refine_kl_reference` (not merely one of equal cut), so swapping the
//!   kernel cannot perturb any downstream experiment.
//! * The `DegreeCache` must agree with a from-scratch rebuild after every
//!   accepted swap — the invariant that makes the O(n) update sound.
//! * `anneal` (which now scores proposals from the cache) must reproduce
//!   the recompute-the-cut formulation's trajectory exactly, including the
//!   RNG draw order.

use acorr_place::{anneal, refine_kl, refine_kl_reference, AnnealConfig, DegreeCache};
use acorr_sim::{ClusterConfig, DetRng, Mapping};
use acorr_track::{cut_cost, CorrelationMatrix};

fn random_matrix(n: usize, max: u64, rng: &mut DetRng) -> CorrelationMatrix {
    let mut corr = CorrelationMatrix::zeros(n);
    for a in 0..n {
        for b in (a + 1)..n {
            corr.set(a, b, rng.next_below(max));
        }
    }
    corr
}

#[test]
fn refine_kl_is_bit_identical_to_reference() {
    let rng = DetRng::new(0x51);
    for seed in 0..12 {
        let mut r = rng.fork(seed);
        let n = 8 + (seed as usize % 3) * 8; // 8, 16, 24
        let nodes = 2 + seed as usize % 3; // 2, 3, 4
        let corr = random_matrix(n, 25, &mut r);
        let cluster = ClusterConfig::new(nodes, n).unwrap();
        let start = Mapping::random_balanced(&cluster, &mut r);
        let fast = refine_kl(&corr, start.clone());
        let slow = refine_kl_reference(&corr, start.clone());
        assert_eq!(fast, slow, "seed {seed}: mappings diverged");
        assert!(
            cut_cost(&corr, &fast) <= cut_cost(&corr, &start),
            "seed {seed}: refinement worsened the cut"
        );
    }
}

#[test]
fn degree_cache_matches_rebuild_after_every_swap() {
    let rng = DetRng::new(0x52);
    for seed in 0..6 {
        let mut r = rng.fork(seed);
        let n = 18;
        let corr = random_matrix(n, 15, &mut r);
        let cluster = ClusterConfig::new(3, n).unwrap();
        let mut mapping = Mapping::random_balanced(&cluster, &mut r);
        let mut cache = DegreeCache::new(&corr, &mapping);
        assert!(cache.matches_rebuild(&corr, &mapping));
        // Walk a random swap trajectory, checking the O(n) update against a
        // full O(n²) rebuild at every step.
        for step in 0..40 {
            let a = r.index(n);
            let b = r.index(n);
            if a == b || mapping.node_of(a) == mapping.node_of(b) {
                continue;
            }
            let (na, nb) = (mapping.node_of(a), mapping.node_of(b));
            // The cached gain must match the true ordered cut delta.
            let gain = cache.gain(&corr, &mapping, a, b);
            let before = cut_cost(&corr, &mapping) as i64;
            cache.apply_swap(&corr, a, b, na, nb);
            mapping.set_node_of(a, nb);
            mapping.set_node_of(b, na);
            let after = cut_cost(&corr, &mapping) as i64;
            assert_eq!(before - after, 2 * gain, "seed {seed} step {step}: gain");
            assert!(
                cache.matches_rebuild(&corr, &mapping),
                "seed {seed} step {step}: cache drifted from rebuild"
            );
        }
    }
}

/// The pre-cache annealer, verbatim: clone the candidate, recompute its
/// full cut, accept on the f64 delta. The production `anneal` must
/// reproduce this trajectory exactly.
fn anneal_reference(
    corr: &CorrelationMatrix,
    cluster: &ClusterConfig,
    config: &AnnealConfig,
    rng: &mut DetRng,
) -> Mapping {
    let n = corr.num_threads();
    let mut current = Mapping::stretch(cluster);
    let mut current_cut = cut_cost(corr, &current) as f64;
    let mut best = current.clone();
    let mut best_cut = current_cut;
    let mut temp = (current_cut * config.start_temp).max(1.0);
    for _ in 0..config.steps {
        let a = rng.index(n);
        let b = rng.index(n);
        if a == b || current.node_of(a) == current.node_of(b) {
            temp *= config.cooling;
            continue;
        }
        let (na, nb) = (current.node_of(a), current.node_of(b));
        let mut candidate = current.clone();
        candidate.set_node_of(a, nb);
        candidate.set_node_of(b, na);
        let candidate_cut = cut_cost(corr, &candidate) as f64;
        let delta = candidate_cut - current_cut;
        let accept = delta <= 0.0 || rng.next_f64() < (-delta / temp).exp();
        if accept {
            current = candidate;
            current_cut = candidate_cut;
            if current_cut < best_cut {
                best = current.clone();
                best_cut = current_cut;
            }
        }
        temp *= config.cooling;
    }
    refine_kl_reference(corr, best)
}

#[test]
fn anneal_is_bit_identical_to_reference() {
    let rng = DetRng::new(0x53);
    for seed in 0..5 {
        let mut r = rng.fork(seed);
        let n = 16;
        let corr = random_matrix(n, 20, &mut r);
        let cluster = ClusterConfig::new(4, n).unwrap();
        let config = AnnealConfig {
            steps: 1500,
            ..AnnealConfig::default()
        };
        let mut rng_fast = DetRng::new(100 + seed);
        let mut rng_ref = DetRng::new(100 + seed);
        let fast = anneal(&corr, &cluster, &config, &mut rng_fast);
        let slow = anneal_reference(&corr, &cluster, &config, &mut rng_ref);
        assert_eq!(fast, slow, "seed {seed}: trajectories diverged");
        // Identical RNG consumption: both must have drawn the same stream.
        assert_eq!(rng_fast.next_u64(), rng_ref.next_u64(), "seed {seed}: rng");
    }
}
