//! Property tests for the migration cost model and re-mapping policies
//! behind the online placement service's accept/reject gate.

// Property tests require the external `proptest` crate, which the
// offline default build cannot fetch; see the crate Cargo.toml.
#![cfg(feature = "proptest")]

use acorr_place::{interchange_migration, MigrationCostModel};
use acorr_sim::{ClusterConfig, DetRng, Mapping};
use acorr_track::{cut_cost, CorrelationMatrix};
use proptest::prelude::*;

fn matrix_strategy(n: usize) -> impl Strategy<Value = CorrelationMatrix> {
    proptest::collection::vec(0u64..32, n * (n - 1) / 2).prop_map(move |vals| {
        let mut c = CorrelationMatrix::zeros(n);
        let mut it = vals.into_iter();
        for a in 0..n {
            for b in (a + 1)..n {
                c.set(a, b, it.next().expect("sized"));
            }
        }
        c
    })
}

fn model_strategy() -> impl Strategy<Value = MigrationCostModel> {
    (0u64..64, 0u64..16, 0u64..256)
        .prop_map(|(pages, per_page, fixed)| MigrationCostModel::new(pages, per_page, fixed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Moving more pages never costs less, and adding threads to a
    /// migration never costs less either.
    #[test]
    fn cost_is_monotone_in_pages_and_moves(
        model in model_strategy(),
        a in 0u64..10_000,
        b in 0u64..10_000,
        moves in 1usize..500,
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(model.page_cost(lo) <= model.page_cost(hi));
        prop_assert!(model.migration_cost(moves) <= model.migration_cost(moves + 1));
    }

    /// The gate accepts exactly when the predicted improvement strictly
    /// exceeds the migration cost — never on equality.
    #[test]
    fn remap_accepted_only_when_gain_strictly_exceeds_cost(
        model in model_strategy(),
        gain in 0u64..100_000,
        moves in 0usize..500,
    ) {
        let cost = model.migration_cost(moves);
        prop_assert_eq!(model.accepts(gain, moves), gain > cost);
        prop_assert!(!model.accepts(cost, moves), "equality must reject");
    }

    /// A zero-cost model degenerates to the paper's always-re-map
    /// behavior: any strict improvement is taken, regardless of how many
    /// threads move.
    #[test]
    fn zero_cost_model_degenerates_to_always_remap(
        gain in 0u64..100_000,
        moves in 0usize..10_000,
    ) {
        let model = MigrationCostModel::zero();
        prop_assert_eq!(model.accepts(gain, moves), gain > 0);
    }

    /// The interchange policy never worsens the cut, preserves node
    /// occupancy, and respects its swap budget on arbitrary matrices.
    #[test]
    fn interchange_is_safe_on_arbitrary_matrices(
        corr in matrix_strategy(12),
        nodes in 2usize..=4,
        max_swaps in 0usize..=6,
        seed in 0u64..1_000,
    ) {
        let cluster = ClusterConfig::new(nodes, 12).expect("cluster");
        let current = Mapping::random_balanced(&cluster, &mut DetRng::new(seed));
        let candidate = Mapping::random_balanced(&cluster, &mut DetRng::new(seed ^ 0xA5A5));
        let planned = interchange_migration(&corr, &current, &candidate, max_swaps);
        prop_assert!(cut_cost(&corr, &planned) <= cut_cost(&corr, &current));
        prop_assert_eq!(planned.node_counts(), current.node_counts());
        prop_assert!(planned.moves_from(&current) <= 2 * max_swaps);
    }
}
