//! The *min-cost* heuristic: greedy affinity clustering plus
//! Kernighan-Lin-style refinement.
//!
//! The paper (§5.1) built several heuristics on cluster analysis and found
//! two that identified *"thread mappings with cut costs that were within 1%
//! of optimal for all of our applications"*, referring to them collectively
//! as **min-cost**. This module implements that pipeline:
//!
//! 1. **Greedy seeding** — for each node in turn, seed a cluster with the
//!    strongest-affinity unassigned pair, then repeatedly add the unassigned
//!    thread with the highest total correlation to the cluster until the
//!    node's quota is reached (a shared-near-neighbor flavour of the
//!    Jarvis-Patrick clustering the paper cites).
//! 2. **Pairwise swap refinement** — Kernighan-Lin gains: repeatedly apply
//!    the best cut-reducing swap of two threads on different nodes until no
//!    positive gain remains.
//!
//! Both stages preserve balanced node populations, matching the paper's
//! restriction to "a constant and equal number of threads on each node".

use acorr_sim::{ClusterConfig, Mapping, NodeId};
use acorr_track::CorrelationMatrix;

/// Computes a balanced placement minimizing cut cost heuristically.
///
/// # Panics
///
/// Panics if the matrix covers a different thread count than the cluster.
pub fn min_cost(corr: &CorrelationMatrix, cluster: &ClusterConfig) -> Mapping {
    assert_eq!(
        corr.num_threads(),
        cluster.num_threads(),
        "matrix and cluster must cover the same threads"
    );
    let seeded = greedy_seed(corr, cluster);
    refine_kl(corr, seeded)
}

/// Per-node quotas identical to the stretch heuristic's block sizes.
fn quotas(cluster: &ClusterConfig) -> Vec<usize> {
    Mapping::stretch(cluster).node_counts()
}

fn greedy_seed(corr: &CorrelationMatrix, cluster: &ClusterConfig) -> Mapping {
    let n = corr.num_threads();
    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    let mut unassigned: Vec<usize> = (0..n).collect();
    for (node_idx, quota) in quotas(cluster).iter().copied().enumerate() {
        let node = NodeId(node_idx as u16);
        let mut members: Vec<usize> = Vec::with_capacity(quota);
        // Seed with the strongest remaining pair (or the lone remaining
        // thread for a quota of one).
        if quota >= 2 && unassigned.len() >= 2 {
            let mut best = (0usize, 1usize, 0u64);
            let mut found = false;
            for (i, &a) in unassigned.iter().enumerate() {
                for (j, &b) in unassigned.iter().enumerate().skip(i + 1) {
                    let v = corr.get(a, b);
                    if !found || v > best.2 {
                        best = (i, j, v);
                        found = true;
                    }
                }
            }
            let (i, j, _) = best;
            // Remove higher index first.
            let b = unassigned.remove(j);
            let a = unassigned.remove(i);
            members.push(a);
            members.push(b);
        }
        // Grow: always take the unassigned thread with the highest affinity
        // to the cluster (ties: lowest thread id, for determinism).
        while members.len() < quota && !unassigned.is_empty() {
            let (pos, _) = unassigned
                .iter()
                .enumerate()
                .map(|(pos, &t)| {
                    let affinity: u64 = members.iter().map(|&m| corr.get(t, m)).sum();
                    (pos, affinity)
                })
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .expect("unassigned is non-empty");
            members.push(unassigned.remove(pos));
        }
        for m in members {
            assignment[m] = Some(node);
        }
    }
    let assignment: Vec<NodeId> = assignment
        .into_iter()
        .map(|a| a.expect("quotas cover all threads"))
        .collect();
    Mapping::from_assignment(cluster, assignment).expect("seeded mapping is valid")
}

/// Kernighan-Lin-style refinement: repeatedly performs the
/// highest-positive-gain swap of two threads on different nodes, until no
/// swap reduces the cut. Returns the refined mapping (node populations are
/// preserved).
pub fn refine_kl(corr: &CorrelationMatrix, mut mapping: Mapping) -> Mapping {
    let n = corr.num_threads();
    // External-minus-internal connectivity per thread, maintained
    // incrementally would be O(n); with n ≤ a few hundred the direct O(n³)
    // loop per pass is fine and far easier to audit.
    loop {
        let mut best_gain = 0i64;
        let mut best_pair: Option<(usize, usize)> = None;
        for a in 0..n {
            for b in (a + 1)..n {
                if mapping.node_of(a) == mapping.node_of(b) {
                    continue;
                }
                let gain = swap_gain(corr, &mapping, a, b);
                if gain > best_gain {
                    best_gain = gain;
                    best_pair = Some((a, b));
                }
            }
        }
        match best_pair {
            Some((a, b)) => {
                let na = mapping.node_of(a);
                let nb = mapping.node_of(b);
                mapping.set_node_of(a, nb);
                mapping.set_node_of(b, na);
            }
            None => return mapping,
        }
    }
}

/// The (unordered) cut reduction from swapping threads `a` and `b`, which
/// must be on different nodes: `D_a + D_b - 2*c(a,b)` with
/// `D_x = external(x) - internal(x)`.
fn swap_gain(corr: &CorrelationMatrix, mapping: &Mapping, a: usize, b: usize) -> i64 {
    let na = mapping.node_of(a);
    let nb = mapping.node_of(b);
    let mut d_a = 0i64;
    let mut d_b = 0i64;
    for t in 0..corr.num_threads() {
        if t != a {
            let v = corr.get(a, t) as i64;
            if mapping.node_of(t) == nb {
                d_a += v; // becomes internal
            } else if mapping.node_of(t) == na {
                d_a -= v; // becomes external
            }
        }
        if t != b {
            let v = corr.get(b, t) as i64;
            if mapping.node_of(t) == na {
                d_b += v;
            } else if mapping.node_of(t) == nb {
                d_b -= v;
            }
        }
    }
    // The (a,b) edge stays cut after the swap but was counted as a gain in
    // both D terms.
    d_a + d_b - 2 * corr.get(a, b) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_sim::DetRng;
    use acorr_track::cut_cost;

    fn chain(n: usize, w: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for i in 0..n - 1 {
            c.set(i, i + 1, w);
        }
        c
    }

    fn blocks(n: usize, block: usize, w: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if a / block == b / block {
                    c.set(a, b, w);
                }
            }
        }
        c
    }

    #[test]
    fn chain_yields_contiguous_blocks() {
        let corr = chain(16, 3);
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let m = min_cost(&corr, &cluster);
        // A contiguous split cuts exactly 3 edges → ordered cut 18; min-cost
        // must match the stretch optimum.
        assert_eq!(cut_cost(&corr, &m), cut_cost(&corr, &Mapping::stretch(&cluster)));
        assert!(m.is_balanced());
    }

    #[test]
    fn block_sharing_is_reunited() {
        // 16 threads sharing in blocks of 4 → a 4-node mapping exists with
        // zero cut; min-cost must find it.
        let corr = blocks(16, 4, 5);
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let m = min_cost(&corr, &cluster);
        assert_eq!(cut_cost(&corr, &m), 0, "mapping {m}");
    }

    #[test]
    fn scrambled_blocks_are_recovered() {
        // Blocks of 4, but block members are interleaved across thread ids
        // (threads i, i+4, i+8, i+12 share): stretch fails, min-cost should
        // still find a zero-cut grouping.
        let n = 16;
        let mut corr = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if a % 4 == b % 4 {
                    corr.set(a, b, 7);
                }
            }
        }
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let stretch_cut = cut_cost(&corr, &Mapping::stretch(&cluster));
        let m = min_cost(&corr, &cluster);
        assert_eq!(cut_cost(&corr, &m), 0);
        assert!(stretch_cut > 0, "stretch must actually be bad here");
    }

    #[test]
    fn refinement_never_worsens() {
        let rng = DetRng::new(42);
        for seed in 0..10 {
            let n = 12;
            let mut corr = CorrelationMatrix::zeros(n);
            let mut r = rng.fork(seed);
            for a in 0..n {
                for b in (a + 1)..n {
                    corr.set(a, b, r.next_below(20));
                }
            }
            let cluster = ClusterConfig::new(3, n).unwrap();
            let start = Mapping::random_balanced(&cluster, &mut r);
            let before = cut_cost(&corr, &start);
            let refined = refine_kl(&corr, start);
            let after = cut_cost(&corr, &refined);
            assert!(after <= before, "seed {seed}: {after} > {before}");
            assert!(refined.is_balanced());
        }
    }

    #[test]
    fn min_cost_beats_or_matches_random() {
        let rng = DetRng::new(7);
        let corr = blocks(24, 4, 3);
        let cluster = ClusterConfig::new(6, 24).unwrap();
        let mc = cut_cost(&corr, &min_cost(&corr, &cluster));
        for s in 0..20 {
            let r = Mapping::random_balanced(&cluster, &mut rng.fork(s));
            assert!(mc <= cut_cost(&corr, &r));
        }
    }

    #[test]
    fn ragged_thread_counts_are_balanced() {
        let corr = chain(10, 2);
        let cluster = ClusterConfig::new(3, 10).unwrap();
        let m = min_cost(&corr, &cluster);
        assert!(m.is_balanced());
        let mut counts = m.node_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![3, 3, 4]);
    }

    #[test]
    fn zero_matrix_is_trivially_optimal() {
        let corr = CorrelationMatrix::zeros(8);
        let cluster = ClusterConfig::new(2, 8).unwrap();
        let m = min_cost(&corr, &cluster);
        assert_eq!(cut_cost(&corr, &m), 0);
        assert!(m.is_balanced());
    }

    #[test]
    fn swap_gain_matches_cut_delta() {
        let mut rng = DetRng::new(3);
        let n = 10;
        let mut corr = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in (a + 1)..n {
                corr.set(a, b, rng.next_below(9));
            }
        }
        let cluster = ClusterConfig::new(2, n).unwrap();
        let m = Mapping::stretch(&cluster);
        for a in 0..n {
            for b in (a + 1)..n {
                if m.node_of(a) == m.node_of(b) {
                    continue;
                }
                let gain = swap_gain(&corr, &m, a, b);
                let mut swapped = m.clone();
                let (na, nb) = (m.node_of(a), m.node_of(b));
                swapped.set_node_of(a, nb);
                swapped.set_node_of(b, na);
                let delta = cut_cost(&corr, &m) as i64 - cut_cost(&corr, &swapped) as i64;
                // cut_cost uses the ordered (doubled) convention.
                assert_eq!(delta, 2 * gain, "pair ({a},{b})");
            }
        }
    }
}
