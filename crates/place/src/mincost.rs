//! The *min-cost* heuristic: greedy affinity clustering plus
//! Kernighan-Lin-style refinement.
//!
//! The paper (§5.1) built several heuristics on cluster analysis and found
//! two that identified *"thread mappings with cut costs that were within 1%
//! of optimal for all of our applications"*, referring to them collectively
//! as **min-cost**. This module implements that pipeline:
//!
//! 1. **Greedy seeding** — for each node in turn, seed a cluster with the
//!    strongest-affinity unassigned pair, then repeatedly add the unassigned
//!    thread with the highest total correlation to the cluster until the
//!    node's quota is reached (a shared-near-neighbor flavour of the
//!    Jarvis-Patrick clustering the paper cites).
//! 2. **Pairwise swap refinement** — Kernighan-Lin gains: repeatedly apply
//!    the best cut-reducing swap of two threads on different nodes until no
//!    positive gain remains.
//!
//! Both stages preserve balanced node populations, matching the paper's
//! restriction to "a constant and equal number of threads on each node".
//!
//! Both stages are **incremental**: the seeding stage maintains a sorted
//! pair list plus a running affinity accumulator instead of rescanning all
//! pairs per node, and the refinement stage maintains the classic
//! Kernighan-Lin *D-values* in a [`DegreeCache`] — each thread's
//! connectivity to every node — updated in O(n) per accepted swap, making a
//! refinement pass O(n²) instead of O(n³). The cached kernels are
//! selection-for-selection identical to the direct implementations (kept as
//! [`refine_kl_reference`] for equivalence tests and offline timing), so
//! they return bit-identical mappings.

use acorr_sim::{ClusterConfig, Mapping, NodeId};
use acorr_track::{CorrelationMatrix, CorrelationStore};

/// Per-thread node-connectivity cache behind the incremental Kernighan-Lin
/// kernels: `conn(t, node)` is the total correlation between thread `t` and
/// the threads currently mapped to `node` (excluding `t` itself).
///
/// The classic KL *D-value* of moving `t` from its node `from` to `to` is
/// `conn(t, to) - conn(t, from)`; a swap gain is evaluated in O(1) from two
/// D-values, and an accepted swap updates the cache in O(n) instead of the
/// O(n²) full rebuild. [`anneal`](crate::anneal()) shares the same cache to
/// score its swap proposals in O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeCache {
    nodes: usize,
    conn: Vec<i64>,
}

impl DegreeCache {
    /// Builds the cache for `mapping` in one sweep over the store's edges —
    /// O(n²) on the dense matrix, O(E) on a sparse store. The accumulated
    /// integers are identical either way (zero pairs contribute nothing and
    /// `i64` addition commutes), so the cached kernels stay bit-identical
    /// across backends.
    ///
    /// # Panics
    ///
    /// Panics if the store covers a different thread count than the
    /// mapping.
    pub fn new<C: CorrelationStore>(corr: &C, mapping: &Mapping) -> Self {
        let n = corr.num_threads();
        assert_eq!(n, mapping.num_threads(), "matrix and mapping must agree");
        let nodes = mapping.node_counts().len();
        let mut conn = vec![0i64; n * nodes];
        corr.for_each_edge(|a, b, v| {
            conn[a * nodes + mapping.node_of(b).idx()] += v as i64;
            conn[b * nodes + mapping.node_of(a).idx()] += v as i64;
        });
        DegreeCache { nodes, conn }
    }

    /// The total correlation between `t` and the threads on `node`.
    pub fn conn(&self, t: usize, node: NodeId) -> i64 {
        self.conn[t * self.nodes + node.idx()]
    }

    /// The KL D-value of moving `t` from `from` to `to`: external-becomes-
    /// internal minus internal-becomes-external connectivity.
    pub fn d_value(&self, t: usize, from: NodeId, to: NodeId) -> i64 {
        self.conn(t, to) - self.conn(t, from)
    }

    /// The cut reduction from swapping threads `a` and `b` (which must live
    /// on different nodes under `mapping`): `D_a + D_b - 2*c(a,b)`.
    pub fn gain<C: CorrelationStore>(
        &self,
        corr: &C,
        mapping: &Mapping,
        a: usize,
        b: usize,
    ) -> i64 {
        let na = mapping.node_of(a);
        let nb = mapping.node_of(b);
        // The (a,b) edge stays cut after the swap but was counted as a gain
        // in both D terms.
        self.d_value(a, na, nb) + self.d_value(b, nb, na) - 2 * corr.get(a, b) as i64
    }

    /// Applies the swap of `a` (moving `na` → `nb`) and `b` (moving `nb` →
    /// `na`) to the cache — O(n) on the dense matrix, O(deg(a) + deg(b)) on
    /// a sparse store. Call with the *pre-swap* nodes, in the same breath
    /// as `Mapping::set_node_of`.
    pub fn apply_swap<C: CorrelationStore>(
        &mut self,
        corr: &C,
        a: usize,
        b: usize,
        na: NodeId,
        nb: NodeId,
    ) {
        corr.for_each_neighbor(a, |t, v| {
            let v = v as i64;
            self.conn[t * self.nodes + na.idx()] -= v;
            self.conn[t * self.nodes + nb.idx()] += v;
        });
        corr.for_each_neighbor(b, |t, v| {
            let v = v as i64;
            self.conn[t * self.nodes + nb.idx()] -= v;
            self.conn[t * self.nodes + na.idx()] += v;
        });
    }

    /// True when the cache equals a from-scratch rebuild for `mapping` —
    /// the invariant the equivalence tests check after every swap.
    pub fn matches_rebuild<C: CorrelationStore>(&self, corr: &C, mapping: &Mapping) -> bool {
        *self == DegreeCache::new(corr, mapping)
    }
}

/// Computes a balanced placement minimizing cut cost heuristically.
///
/// # Panics
///
/// Panics if the matrix covers a different thread count than the cluster.
pub fn min_cost(corr: &CorrelationMatrix, cluster: &ClusterConfig) -> Mapping {
    assert_eq!(
        corr.num_threads(),
        cluster.num_threads(),
        "matrix and cluster must cover the same threads"
    );
    let seeded = greedy_seed(corr, cluster);
    refine_kl(corr, seeded)
}

/// Per-node quotas identical to the stretch heuristic's block sizes.
fn quotas(cluster: &ClusterConfig) -> Vec<usize> {
    Mapping::stretch(cluster).node_counts()
}

fn greedy_seed(corr: &CorrelationMatrix, cluster: &ClusterConfig) -> Mapping {
    let n = corr.num_threads();
    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    let mut unassigned: Vec<usize> = (0..n).collect();
    // All pairs sorted once (weight desc, then lexicographic) with a
    // monotone cursor, replacing the per-node O(u²) rescan of the original
    // seeding loop: a pair skipped because an endpoint is already assigned
    // stays invalid forever, so the cursor never moves backwards. The
    // (weight desc, a asc, b asc) order reproduces the rescan's "first
    // maximum over an ascending unassigned list" tie-break exactly.
    let mut pairs: Vec<(u64, usize, usize)> = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            pairs.push((corr.get(a, b), a, b));
        }
    }
    pairs.sort_unstable_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
    let mut cursor = 0usize;
    // Running affinity of every thread to the cluster under construction,
    // updated in O(n) per added member instead of recomputed per candidate.
    // Assigned threads accumulate garbage (including diagonal self-counts)
    // but are never candidates again.
    let mut affinity: Vec<u64> = vec![0; n];
    for (node_idx, quota) in quotas(cluster).iter().copied().enumerate() {
        let node = NodeId(node_idx as u16);
        let mut members: Vec<usize> = Vec::with_capacity(quota);
        affinity.iter_mut().for_each(|v| *v = 0);
        // Seed with the strongest remaining pair (or the lone remaining
        // thread for a quota of one).
        if quota >= 2 && unassigned.len() >= 2 {
            while assignment[pairs[cursor].1].is_some() || assignment[pairs[cursor].2].is_some() {
                cursor += 1;
            }
            let (_, a, b) = pairs[cursor];
            cursor += 1;
            unassigned.retain(|&t| t != a && t != b);
            members.push(a);
            members.push(b);
            for (t, slot) in affinity.iter_mut().enumerate() {
                *slot = corr.get(t, a) + corr.get(t, b);
            }
        }
        // Grow: always take the unassigned thread with the highest affinity
        // to the cluster (ties: lowest thread id, for determinism).
        while members.len() < quota && !unassigned.is_empty() {
            let (pos, _) = unassigned
                .iter()
                .enumerate()
                .map(|(pos, &t)| (pos, affinity[t]))
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .expect("unassigned is non-empty");
            let added = unassigned.remove(pos);
            members.push(added);
            for (t, slot) in affinity.iter_mut().enumerate() {
                *slot += corr.get(t, added);
            }
        }
        for m in members {
            assignment[m] = Some(node);
        }
    }
    let assignment: Vec<NodeId> = assignment
        .into_iter()
        .map(|a| a.expect("quotas cover all threads"))
        .collect();
    Mapping::from_assignment(cluster, assignment).expect("seeded mapping is valid")
}

/// Kernighan-Lin-style refinement: repeatedly performs the
/// highest-positive-gain swap of two threads on different nodes, until no
/// swap reduces the cut. Returns the refined mapping (node populations are
/// preserved).
///
/// Gains are read from a [`DegreeCache`] maintained incrementally (O(1) per
/// candidate pair, O(n) per accepted swap), so one pass is O(n²) where the
/// direct [`refine_kl_reference`] pays O(n³). The scan order, strict-`>`
/// selection and termination condition are identical, so the two return
/// **bit-identical** mappings. Generic over the correlation backend: the
/// gains are integer sums either way, so dense and sparse stores holding
/// the same data refine to the same mapping.
pub fn refine_kl<C: CorrelationStore>(corr: &C, mut mapping: Mapping) -> Mapping {
    let n = corr.num_threads();
    let mut cache = DegreeCache::new(corr, &mapping);
    loop {
        let mut best_gain = 0i64;
        let mut best_pair: Option<(usize, usize)> = None;
        for a in 0..n {
            for b in (a + 1)..n {
                if mapping.node_of(a) == mapping.node_of(b) {
                    continue;
                }
                let gain = cache.gain(corr, &mapping, a, b);
                if gain > best_gain {
                    best_gain = gain;
                    best_pair = Some((a, b));
                }
            }
        }
        match best_pair {
            Some((a, b)) => {
                let na = mapping.node_of(a);
                let nb = mapping.node_of(b);
                cache.apply_swap(corr, a, b, na, nb);
                mapping.set_node_of(a, nb);
                mapping.set_node_of(b, na);
            }
            None => return mapping,
        }
    }
}

/// The pre-cache refinement kernel: identical selection logic to
/// [`refine_kl`] but recomputing every gain from scratch with
/// [`swap_gain`], O(n³) per pass. Kept as the equivalence-test oracle and
/// the "before" side of the `perf` timing harness.
pub fn refine_kl_reference(corr: &CorrelationMatrix, mut mapping: Mapping) -> Mapping {
    let n = corr.num_threads();
    loop {
        let mut best_gain = 0i64;
        let mut best_pair: Option<(usize, usize)> = None;
        for a in 0..n {
            for b in (a + 1)..n {
                if mapping.node_of(a) == mapping.node_of(b) {
                    continue;
                }
                let gain = swap_gain(corr, &mapping, a, b);
                if gain > best_gain {
                    best_gain = gain;
                    best_pair = Some((a, b));
                }
            }
        }
        match best_pair {
            Some((a, b)) => {
                let na = mapping.node_of(a);
                let nb = mapping.node_of(b);
                mapping.set_node_of(a, nb);
                mapping.set_node_of(b, na);
            }
            None => return mapping,
        }
    }
}

/// The (unordered) cut reduction from swapping threads `a` and `b`, which
/// must be on different nodes: `D_a + D_b - 2*c(a,b)` with
/// `D_x = external(x) - internal(x)`.
fn swap_gain(corr: &CorrelationMatrix, mapping: &Mapping, a: usize, b: usize) -> i64 {
    let na = mapping.node_of(a);
    let nb = mapping.node_of(b);
    let mut d_a = 0i64;
    let mut d_b = 0i64;
    for t in 0..corr.num_threads() {
        if t != a {
            let v = corr.get(a, t) as i64;
            if mapping.node_of(t) == nb {
                d_a += v; // becomes internal
            } else if mapping.node_of(t) == na {
                d_a -= v; // becomes external
            }
        }
        if t != b {
            let v = corr.get(b, t) as i64;
            if mapping.node_of(t) == na {
                d_b += v;
            } else if mapping.node_of(t) == nb {
                d_b -= v;
            }
        }
    }
    // The (a,b) edge stays cut after the swap but was counted as a gain in
    // both D terms.
    d_a + d_b - 2 * corr.get(a, b) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_sim::DetRng;
    use acorr_track::cut_cost;

    fn chain(n: usize, w: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for i in 0..n - 1 {
            c.set(i, i + 1, w);
        }
        c
    }

    fn blocks(n: usize, block: usize, w: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if a / block == b / block {
                    c.set(a, b, w);
                }
            }
        }
        c
    }

    #[test]
    fn chain_yields_contiguous_blocks() {
        let corr = chain(16, 3);
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let m = min_cost(&corr, &cluster);
        // A contiguous split cuts exactly 3 edges → ordered cut 18; min-cost
        // must match the stretch optimum.
        assert_eq!(
            cut_cost(&corr, &m),
            cut_cost(&corr, &Mapping::stretch(&cluster))
        );
        assert!(m.is_balanced());
    }

    #[test]
    fn block_sharing_is_reunited() {
        // 16 threads sharing in blocks of 4 → a 4-node mapping exists with
        // zero cut; min-cost must find it.
        let corr = blocks(16, 4, 5);
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let m = min_cost(&corr, &cluster);
        assert_eq!(cut_cost(&corr, &m), 0, "mapping {m}");
    }

    #[test]
    fn scrambled_blocks_are_recovered() {
        // Blocks of 4, but block members are interleaved across thread ids
        // (threads i, i+4, i+8, i+12 share): stretch fails, min-cost should
        // still find a zero-cut grouping.
        let n = 16;
        let mut corr = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if a % 4 == b % 4 {
                    corr.set(a, b, 7);
                }
            }
        }
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let stretch_cut = cut_cost(&corr, &Mapping::stretch(&cluster));
        let m = min_cost(&corr, &cluster);
        assert_eq!(cut_cost(&corr, &m), 0);
        assert!(stretch_cut > 0, "stretch must actually be bad here");
    }

    #[test]
    fn refinement_never_worsens() {
        let rng = DetRng::new(42);
        for seed in 0..10 {
            let n = 12;
            let mut corr = CorrelationMatrix::zeros(n);
            let mut r = rng.fork(seed);
            for a in 0..n {
                for b in (a + 1)..n {
                    corr.set(a, b, r.next_below(20));
                }
            }
            let cluster = ClusterConfig::new(3, n).unwrap();
            let start = Mapping::random_balanced(&cluster, &mut r);
            let before = cut_cost(&corr, &start);
            let refined = refine_kl(&corr, start);
            let after = cut_cost(&corr, &refined);
            assert!(after <= before, "seed {seed}: {after} > {before}");
            assert!(refined.is_balanced());
        }
    }

    #[test]
    fn min_cost_beats_or_matches_random() {
        let rng = DetRng::new(7);
        let corr = blocks(24, 4, 3);
        let cluster = ClusterConfig::new(6, 24).unwrap();
        let mc = cut_cost(&corr, &min_cost(&corr, &cluster));
        for s in 0..20 {
            let r = Mapping::random_balanced(&cluster, &mut rng.fork(s));
            assert!(mc <= cut_cost(&corr, &r));
        }
    }

    #[test]
    fn ragged_thread_counts_are_balanced() {
        let corr = chain(10, 2);
        let cluster = ClusterConfig::new(3, 10).unwrap();
        let m = min_cost(&corr, &cluster);
        assert!(m.is_balanced());
        let mut counts = m.node_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![3, 3, 4]);
    }

    #[test]
    fn zero_matrix_is_trivially_optimal() {
        let corr = CorrelationMatrix::zeros(8);
        let cluster = ClusterConfig::new(2, 8).unwrap();
        let m = min_cost(&corr, &cluster);
        assert_eq!(cut_cost(&corr, &m), 0);
        assert!(m.is_balanced());
    }

    #[test]
    fn swap_gain_matches_cut_delta() {
        let mut rng = DetRng::new(3);
        let n = 10;
        let mut corr = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in (a + 1)..n {
                corr.set(a, b, rng.next_below(9));
            }
        }
        let cluster = ClusterConfig::new(2, n).unwrap();
        let m = Mapping::stretch(&cluster);
        for a in 0..n {
            for b in (a + 1)..n {
                if m.node_of(a) == m.node_of(b) {
                    continue;
                }
                let gain = swap_gain(&corr, &m, a, b);
                let mut swapped = m.clone();
                let (na, nb) = (m.node_of(a), m.node_of(b));
                swapped.set_node_of(a, nb);
                swapped.set_node_of(b, na);
                let delta = cut_cost(&corr, &m) as i64 - cut_cost(&corr, &swapped) as i64;
                // cut_cost uses the ordered (doubled) convention.
                assert_eq!(delta, 2 * gain, "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn cached_gain_matches_direct_gain() {
        let mut rng = DetRng::new(11);
        let n = 12;
        let mut corr = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in (a + 1)..n {
                corr.set(a, b, rng.next_below(13));
            }
        }
        let cluster = ClusterConfig::new(3, n).unwrap();
        let m = Mapping::random_balanced(&cluster, &mut rng);
        let cache = DegreeCache::new(&corr, &m);
        for a in 0..n {
            for b in (a + 1)..n {
                if m.node_of(a) == m.node_of(b) {
                    continue;
                }
                assert_eq!(
                    cache.gain(&corr, &m, a, b),
                    swap_gain(&corr, &m, a, b),
                    "pair ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn incremental_refine_matches_reference() {
        let rng = DetRng::new(23);
        for seed in 0..8 {
            let n = 14;
            let mut r = rng.fork(seed);
            let mut corr = CorrelationMatrix::zeros(n);
            for a in 0..n {
                for b in (a + 1)..n {
                    corr.set(a, b, r.next_below(17));
                }
            }
            let cluster = ClusterConfig::new(2, n).unwrap();
            let start = Mapping::random_balanced(&cluster, &mut r);
            let fast = refine_kl(&corr, start.clone());
            let slow = refine_kl_reference(&corr, start);
            assert_eq!(fast, slow, "seed {seed}: mappings must be bit-identical");
        }
    }
}
