//! Jarvis-Patrick shared-near-neighbor seeding.
//!
//! The paper's min-cost heuristics are "based on cluster analysis \[10\]" —
//! Jarvis & Patrick's 1973 shared-near-neighbor method: two points belong
//! together when their k-nearest-neighbor lists overlap enough. Applied to
//! threads: two threads are kin when they *share many of the same
//! high-affinity partners*, which groups e.g. FFT's transpose clusters even
//! when the direct pairwise correlation is noisy.
//!
//! The seeding is followed by the same Kernighan-Lin refinement as
//! [`min_cost`](crate::min_cost); [`jarvis_patrick`] is a drop-in
//! alternative whose relative quality the benches and tests compare.

use crate::mincost::refine_kl;
use acorr_sim::{ClusterConfig, Mapping, NodeId};
use acorr_track::CorrelationMatrix;

/// Number of nearest neighbours considered per thread.
const K: usize = 6;

/// The `k` highest-correlation partners of each thread (ties broken by
/// lower index, self excluded).
fn neighbor_lists(corr: &CorrelationMatrix, k: usize) -> Vec<Vec<usize>> {
    let n = corr.num_threads();
    (0..n)
        .map(|a| {
            let mut partners: Vec<usize> = (0..n).filter(|&b| b != a).collect();
            partners.sort_by(|&x, &y| corr.get(a, y).cmp(&corr.get(a, x)).then(x.cmp(&y)));
            partners.truncate(k);
            partners
        })
        .collect()
}

/// Shared-near-neighbor similarity of two threads: how many of each
/// other's top-k lists they share, plus mutual membership bonuses.
fn snn_similarity(lists: &[Vec<usize>], a: usize, b: usize) -> usize {
    let shared = lists[a].iter().filter(|t| lists[b].contains(t)).count();
    let mutual = usize::from(lists[a].contains(&b)) + usize::from(lists[b].contains(&a));
    shared + 2 * mutual
}

/// Places threads by Jarvis-Patrick shared-near-neighbor clustering plus
/// Kernighan-Lin refinement.
///
/// # Panics
///
/// Panics if the matrix covers a different thread count than the cluster.
pub fn jarvis_patrick(corr: &CorrelationMatrix, cluster: &ClusterConfig) -> Mapping {
    assert_eq!(
        corr.num_threads(),
        cluster.num_threads(),
        "matrix and cluster must cover the same threads"
    );
    let n = corr.num_threads();
    let k = K.min(n.saturating_sub(1));
    let lists = neighbor_lists(corr, k);
    let quotas = Mapping::stretch(cluster).node_counts();

    let mut assignment: Vec<Option<NodeId>> = vec![None; n];
    let mut unassigned: Vec<usize> = (0..n).collect();
    for (node_idx, quota) in quotas.iter().copied().enumerate() {
        let node = NodeId(node_idx as u16);
        let mut members: Vec<usize> = Vec::with_capacity(quota);
        // Seed with the unassigned pair of highest SNN similarity.
        if quota >= 2 && unassigned.len() >= 2 {
            let mut best = (0usize, 1usize, 0usize);
            let mut found = false;
            for (i, &a) in unassigned.iter().enumerate() {
                for (j, &b) in unassigned.iter().enumerate().skip(i + 1) {
                    let s = snn_similarity(&lists, a, b);
                    if !found || s > best.2 {
                        best = (i, j, s);
                        found = true;
                    }
                }
            }
            let (i, j, _) = best;
            let b = unassigned.remove(j);
            let a = unassigned.remove(i);
            members.push(a);
            members.push(b);
        }
        // Grow by total SNN similarity to the cluster.
        while members.len() < quota && !unassigned.is_empty() {
            let (pos, _) = unassigned
                .iter()
                .enumerate()
                .map(|(pos, &t)| {
                    let sim: usize = members.iter().map(|&m| snn_similarity(&lists, t, m)).sum();
                    (pos, sim)
                })
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .expect("non-empty");
            members.push(unassigned.remove(pos));
        }
        for m in members {
            assignment[m] = Some(node);
        }
    }
    let assignment: Vec<NodeId> = assignment
        .into_iter()
        .map(|a| a.expect("quotas cover all threads"))
        .collect();
    let seeded = Mapping::from_assignment(cluster, assignment).expect("valid seed");
    refine_kl(corr, seeded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_sim::DetRng;
    use acorr_track::cut_cost;

    fn blocks(n: usize, b: usize, w: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for d in (a + 1)..n {
                if a / b == d / b {
                    c.set(a, d, w);
                }
            }
        }
        c
    }

    #[test]
    fn recovers_clean_blocks() {
        let corr = blocks(16, 4, 5);
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let m = jarvis_patrick(&corr, &cluster);
        assert_eq!(cut_cost(&corr, &m), 0, "{m}");
        assert!(m.is_balanced());
    }

    #[test]
    fn snn_groups_through_shared_partners() {
        // Threads 0 and 1 never share directly but share partners 2 and 3
        // heavily; SNN must see them as kin.
        let mut c = CorrelationMatrix::zeros(8);
        for hub in [2, 3] {
            c.set(0, hub, 10);
            c.set(1, hub, 10);
        }
        let lists = neighbor_lists(&c, 3);
        assert!(snn_similarity(&lists, 0, 1) >= 2);
        // And the placement keeps the club {0,1,2,3} together.
        let cluster = ClusterConfig::new(2, 8).unwrap();
        let m = jarvis_patrick(&c, &cluster);
        assert_eq!(m.node_of(0), m.node_of(2));
        assert_eq!(m.node_of(1), m.node_of(3));
        assert_eq!(m.node_of(0), m.node_of(1));
    }

    #[test]
    fn comparable_to_min_cost_on_random_instances() {
        let rng = DetRng::new(17);
        for seed in 0..6 {
            let n = 16;
            let mut corr = CorrelationMatrix::zeros(n);
            let mut r = rng.fork(seed);
            for a in 0..n {
                for b in (a + 1)..n {
                    corr.set(a, b, r.next_below(12));
                }
            }
            let cluster = ClusterConfig::new(4, n).unwrap();
            let jp = cut_cost(&corr, &jarvis_patrick(&corr, &cluster));
            let mc = cut_cost(&corr, &crate::min_cost(&corr, &cluster));
            // Both end behind KL refinement; they should land close.
            assert!(
                (jp as f64) <= mc as f64 * 1.15 + 8.0,
                "seed {seed}: jp {jp} vs mc {mc}"
            );
        }
    }

    #[test]
    fn handles_tiny_instances() {
        let corr = CorrelationMatrix::zeros(2);
        let cluster = ClusterConfig::new(2, 2).unwrap();
        let m = jarvis_patrick(&corr, &cluster);
        assert_eq!(m.num_threads(), 2);
    }
}
