//! Multilevel partitioning for production-scale thread counts.
//!
//! The paper's min-cost heuristic is O(T² log T) to seed and O(T²) per
//! refinement pass — excellent at 64 threads, hopeless at a million. This
//! module implements the classic multilevel scheme (the sharing-matrix →
//! graph-partitioning pipeline of the STM thread-mapping survey):
//!
//! 1. **Coarsen** — repeatedly merge high-affinity threads (heavy-edge
//!    clustering, capped so no cluster outgrows a node quota) until the
//!    graph is a small multiple of the node count;
//! 2. **Partition** — place the coarse clusters greedily by affinity under
//!    the exact per-node quotas of [`Mapping::stretch`];
//! 3. **Uncoarsen** — project back level by level, refining at each level
//!    with affinity-driven moves and equal-weight neighbor swaps, and at
//!    the finest level rebalancing to the exact stretch quotas. Small
//!    instances finish with the full incremental Kernighan-Lin kernel
//!    ([`refine_kl`]) via the [`DegreeCache`](crate::DegreeCache)
//!    generalized to any [`CorrelationStore`], so the multilevel path and
//!    the paper's direct path converge on the same machinery.
//!
//! Every stage visits vertices and neighbors in ascending order with
//! explicit tie-breaks and contains no randomness or parallelism, so the
//! result is a pure function of the input store — bit-identical across
//! worker counts and runs.
//!
//! Memory note: the dense `DegreeCache` is `threads × nodes`, which at
//! 1M × 1k would be 8 GB — that is why large instances refine with the
//! sparse per-vertex connectivity scratch below (O(nodes) reused across
//! vertices) and only instances under
//! [`MultilevelConfig::kl_threshold`] build the cache.

use crate::mincost::refine_kl;
use acorr_sim::{ClusterConfig, Mapping, NodeId};
use acorr_track::CorrelationStore;

/// Tuning knobs for [`multilevel_place_with`]. The defaults reproduce the
/// pinned digests in `results/BENCH_pr9.json`; change them and the output
/// (deterministically) changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultilevelConfig {
    /// Stop coarsening once the graph has at most `coarse_per_node × nodes`
    /// vertices.
    pub coarse_per_node: usize,
    /// Never coarsen below this many vertices regardless of node count.
    pub coarse_floor: usize,
    /// Maximum move/swap refinement passes per level.
    pub refine_passes: usize,
    /// Skip swap partners with more neighbors than this during sparse
    /// refinement (hub vertices make a swap scan O(deg²) for little gain).
    pub swap_degree_cap: usize,
    /// Intermediate levels with more vertices than this are not refined
    /// (and their graphs are freed during coarsening). The finest and
    /// coarsest levels always refine.
    pub refine_size_cap: usize,
    /// Finish with the full incremental Kernighan-Lin kernel when the
    /// instance has at most this many threads.
    pub kl_threshold: usize,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarse_per_node: 4,
            coarse_floor: 128,
            refine_passes: 2,
            swap_degree_cap: 64,
            refine_size_cap: 1 << 17,
            kl_threshold: 256,
        }
    }
}

/// A level of the multilevel hierarchy: symmetric CSR adjacency plus
/// per-vertex weights (the number of fine threads a vertex represents).
struct Graph {
    xadj: Vec<usize>,
    nbr: Vec<u32>,
    /// Edge weights, saturated to `u32`: halves the memory the hierarchy
    /// touches (the dominant cost at 10⁶ threads), and correlation counts
    /// anywhere near `u32::MAX` are far beyond any tracked workload —
    /// saturation is deterministic either way.
    wgt: Vec<u32>,
    vwgt: Vec<u64>,
}

impl Graph {
    fn len(&self) -> usize {
        self.vwgt.len()
    }

    fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, u32)> + '_ {
        (self.xadj[v]..self.xadj[v + 1]).map(|i| (self.nbr[i] as usize, self.wgt[i]))
    }

    fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    fn from_store<C: CorrelationStore>(corr: &C) -> Graph {
        let n = corr.num_threads();
        let mut deg = vec![0usize; n];
        corr.for_each_edge(|a, b, _| {
            deg[a] += 1;
            deg[b] += 1;
        });
        let mut xadj = Vec::with_capacity(n + 1);
        let mut total = 0;
        xadj.push(0);
        for d in &deg {
            total += d;
            xadj.push(total);
        }
        let mut cursor: Vec<usize> = xadj[..n].to_vec();
        let mut nbr = vec![0u32; total];
        let mut wgt = vec![0u32; total];
        corr.for_each_edge(|a, b, v| {
            let w = v.min(u32::MAX as u64) as u32;
            nbr[cursor[a]] = b as u32;
            wgt[cursor[a]] = w;
            cursor[a] += 1;
            nbr[cursor[b]] = a as u32;
            wgt[cursor[b]] = w;
            cursor[b] += 1;
        });
        Graph {
            xadj,
            nbr,
            wgt,
            vwgt: vec![1; n],
        }
    }
}

/// One round of heavy-edge clustering: visits vertices in ascending order;
/// each unassigned vertex merges with its heaviest feasible neighbor (ties:
/// lowest id) — pairing with it if it is also unassigned, *joining its
/// cluster* if it already has one — as long as the merged weight stays
/// within `max_vwgt`. Letting vertices join existing clusters (rather than
/// strict pair matching) collapses a sharing community in one round
/// instead of log₂ rounds, which matters enormously at 10⁶ threads where
/// every extra level costs an `O(E)` graph build. Returns the coarse graph
/// and the fine→coarse map, or `None` when clustering no longer shrinks
/// the graph meaningfully.
fn coarsen(g: &Graph, max_vwgt: u64) -> Option<(Graph, Vec<u32>)> {
    let n = g.len();
    let mut cmap = vec![u32::MAX; n];
    let mut cweight: Vec<u64> = Vec::new();
    for v in 0..n {
        if cmap[v] != u32::MAX {
            continue;
        }
        let wv = g.vwgt[v];
        let mut best: Option<(u32, usize)> = None;
        for (u, w) in g.neighbors(v) {
            let feasible = if cmap[u] == u32::MAX {
                wv + g.vwgt[u] <= max_vwgt
            } else {
                cweight[cmap[u] as usize] + wv <= max_vwgt
            };
            if !feasible {
                continue;
            }
            let better = match best {
                None => true,
                Some((bw, bu)) => w > bw || (w == bw && u < bu),
            };
            if better {
                best = Some((w, u));
            }
        }
        match best {
            Some((_, u)) if cmap[u] != u32::MAX => {
                let c = cmap[u];
                cmap[v] = c;
                cweight[c as usize] += wv;
            }
            Some((_, u)) => {
                let c = cweight.len() as u32;
                cmap[v] = c;
                cmap[u] = c;
                cweight.push(wv + g.vwgt[u]);
            }
            None => {
                cmap[v] = cweight.len() as u32;
                cweight.push(wv);
            }
        }
    }
    let cn = cweight.len();
    if cn * 20 > n * 19 {
        return None; // shrank less than 5% — structure is exhausted
    }
    let vwgt = cweight;
    // Counting-sort fine vertices by coarse owner so each coarse row can be
    // emitted contiguously. Everything below is flat arrays sized once —
    // per-vertex buckets and per-row sorts dominated the 10⁶-thread
    // profile on this path before.
    let mut mstart = vec![0usize; cn + 1];
    for v in 0..n {
        mstart[cmap[v] as usize + 1] += 1;
    }
    for cv in 0..cn {
        mstart[cv + 1] += mstart[cv];
    }
    let mut members = vec![0u32; n];
    let mut cursor = mstart.clone();
    for v in 0..n {
        members[cursor[cmap[v] as usize]] = v as u32;
        cursor[cmap[v] as usize] += 1;
    }
    // Emit each coarse row, coalescing parallel edges through a dense
    // last-touched-by marker instead of a sort: O(E) total. Rows come out
    // in deterministic first-encounter order (nothing downstream needs
    // them sorted; every tie-break keys on ids, not list positions).
    let mut xadj = Vec::with_capacity(cn + 1);
    xadj.push(0usize);
    let mut nbr: Vec<u32> = Vec::with_capacity(g.nbr.len());
    let mut wgt: Vec<u32> = Vec::with_capacity(g.nbr.len());
    let mut mark = vec![u32::MAX; cn];
    let mut pos = vec![0usize; cn];
    for cv in 0..cn {
        for &v in &members[mstart[cv]..mstart[cv + 1]] {
            for (u, w) in g.neighbors(v as usize) {
                let cu = cmap[u] as usize;
                if cu == cv {
                    continue;
                }
                if mark[cu] == cv as u32 {
                    wgt[pos[cu]] = wgt[pos[cu]].saturating_add(w);
                } else {
                    mark[cu] = cv as u32;
                    pos[cu] = nbr.len();
                    nbr.push(cu as u32);
                    wgt.push(w);
                }
            }
        }
        xadj.push(nbr.len());
    }
    // No shrink_to_fit: it would copy the arrays (and on this scale,
    // re-fault every page); unwritten capacity costs only address space.
    Some((
        Graph {
            xadj,
            nbr,
            wgt,
            vwgt,
        },
        cmap,
    ))
}

/// Reusable per-node connectivity scratch: `O(nodes)` memory, `O(touched)`
/// reset — the sparse stand-in for a `DegreeCache` row.
struct ConnScratch {
    conn: Vec<i64>,
    touched: Vec<u16>,
}

impl ConnScratch {
    fn new(nodes: usize) -> Self {
        ConnScratch {
            conn: vec![0; nodes],
            touched: Vec::with_capacity(16),
        }
    }

    /// Accumulates `v`'s connectivity to each node under `part`, counting
    /// only vertices for which `include` holds.
    fn gather(&mut self, g: &Graph, part: &[u16], v: usize, include: impl Fn(usize) -> bool) {
        self.clear();
        for (u, w) in g.neighbors(v) {
            if include(u) {
                let node = part[u] as usize;
                if self.conn[node] == 0 {
                    self.touched.push(part[u]);
                }
                self.conn[node] += w as i64;
            }
        }
    }

    fn get(&self, node: u16) -> i64 {
        self.conn[node as usize]
    }

    fn clear(&mut self) {
        for &node in &self.touched {
            self.conn[node as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Initial partition of the coarsest graph: vertices in descending weight
/// (ties: ascending id) go to the highest-affinity node with remaining
/// quota; vertices with no placed affinity (or none that fits) fall back to
/// the node with the most remaining capacity (ties: lowest id).
fn initial_partition(g: &Graph, quotas: &[u64]) -> Vec<u16> {
    let n = g.len();
    let nodes = quotas.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| g.vwgt[b].cmp(&g.vwgt[a]).then(a.cmp(&b)));
    let mut part = vec![u16::MAX; n];
    let mut loads = vec![0u64; nodes];
    let mut scratch = ConnScratch::new(nodes);
    for v in order {
        let w = g.vwgt[v];
        scratch.gather(g, &part, v, |u| part[u] != u16::MAX);
        let mut best: Option<(i64, u16)> = None;
        for &node in &scratch.touched {
            if loads[node as usize] + w > quotas[node as usize] {
                continue;
            }
            let conn = scratch.get(node);
            let better = match best {
                None => true,
                Some((bc, bn)) => conn > bc || (conn == bc && node < bn),
            };
            if better {
                best = Some((conn, node));
            }
        }
        let node = match best {
            Some((_, node)) => node,
            None => {
                // Most remaining capacity, lowest id on ties; allow
                // overflow (fixed during uncoarsening) if nothing fits.
                let mut fallback = 0u16;
                let mut most: i64 = i64::MIN;
                for node in 0..nodes {
                    let rem = quotas[node] as i64 - loads[node] as i64;
                    if rem > most {
                        most = rem;
                        fallback = node as u16;
                    }
                }
                fallback
            }
        };
        part[v] = node;
        loads[node as usize] += w;
    }
    part
}

/// Affinity-driven single-vertex moves: each vertex may move to the
/// neighbor node it connects to most, when that strictly improves
/// connectivity and the target has quota room. `O(E)` per pass.
fn refine_moves(g: &Graph, part: &mut [u16], loads: &mut [u64], quotas: &[u64], passes: usize) {
    let mut scratch = ConnScratch::new(quotas.len());
    for _ in 0..passes {
        let mut moved = false;
        for v in 0..g.len() {
            let cur = part[v];
            let w = g.vwgt[v];
            scratch.gather(g, part, v, |u| u != v);
            let here = scratch.get(cur);
            let mut best: Option<(i64, u16)> = None;
            for &node in &scratch.touched {
                if node == cur || loads[node as usize] + w > quotas[node as usize] {
                    continue;
                }
                let conn = scratch.get(node);
                if conn <= here {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bc, bn)) => conn > bc || (conn == bc && node < bn),
                };
                if better {
                    best = Some((conn, node));
                }
            }
            if let Some((_, node)) = best {
                loads[cur as usize] -= w;
                loads[node as usize] += w;
                part[v] = node;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

/// Kernighan-Lin-flavoured neighbor swaps between equal-weight vertices on
/// different nodes (loads are invariant): first positive gain wins, applied
/// immediately, vertices and neighbors in ascending order. `O(Σ deg²)` per
/// pass, bounded by `swap_degree_cap` against hub blowup.
fn refine_swaps(g: &Graph, part: &mut [u16], nodes: usize, passes: usize, degree_cap: usize) {
    let mut conn_v = ConnScratch::new(nodes);
    let mut conn_u = ConnScratch::new(nodes);
    for _ in 0..passes {
        let mut swapped = false;
        for v in 0..g.len() {
            if g.degree(v) > degree_cap {
                continue;
            }
            conn_v.gather(g, part, v, |t| t != v);
            for i in self_range(g, v) {
                let u = g.nbr[i] as usize;
                let w = g.wgt[i];
                if u <= v || part[u] == part[v] || g.vwgt[u] != g.vwgt[v] {
                    continue;
                }
                if g.degree(u) > degree_cap {
                    continue;
                }
                let (pv, pu) = (part[v], part[u]);
                conn_u.gather(g, part, u, |t| t != u);
                let gain = (conn_v.get(pu) - conn_v.get(pv)) + (conn_u.get(pv) - conn_u.get(pu))
                    - 2 * w as i64;
                if gain > 0 {
                    part[v] = pu;
                    part[u] = pv;
                    swapped = true;
                    conn_v.gather(g, part, v, |t| t != v);
                }
            }
        }
        if !swapped {
            break;
        }
    }
}

fn self_range(g: &Graph, v: usize) -> std::ops::Range<usize> {
    g.xadj[v]..g.xadj[v + 1]
}

/// Restores the exact stretch quotas at the finest (unit-weight) level:
/// one ascending sweep moves vertices off over-quota nodes onto the
/// under-quota node they connect to most (ties: lowest id; no connection:
/// lowest under-quota id). Loads of full nodes never drop below quota, so
/// the sweep terminates with every node exactly at quota.
fn rebalance(g: &Graph, part: &mut [u16], loads: &mut [u64], quotas: &[u64]) {
    let nodes = quotas.len();
    let mut scratch = ConnScratch::new(nodes);
    let mut cursor = 0usize; // lowest node that might still be under quota
    for v in 0..g.len() {
        let cur = part[v] as usize;
        if loads[cur] <= quotas[cur] {
            continue;
        }
        scratch.gather(g, part, v, |u| u != v);
        let mut best: Option<(i64, u16)> = None;
        for &node in &scratch.touched {
            if loads[node as usize] >= quotas[node as usize] || node as usize == cur {
                continue;
            }
            let conn = scratch.get(node);
            let better = match best {
                None => true,
                Some((bc, bn)) => conn > bc || (conn == bc && node < bn),
            };
            if better {
                best = Some((conn, node));
            }
        }
        let target = match best {
            Some((_, node)) => node as usize,
            None => {
                while cursor < nodes && loads[cursor] >= quotas[cursor] {
                    cursor += 1;
                }
                debug_assert!(cursor < nodes, "overload implies an under-quota node");
                cursor
            }
        };
        loads[cur] -= 1;
        loads[target] += 1;
        part[v] = target as u16;
    }
}

/// Places `corr.num_threads()` threads on `cluster` through the multilevel
/// pipeline with default tuning. See [`multilevel_place_with`].
///
/// # Panics
///
/// Panics if the store covers a different thread count than the cluster.
pub fn multilevel_place<C: CorrelationStore>(corr: &C, cluster: &ClusterConfig) -> Mapping {
    multilevel_place_with(corr, cluster, &MultilevelConfig::default())
}

/// Places threads on nodes by coarsen → partition → uncoarsen+refine.
///
/// The result always honours the exact per-node populations of
/// [`Mapping::stretch`] (the paper's "constant and equal number of threads
/// on each node"), and is a deterministic pure function of `(corr,
/// cluster, config)` — independent of worker counts, machines and runs.
///
/// # Panics
///
/// Panics if the store covers a different thread count than the cluster.
pub fn multilevel_place_with<C: CorrelationStore>(
    corr: &C,
    cluster: &ClusterConfig,
    config: &MultilevelConfig,
) -> Mapping {
    let n = corr.num_threads();
    assert_eq!(
        n,
        cluster.num_threads(),
        "store and cluster must cover the same threads"
    );
    let nodes = cluster.num_nodes();
    let quotas: Vec<u64> = Mapping::stretch(cluster)
        .node_counts()
        .into_iter()
        .map(|c| c as u64)
        .collect();
    let max_vwgt = quotas.iter().copied().max().unwrap_or(1);
    let target = (config.coarse_per_node * nodes)
        .max(config.coarse_floor)
        .max(nodes);
    let tracing = std::env::var_os("ACORR_ML_TRACE").is_some();
    let t0 = std::time::Instant::now();

    // Coarsen. Intermediate graphs above `refine_size_cap` vertices are
    // dropped as soon as their coarser level exists: refining there costs
    // more (in freshly faulted memory, the bottleneck at 10⁶ threads) than
    // it buys, and the uncoarsening projection only needs the cmaps. The
    // finest graph (index 0) and every kept level stay for refinement.
    let mut graphs: Vec<Option<Graph>> = vec![Some(Graph::from_store(corr))];
    trace(
        tracing,
        &t0,
        &format!(
            "from_store: {n} vertices, {} entries",
            graphs[0].as_ref().expect("kept").nbr.len()
        ),
    );
    let mut cmaps: Vec<Vec<u32>> = Vec::new();
    loop {
        let cur = graphs.last().expect("one level").as_ref().expect("kept");
        if cur.len() <= target {
            break;
        }
        match coarsen(cur, max_vwgt) {
            Some((coarse, cmap)) => {
                trace(
                    tracing,
                    &t0,
                    &format!(
                        "coarsen level {}: {} -> {} vertices, {} entries",
                        cmaps.len(),
                        cmap.len(),
                        coarse.len(),
                        coarse.nbr.len()
                    ),
                );
                cmaps.push(cmap);
                let idx = graphs.len() - 1;
                if idx > 0 && graphs[idx].as_ref().expect("kept").len() > config.refine_size_cap {
                    graphs[idx] = None;
                }
                graphs.push(Some(coarse));
            }
            None => break,
        }
    }

    // Partition the coarsest level, then refine it in place.
    let coarsest = graphs.last().expect("level").as_ref().expect("kept");
    let mut part = initial_partition(coarsest, &quotas);
    let mut loads = node_loads(coarsest, &part, nodes);
    refine_moves(
        coarsest,
        &mut part,
        &mut loads,
        &quotas,
        config.refine_passes,
    );
    refine_swaps(
        coarsest,
        &mut part,
        nodes,
        config.refine_passes,
        config.swap_degree_cap,
    );
    trace(tracing, &t0, "coarsest level partitioned and refined");

    // Uncoarsen: project through each map, refining at every kept level.
    for level in (0..cmaps.len()).rev() {
        let cmap = &cmaps[level];
        let mut fine = vec![0u16; cmap.len()];
        for v in 0..cmap.len() {
            fine[v] = part[cmap[v] as usize];
        }
        part = fine;
        if let Some(g) = &graphs[level] {
            let mut loads = node_loads(g, &part, nodes);
            refine_moves(g, &mut part, &mut loads, &quotas, config.refine_passes);
            trace(tracing, &t0, &format!("level {level}: moves done"));
            // At the finest level a single first-improvement sweep captures
            // nearly all the swap gain; further sweeps cost seconds at 10⁶
            // threads for sub-percent cut movement (and small instances
            // finish in refine_kl below anyway).
            let swap_passes = if level == 0 {
                config.refine_passes.min(1)
            } else {
                config.refine_passes
            };
            if level == 0 {
                rebalance(g, &mut part, &mut loads, &quotas);
                trace(tracing, &t0, "level 0: rebalanced to exact quotas");
            }
            refine_swaps(g, &mut part, nodes, swap_passes, config.swap_degree_cap);
            trace(tracing, &t0, &format!("level {level}: swaps done"));
        } else {
            trace(
                tracing,
                &t0,
                &format!("level {level}: projected (no refine)"),
            );
        }
    }
    if cmaps.is_empty() {
        // Never coarsened: the finest level is the one just refined above —
        // enforce the exact quotas it would otherwise get at level 0.
        let g = graphs[0].as_ref().expect("finest level is always kept");
        let mut loads = node_loads(g, &part, nodes);
        rebalance(g, &mut part, &mut loads, &quotas);
        refine_swaps(
            g,
            &mut part,
            nodes,
            config.refine_passes,
            config.swap_degree_cap,
        );
    }

    let mapping = Mapping::from_assignment(cluster, part.into_iter().map(NodeId).collect())
        .expect("rebalanced partition fills every node to quota");
    if n <= config.kl_threshold {
        // Small instances converge on the paper's own incremental KL kernel
        // (DegreeCache generalized over the store) for heuristic parity.
        refine_kl(corr, mapping)
    } else {
        mapping
    }
}

/// Stage tracing for tuning: set `ACORR_ML_TRACE=1` to print per-stage
/// wall times and level shapes on stderr. Pure observation — never affects
/// the computed mapping.
fn trace(enabled: bool, start: &std::time::Instant, msg: &str) {
    if enabled {
        eprintln!(
            "[multilevel +{:7.0} ms] {msg}",
            start.elapsed().as_secs_f64() * 1e3
        );
    }
}

fn node_loads(g: &Graph, part: &[u16], nodes: usize) -> Vec<u64> {
    let mut loads = vec![0u64; nodes];
    for v in 0..g.len() {
        loads[part[v] as usize] += g.vwgt[v];
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mincost::min_cost;
    use acorr_sim::DetRng;
    use acorr_track::{cut_cost, CorrelationMatrix, SparseCorrelation};

    fn blocks(n: usize, block: usize, w: u64) -> SparseCorrelation {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if a / block == b / block {
                    edges.push((a as u32, b as u32, w));
                }
            }
        }
        SparseCorrelation::from_edges(n, edges)
    }

    fn random_sparse(n: usize, edges: usize, seed: u64) -> SparseCorrelation {
        let mut rng = DetRng::new(seed);
        let mut list = Vec::with_capacity(edges);
        for _ in 0..edges {
            let a = rng.next_below(n as u64) as u32;
            let b = rng.next_below(n as u64) as u32;
            if a != b {
                list.push((a, b, 1 + rng.next_below(16)));
            }
        }
        SparseCorrelation::from_edges(n, list)
    }

    fn quota_balanced(m: &Mapping, cluster: &ClusterConfig) -> bool {
        let mut got = m.node_counts();
        let mut want = Mapping::stretch(cluster).node_counts();
        got.sort_unstable();
        want.sort_unstable();
        got == want
    }

    #[test]
    fn block_structure_reaches_zero_cut() {
        let corr = blocks(64, 8, 5);
        let cluster = ClusterConfig::new(8, 64).unwrap();
        let m = multilevel_place(&corr, &cluster);
        assert_eq!(cut_cost(&corr, &m), 0, "mapping {m}");
        assert!(quota_balanced(&m, &cluster));
    }

    #[test]
    fn scrambled_blocks_are_recovered() {
        // Threads i, i+16, i+32, i+48 share: stretch is terrible, the
        // multilevel pipeline must still find a zero-cut grouping.
        let n = 64;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if a % 16 == b % 16 {
                    edges.push((a as u32, b as u32, 7));
                }
            }
        }
        let corr = SparseCorrelation::from_edges(n, edges);
        let cluster = ClusterConfig::new(16, n).unwrap();
        let m = multilevel_place(&corr, &cluster);
        assert_eq!(cut_cost(&corr, &m), 0);
        assert!(cut_cost(&corr, &Mapping::stretch(&cluster)) > 0);
    }

    #[test]
    fn random_instances_stay_quota_balanced_and_deterministic() {
        for seed in 0..5 {
            let n = 200;
            let corr = random_sparse(n, 900, seed);
            let cluster = ClusterConfig::new(7, n).unwrap();
            let a = multilevel_place(&corr, &cluster);
            let b = multilevel_place(&corr, &cluster);
            assert_eq!(a, b, "seed {seed}: must be deterministic");
            assert!(quota_balanced(&a, &cluster), "seed {seed}");
        }
    }

    #[test]
    fn parity_with_direct_min_cost_at_small_sizes() {
        // ≤ 256 threads: the multilevel path ends in the same refine_kl
        // kernel as min_cost; its cut must stay within 10% (plus a small
        // absolute slack) of the direct heuristic on random instances.
        for (n, nodes, seed) in [(96usize, 4usize, 1u64), (192, 6, 2), (256, 8, 3)] {
            let corr = random_sparse(n, n * 6, seed);
            let cluster = ClusterConfig::new(nodes, n).unwrap();
            let ml = cut_cost(&corr, &multilevel_place(&corr, &cluster));
            let direct = cut_cost(&corr.to_dense(), &min_cost(&corr.to_dense(), &cluster));
            assert!(
                ml <= direct + direct / 10 + 8,
                "n={n}: multilevel {ml} vs direct {direct}"
            );
        }
    }

    #[test]
    fn sparse_and_dense_stores_place_identically() {
        let n = 120;
        let sparse = random_sparse(n, 700, 9);
        let dense: CorrelationMatrix = sparse.to_dense();
        let cluster = ClusterConfig::new(6, n).unwrap();
        assert_eq!(
            multilevel_place(&sparse, &cluster),
            multilevel_place(&dense, &cluster),
            "backends must be interchangeable"
        );
    }

    #[test]
    fn tiny_and_degenerate_instances_work() {
        // threads == nodes (quota 1 each), single node, empty correlation.
        let corr = random_sparse(6, 10, 4);
        let cluster = ClusterConfig::new(6, 6).unwrap();
        let m = multilevel_place(&corr, &cluster);
        assert!(quota_balanced(&m, &cluster));

        let one = ClusterConfig::new(1, 6).unwrap();
        assert_eq!(cut_cost(&corr, &multilevel_place(&corr, &one)), 0);

        let empty = SparseCorrelation::zeros(12);
        let cluster = ClusterConfig::new(3, 12).unwrap();
        let m = multilevel_place(&empty, &cluster);
        assert!(quota_balanced(&m, &cluster));
        assert_eq!(cut_cost(&empty, &m), 0);
    }

    #[test]
    fn ragged_quotas_are_respected() {
        let corr = random_sparse(100, 400, 5);
        let cluster = ClusterConfig::new(7, 100).unwrap();
        let m = multilevel_place(&corr, &cluster);
        assert!(quota_balanced(&m, &cluster));
    }

    #[test]
    fn coarsening_respects_weight_cap_and_shrinks() {
        let corr = blocks(64, 4, 3);
        let g = Graph::from_store(&corr);
        let (coarse, cmap) = coarsen(&g, 8).expect("must shrink");
        assert!(coarse.len() < g.len());
        assert!(coarse.vwgt.iter().all(|&w| w <= 8));
        assert_eq!(cmap.len(), g.len());
        let total: u64 = coarse.vwgt.iter().sum();
        assert_eq!(total, 64, "vertex weight is conserved");
    }

    #[test]
    fn larger_instance_beats_stretch_on_scrambled_structure() {
        // 2048 threads in 32 interleaved communities on 16 nodes.
        let n = 2048;
        let mut edges = Vec::new();
        let mut rng = DetRng::new(11);
        for a in 0..n {
            for _ in 0..6 {
                let step = 32 * (1 + rng.next_below(8) as usize);
                let b = (a + step) % n;
                if a % 32 == b % 32 && a != b {
                    edges.push((a as u32, b as u32, 1 + rng.next_below(8)));
                }
            }
        }
        let corr = SparseCorrelation::from_edges(n, edges);
        let cluster = ClusterConfig::new(16, n).unwrap();
        let ml = cut_cost(&corr, &multilevel_place(&corr, &cluster));
        let stretch = cut_cost(&corr, &Mapping::stretch(&cluster));
        assert!(ml < stretch / 2, "multilevel {ml} vs stretch {stretch}");
    }
}
