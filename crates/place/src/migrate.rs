//! Migration cost model and re-mapping policies.
//!
//! The paper re-maps greedily whenever a better placement appears; the
//! NUMA thread-migration literature (PAPERS.md) adds two refinements the
//! online service needs: a *cost gate* — re-map only when the predicted
//! cut-cost improvement strictly exceeds what the migration itself costs
//! in page movement — and an *interchange* policy that realizes a
//! candidate mapping through a bounded number of profitable pairwise
//! swaps instead of wholesale adoption, keeping per-decision movement
//! small.

use crate::mincost::DegreeCache;
use acorr_sim::Mapping;
use acorr_track::CorrelationStore;
use std::fmt;

/// Predicted price of moving threads, in the same units as cut cost
/// (correlation mass ≈ pages transferred, ordered-pair convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCostModel {
    /// Working-set pages a migrating thread drags to its new node.
    pub pages_per_thread: u64,
    /// Cost per page moved.
    pub cost_per_page: u64,
    /// Flat cost per re-mapping event (barrier, bookkeeping), charged
    /// only when at least one thread moves.
    pub fixed_cost: u64,
}

impl MigrationCostModel {
    /// A model with explicit parameters.
    pub fn new(pages_per_thread: u64, cost_per_page: u64, fixed_cost: u64) -> MigrationCostModel {
        MigrationCostModel {
            pages_per_thread,
            cost_per_page,
            fixed_cost,
        }
    }

    /// The free model: every re-map with any predicted improvement is
    /// accepted (the paper's always-re-map behavior).
    pub fn zero() -> MigrationCostModel {
        MigrationCostModel::new(0, 0, 0)
    }

    /// Cost of moving `pages` pages: `fixed_cost + pages·cost_per_page`
    /// (saturating, monotone in `pages`).
    pub fn page_cost(&self, pages: u64) -> u64 {
        self.fixed_cost
            .saturating_add(pages.saturating_mul(self.cost_per_page))
    }

    /// Cost of migrating `moves` threads; an empty migration is free.
    pub fn migration_cost(&self, moves: usize) -> u64 {
        if moves == 0 {
            return 0;
        }
        self.page_cost((moves as u64).saturating_mul(self.pages_per_thread))
    }

    /// The gate: re-map only when the predicted cut-cost improvement
    /// *strictly* exceeds the migration cost. The zero model therefore
    /// degenerates to "accept any strict improvement".
    pub fn accepts(&self, predicted_gain: u64, moves: usize) -> bool {
        predicted_gain > self.migration_cost(moves)
    }
}

impl Default for MigrationCostModel {
    /// Defaults sized for the serve loop's per-step cut magnitudes:
    /// four pages per thread at unit page cost, no fixed charge.
    fn default() -> MigrationCostModel {
        MigrationCostModel::new(4, 1, 0)
    }
}

/// How an accepted candidate mapping is turned into thread movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigrationPolicy {
    /// The paper's policy: adopt the candidate wholesale.
    Greedy,
    /// NUMA-style interchange: perform up to a bounded number of
    /// profitable pairwise swaps among the threads the candidate wants
    /// moved, keeping the mapping balanced and the movement small.
    Interchange,
}

impl MigrationPolicy {
    /// Every policy, in CLI order.
    pub const ALL: [MigrationPolicy; 2] = [MigrationPolicy::Greedy, MigrationPolicy::Interchange];

    /// The CLI name (`greedy`, `interchange`).
    pub fn name(self) -> &'static str {
        match self {
            MigrationPolicy::Greedy => "greedy",
            MigrationPolicy::Interchange => "interchange",
        }
    }

    /// Parses a CLI name back into a policy.
    pub fn parse(name: &str) -> Option<MigrationPolicy> {
        MigrationPolicy::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for MigrationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Plans the mapping the service would migrate to under `policy`, given
/// the current mapping and a freshly computed `candidate`. Greedy
/// returns the candidate; interchange returns a bounded-swap
/// approximation of it (possibly `current` unchanged when no profitable
/// swap exists).
///
/// # Panics
///
/// Panics if the mappings or store cover different thread counts.
pub fn plan_migration<C: CorrelationStore>(
    policy: MigrationPolicy,
    corr: &C,
    current: &Mapping,
    candidate: &Mapping,
    max_swaps: usize,
) -> Mapping {
    match policy {
        MigrationPolicy::Greedy => candidate.clone(),
        MigrationPolicy::Interchange => interchange_migration(corr, current, candidate, max_swaps),
    }
}

/// The interchange policy: among the threads where `candidate` disagrees
/// with `current`, repeatedly apply the best strictly-positive-gain
/// pairwise swap (the Kernighan-Lin gain, via [`DegreeCache`]) until no
/// profitable swap remains or `max_swaps` swaps were made. Swaps
/// preserve node occupancy, so the result is balanced iff `current` is.
///
/// # Panics
///
/// Panics if the mappings or store cover different thread counts.
pub fn interchange_migration<C: CorrelationStore>(
    corr: &C,
    current: &Mapping,
    candidate: &Mapping,
    max_swaps: usize,
) -> Mapping {
    assert_eq!(
        current.num_threads(),
        candidate.num_threads(),
        "mappings must cover the same threads"
    );
    let mut working = current.clone();
    let disagree: Vec<usize> = (0..current.num_threads())
        .filter(|&t| candidate.node_of(t) != current.node_of(t))
        .collect();
    if disagree.len() < 2 || max_swaps == 0 {
        return working;
    }
    let mut cache = DegreeCache::new(corr, &working);
    for _ in 0..max_swaps {
        let mut best: Option<(usize, usize, i64)> = None;
        for (i, &a) in disagree.iter().enumerate() {
            for &b in &disagree[i + 1..] {
                if working.node_of(a) == working.node_of(b) {
                    continue;
                }
                let gain = cache.gain(corr, &working, a, b);
                if gain > best.map_or(0, |(_, _, g)| g) {
                    best = Some((a, b, gain));
                }
            }
        }
        let Some((a, b, _)) = best else { break };
        let na = working.node_of(a);
        let nb = working.node_of(b);
        cache.apply_swap(corr, a, b, na, nb);
        working.set_node_of(a, nb);
        working.set_node_of(b, na);
    }
    working
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_sim::{ClusterConfig, DetRng};
    use acorr_track::{cut_cost, CorrelationMatrix};

    fn ring(threads: usize, offset: usize, weight: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(threads);
        for i in 0..threads {
            let j = (i + offset) % threads;
            if i != j {
                c.add(i.min(j), i.max(j), weight);
            }
        }
        c
    }

    #[test]
    fn page_cost_is_monotone() {
        let m = MigrationCostModel::new(8, 3, 5);
        let mut last = 0;
        for pages in 0..100 {
            let c = m.page_cost(pages);
            assert!(c >= last);
            last = c;
        }
        assert_eq!(m.page_cost(0), 5);
        assert_eq!(m.page_cost(2), 11);
    }

    #[test]
    fn empty_migration_is_free_even_with_fixed_cost() {
        let m = MigrationCostModel::new(8, 3, 1000);
        assert_eq!(m.migration_cost(0), 0);
        assert_eq!(m.migration_cost(1), 1000 + 24);
    }

    #[test]
    fn gate_is_strict() {
        let m = MigrationCostModel::new(1, 1, 0);
        assert!(!m.accepts(4, 4), "gain equal to cost is rejected");
        assert!(m.accepts(5, 4));
        assert!(!m.accepts(0, 0), "no gain, no move");
    }

    #[test]
    fn zero_model_degenerates_to_always_remap() {
        let m = MigrationCostModel::zero();
        assert!(m.accepts(1, 1000));
        assert!(!m.accepts(0, 1000));
    }

    #[test]
    fn greedy_adopts_the_candidate() {
        let corr = ring(8, 1, 3);
        let cluster = ClusterConfig::new(2, 8).unwrap();
        let current = Mapping::stretch(&cluster);
        let candidate = Mapping::random_balanced(&cluster, &mut DetRng::new(3));
        let planned = plan_migration(MigrationPolicy::Greedy, &corr, &current, &candidate, 4);
        assert_eq!(planned, candidate);
    }

    #[test]
    fn interchange_never_worsens_the_cut_and_stays_balanced() {
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let rng = DetRng::new(9);
        for s in 0..10 {
            let corr = ring(16, 1 + (s as usize % 7), 5);
            let current = Mapping::random_balanced(&cluster, &mut rng.fork(s));
            let candidate = Mapping::random_balanced(&cluster, &mut rng.fork(100 + s));
            let planned = interchange_migration(&corr, &current, &candidate, 6);
            assert!(cut_cost(&corr, &planned) <= cut_cost(&corr, &current));
            assert_eq!(planned.node_counts(), current.node_counts());
            assert!(planned.moves_from(&current) <= 12, "≤ 2 threads per swap");
        }
    }

    #[test]
    fn interchange_with_no_disagreement_is_a_no_op() {
        let corr = ring(8, 1, 3);
        let cluster = ClusterConfig::new(2, 8).unwrap();
        let current = Mapping::stretch(&cluster);
        let planned = interchange_migration(&corr, &current, &current.clone(), 8);
        assert_eq!(planned, current);
    }

    #[test]
    fn interchange_repairs_a_rotated_ring() {
        // Stretch is optimal for an offset-1 ring; hand the policy a
        // deliberately scrambled current mapping and the stretch
        // candidate: swaps must recover real cut improvement.
        let corr = ring(8, 1, 10);
        let cluster = ClusterConfig::new(2, 8).unwrap();
        let candidate = Mapping::stretch(&cluster);
        let current = Mapping::random_balanced(&cluster, &mut DetRng::new(4));
        let planned = interchange_migration(&corr, &current, &candidate, 8);
        assert!(cut_cost(&corr, &planned) < cut_cost(&corr, &current));
    }

    #[test]
    fn policy_names_round_trip() {
        for p in MigrationPolicy::ALL {
            assert_eq!(MigrationPolicy::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(MigrationPolicy::parse("annealed"), None);
    }
}
