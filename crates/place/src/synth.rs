//! Synthetic affinity workloads for scale benchmarking.
//!
//! The paper's applications top out at 64 threads; exercising the
//! multilevel partitioner at its design point (10⁵–10⁶ threads) needs
//! synthetic correlation structure with the statistics real sharing
//! exhibits: strong communities of ~64 threads (the paper's full-size
//! runs) plus a power-law tail of long-range affinities (hub pages).
//!
//! Communities are deliberately *scrambled* — thread `t` belongs to class
//! `t mod (T/64)`, so community members are maximally interleaved in
//! thread order. A contiguous-block layout would make
//! [`Mapping::stretch`](acorr_sim::Mapping::stretch) accidentally optimal
//! and tell us nothing about the partitioner; interleaving forces the
//! multilevel pipeline to actually *discover* the structure, like the
//! randomized-placement columns of the paper's Table 6.
//!
//! [`power_law_affinity`] builds such a [`SparseCorrelation`] as a pure
//! function of `(threads, degree, seed)`. Generation parallelises over
//! threads with [`par_map_range`] — each thread draws from its own forked
//! [`DetRng`] stream, and [`SparseCorrelation::from_edges`] aggregation is
//! order-independent — so the store is bit-identical for every `jobs`
//! count.

use acorr_sim::{par_map_range, DetRng};
use acorr_track::SparseCorrelation;

/// Approximate threads per synthetic sharing community. 64 matches the
/// paper's full-size application runs.
pub const COMMUNITY: usize = 64;

/// The number of interleaved communities for a given thread count: thread
/// `t` belongs to community `t % num_communities(threads)`.
pub fn num_communities(threads: usize) -> usize {
    (threads / COMMUNITY).max(1)
}

/// Builds a synthetic sparse correlation store over `threads` threads in
/// which each thread contributes ~`degree` affinity edges: three quarters
/// land inside its interleaved ~64-thread community (see
/// [`num_communities`]), the rest reach across the machine at
/// power-law-distributed distances (nearby threads are likelier than far
/// ones, but every scale occurs).
///
/// Deterministic: the result is a pure function of `(threads, degree,
/// seed)`; `jobs` only selects how many workers generate it (`0` = all
/// available cores) and never changes a byte of the output.
///
/// # Panics
///
/// Panics if `threads < 2` or `threads > u32::MAX as usize`.
pub fn power_law_affinity(
    threads: usize,
    degree: usize,
    seed: u64,
    jobs: usize,
) -> SparseCorrelation {
    assert!(threads >= 2, "need at least two threads for affinity edges");
    assert!(threads <= u32::MAX as usize, "thread ids must fit in u32");
    let classes = num_communities(threads);
    let scales = 64 - (threads as u64).leading_zeros(); // floor(log2(threads)) + 1
                                                        // Work items are fixed-size chunks of threads (not single threads) to
                                                        // amortize dispatch; each *thread* still draws from its own forked
                                                        // stream, so the output is invariant to both chunking and `jobs`.
    const CHUNK: usize = 4096;
    let chunks = threads.div_ceil(CHUNK);
    let per_chunk: Vec<Vec<(u32, u32, u64)>> = par_map_range(jobs, chunks, |c| {
        let lo = c * CHUNK;
        let hi = (lo + CHUNK).min(threads);
        let mut edges = Vec::with_capacity((hi - lo) * degree);
        for t in lo..hi {
            let mut rng = DetRng::new(seed).fork(t as u64);
            let class = t % classes;
            // Members of `class` are class, class+C, class+2C, ...
            let members = (threads - 1 - class) / classes + 1;
            for _ in 0..degree {
                let partner = if rng.next_below(4) < 3 && members > 1 {
                    // Local: uniform over the (interleaved) community.
                    class + rng.next_below(members as u64) as usize * classes
                } else {
                    // Long range: offset magnitude uniform over scales, so
                    // P(distance ≈ 2^k) is flat in k — a power law in
                    // distance.
                    let k = rng.next_below(scales as u64) as u32;
                    let span = 1u64 << k;
                    let offset = (span + rng.next_below(span)) % threads as u64;
                    (t + offset as usize) % threads
                };
                if partner != t {
                    edges.push((t as u32, partner as u32, 1 + rng.next_below(16)));
                }
            }
        }
        edges
    });
    // Concatenate into one exactly-sized buffer: `from_edges` collects its
    // input, and handing it a pre-sized `Vec` lets that collect reuse the
    // allocation instead of growth-reallocating ~100 MB at the 10⁶ scale.
    let mut flat = Vec::with_capacity(threads * degree);
    for chunk in per_chunk {
        flat.extend_from_slice(&chunk);
    }
    SparseCorrelation::from_edges(threads, flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_track::CorrelationStore;

    #[test]
    fn jobs_count_never_changes_the_store() {
        let base = power_law_affinity(500, 8, 42, 1);
        for jobs in [2, 4, 8] {
            assert_eq!(
                base,
                power_law_affinity(500, 8, 42, jobs),
                "jobs={jobs} must be bit-identical to sequential"
            );
        }
    }

    #[test]
    fn seed_and_shape_change_the_store() {
        let a = power_law_affinity(300, 6, 1, 1);
        assert_ne!(a, power_law_affinity(300, 6, 2, 1));
        assert_ne!(a, power_law_affinity(300, 7, 1, 1));
    }

    #[test]
    fn structure_is_sparse_and_community_heavy() {
        let n = 4096;
        let corr = power_law_affinity(n, 8, 7, 0);
        let edges = corr.edge_count();
        assert!(edges > 0 && edges < n * 8, "~degree edges per thread");
        // Count mass inside vs across communities: local draws dominate.
        let classes = num_communities(n);
        let (mut local, mut remote) = (0u64, 0u64);
        corr.for_each_edge(|a, b, v| {
            if a % classes == b % classes {
                local += v;
            } else {
                remote += v;
            }
        });
        assert!(
            local > remote,
            "local mass {local} should exceed remote {remote}"
        );
        assert!(remote > 0, "long-range tail must exist");
    }

    #[test]
    fn tiny_thread_counts_work() {
        let corr = power_law_affinity(2, 4, 3, 1);
        assert_eq!(corr.num_threads(), 2);
        // Below one full community every thread shares one class.
        assert_eq!(num_communities(63), 1);
        assert_eq!(num_communities(64), 1);
        assert_eq!(num_communities(128), 2);
    }
}
