//! Load-aware placement for threads of unequal work.
//!
//! §5 of the paper assumes equal-work threads ("Load balance can only be
//! maintained, however, if the number of exported threads matches the
//! number imported² — ² Assuming that threads have equal work") and §5.1
//! notes the general problem "is complicated by the fact that we must also
//! address load balancing". This module takes that step: threads carry
//! weights (e.g. measured compute time), node capacity is the mean load
//! times a tolerance, and cut cost is minimized subject to staying within
//! capacity.
//!
//! The pipeline mirrors [`min_cost`](crate::min_cost): greedy
//! affinity-seeding under capacity, then Kernighan-Lin-style swaps *and
//! single-thread moves* that only apply when both nodes stay within
//! capacity.

use acorr_sim::{ClusterConfig, Mapping, NodeId};
use acorr_track::{cut_cost, CorrelationMatrix};

/// Per-node total weight of a mapping.
pub fn node_loads(mapping: &Mapping, weights: &[u64]) -> Vec<u64> {
    let mut loads = vec![0u64; mapping.num_nodes()];
    for (t, &w) in weights.iter().enumerate() {
        loads[mapping.node_of(t).idx()] += w;
    }
    loads
}

/// The load imbalance of a mapping: `max node load / mean node load`.
/// 1.0 is perfect balance.
pub fn imbalance(mapping: &Mapping, weights: &[u64]) -> f64 {
    let loads = node_loads(mapping, weights);
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    loads.iter().copied().max().unwrap_or(0) as f64 / mean
}

/// Computes a placement minimizing cut cost subject to every node's total
/// weight staying within `tolerance` times the mean load (e.g. 1.1 allows
/// 10% overload).
///
/// # Panics
///
/// Panics if `weights` does not cover the cluster's threads, if all weights
/// are zero, or if `tolerance < 1.0`.
pub fn min_cost_weighted(
    corr: &CorrelationMatrix,
    cluster: &ClusterConfig,
    weights: &[u64],
    tolerance: f64,
) -> Mapping {
    assert_eq!(
        corr.num_threads(),
        cluster.num_threads(),
        "matrix and cluster must cover the same threads"
    );
    assert_eq!(
        weights.len(),
        cluster.num_threads(),
        "weights must cover every thread"
    );
    assert!(tolerance >= 1.0, "tolerance must be at least 1.0");
    let total: u64 = weights.iter().sum();
    assert!(total > 0, "at least one thread must have weight");
    let nodes = cluster.num_nodes();
    // Feasibility floor: some node must hold at least ceil(total/nodes).
    let mean = total as f64 / nodes as f64;
    let capacity = ((mean * tolerance).floor() as u64).max(total.div_ceil(nodes as u64));

    // Greedy seeding: place threads in descending weight order (classic
    // first-fit-decreasing for balance), choosing among feasible nodes the
    // one with the highest affinity to the thread.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| weights[b].cmp(&weights[a]).then(a.cmp(&b)));
    let mut assignment: Vec<Option<NodeId>> = vec![None; weights.len()];
    let mut loads = vec![0u64; nodes];
    for &t in &order {
        let affinity_to = |node: usize| -> u64 {
            assignment
                .iter()
                .enumerate()
                .filter(|(_, a)| **a == Some(NodeId(node as u16)))
                .map(|(other, _)| corr.get(t, other))
                .sum()
        };
        // Feasible nodes first; fall back to the least-loaded node if the
        // capacity is tight (keeps the function total).
        let candidate = (0..nodes)
            .filter(|&n| loads[n] + weights[t] <= capacity)
            .max_by_key(|&n| (affinity_to(n), std::cmp::Reverse(loads[n])))
            .or_else(|| (0..nodes).min_by_key(|&n| loads[n]));
        let node = candidate.expect("at least one node");
        assignment[t] = Some(NodeId(node as u16));
        loads[node] += weights[t];
    }
    // Keep every node non-empty (Mapping invariant): pull the lightest
    // thread from the fullest multi-thread node onto each empty one.
    for node in 0..nodes {
        if !assignment.contains(&Some(NodeId(node as u16))) {
            let donor = assignment
                .iter()
                .enumerate()
                .filter(|(_, a)| {
                    let host = a.expect("all assigned");
                    assignment.iter().filter(|x| **x == Some(host)).count() > 1
                })
                .min_by_key(|(t, _)| weights[*t])
                .map(|(t, _)| t)
                .expect("some node has two threads");
            let old = assignment[donor].expect("assigned");
            loads[old.idx()] -= weights[donor];
            assignment[donor] = Some(NodeId(node as u16));
            loads[node] += weights[donor];
        }
    }
    let seeded = Mapping::from_assignment(
        cluster,
        assignment
            .into_iter()
            .map(|a| a.expect("assigned"))
            .collect(),
    )
    .expect("seeded mapping is valid");
    refine_weighted(corr, seeded, weights, capacity)
}

/// Capacity-respecting refinement: best-improvement swaps and single moves
/// until no cut-reducing, feasible change remains.
fn refine_weighted(
    corr: &CorrelationMatrix,
    mut mapping: Mapping,
    weights: &[u64],
    capacity: u64,
) -> Mapping {
    let n = corr.num_threads();
    let mut loads = node_loads(&mapping, weights);
    loop {
        let current_cut = cut_cost(corr, &mapping) as i64;
        let mut best: Option<(Mapping, Vec<u64>, i64)> = None;
        // Swaps.
        for a in 0..n {
            for b in (a + 1)..n {
                let (na, nb) = (mapping.node_of(a), mapping.node_of(b));
                if na == nb {
                    continue;
                }
                let la = loads[na.idx()] - weights[a] + weights[b];
                let lb = loads[nb.idx()] - weights[b] + weights[a];
                if la > capacity || lb > capacity {
                    continue;
                }
                let mut cand = mapping.clone();
                cand.set_node_of(a, nb);
                cand.set_node_of(b, na);
                let gain = current_cut - cut_cost(corr, &cand) as i64;
                if gain > best.as_ref().map_or(0, |(.., g)| *g) {
                    let mut l = loads.clone();
                    l[na.idx()] = la;
                    l[nb.idx()] = lb;
                    best = Some((cand, l, gain));
                }
            }
        }
        // Single moves (only weighted placement can use these — they change
        // node populations but stay within capacity).
        #[allow(clippy::needless_range_loop)] // t also indexes the mapping
        for t in 0..n {
            let from = mapping.node_of(t);
            if mapping.threads_on(from).count() <= 1 {
                continue; // never empty a node
            }
            for node in 0..mapping.num_nodes() {
                let to = NodeId(node as u16);
                if to == from || loads[node] + weights[t] > capacity {
                    continue;
                }
                let mut cand = mapping.clone();
                cand.set_node_of(t, to);
                let gain = current_cut - cut_cost(corr, &cand) as i64;
                if gain > best.as_ref().map_or(0, |(.., g)| *g) {
                    let mut l = loads.clone();
                    l[from.idx()] -= weights[t];
                    l[node] += weights[t];
                    best = Some((cand, l, gain));
                }
            }
        }
        match best {
            Some((next, l, _)) => {
                mapping = next;
                loads = l;
            }
            None => return mapping,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, w: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for i in 0..n - 1 {
            c.set(i, i + 1, w);
        }
        c
    }

    #[test]
    fn equal_weights_reduce_to_balanced_min_cost() {
        let corr = chain(12, 5);
        let cluster = ClusterConfig::new(3, 12).unwrap();
        let weights = vec![1u64; 12];
        let m = min_cost_weighted(&corr, &cluster, &weights, 1.01);
        assert!(m.is_balanced(), "{m}");
        // A contiguous split is optimal for a chain: cut 2 edges x2 orders.
        assert_eq!(cut_cost(&corr, &m), 2 * 2 * 5);
        assert!((imbalance(&m, &weights) - 1.0).abs() < 0.01);
    }

    #[test]
    fn heavy_threads_spread_across_nodes() {
        // Two heavy threads (weight 10) and six light (weight 1) on two
        // nodes: the heavies must not share a node, whatever the affinity.
        let mut corr = CorrelationMatrix::zeros(8);
        corr.set(0, 1, 100); // the heavies share a lot
        let cluster = ClusterConfig::new(2, 8).unwrap();
        let weights = vec![10, 10, 1, 1, 1, 1, 1, 1];
        let m = min_cost_weighted(&corr, &cluster, &weights, 1.2);
        assert_ne!(m.node_of(0), m.node_of(1), "{m}");
        assert!(imbalance(&m, &weights) <= 1.2 + 1e-9);
    }

    #[test]
    fn affinity_respected_within_capacity() {
        // Two 4-thread cliques, mixed weights that still fit per node: the
        // cliques must stay whole.
        let mut corr = CorrelationMatrix::zeros(8);
        for a in 0..4 {
            for b in (a + 1)..4 {
                corr.set(a, b, 9);
                corr.set(a + 4, b + 4, 9);
            }
        }
        let cluster = ClusterConfig::new(2, 8).unwrap();
        let weights = vec![3, 1, 1, 1, 3, 1, 1, 1];
        let m = min_cost_weighted(&corr, &cluster, &weights, 1.1);
        assert_eq!(cut_cost(&corr, &m), 0, "{m}");
    }

    #[test]
    fn unequal_populations_allowed_when_weights_demand() {
        // One thread outweighs the other five combined: capacity forces it
        // to sit alone while the rest pack the other node.
        let corr = chain(6, 2);
        let cluster = ClusterConfig::new(2, 6).unwrap();
        let weights = vec![20, 1, 1, 1, 1, 1];
        let m = min_cost_weighted(&corr, &cluster, &weights, 1.05);
        let counts = m.node_counts();
        assert!(counts.contains(&1) && counts.contains(&5), "{m}");
        assert_eq!(m.threads_on(m.node_of(0)).count(), 1);
    }

    #[test]
    fn never_leaves_a_node_empty() {
        let corr = CorrelationMatrix::zeros(4);
        let cluster = ClusterConfig::new(4, 4).unwrap();
        // Wildly skewed weights would pack everything on one node without
        // the non-empty repair.
        let m = min_cost_weighted(&corr, &cluster, &[100, 1, 1, 1], 4.0);
        assert!(m.node_counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn loads_and_imbalance_math() {
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let m = Mapping::stretch(&cluster);
        let weights = [4u64, 2, 1, 1];
        assert_eq!(node_loads(&m, &weights), vec![6, 2]);
        assert!((imbalance(&m, &weights) - 1.5).abs() < 1e-12);
        assert_eq!(imbalance(&m, &[0, 0, 0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn sub_unit_tolerance_rejected() {
        let corr = CorrelationMatrix::zeros(4);
        let cluster = ClusterConfig::new(2, 4).unwrap();
        min_cost_weighted(&corr, &cluster, &[1, 1, 1, 1], 0.9);
    }
}
