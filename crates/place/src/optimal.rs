//! Exact optimal placement by branch and bound.
//!
//! The paper used integer-programming software to identify optimal mappings
//! and reported that its clustering heuristics came within 1% of them. This
//! module provides the exact reference for tractable instance sizes: a
//! depth-first branch and bound over balanced assignments with node-symmetry
//! breaking. Complexity is exponential — intended for tests and ablations
//! (≈16 threads / 4 nodes and below), not production placement.

use acorr_sim::{ClusterConfig, Mapping, NodeId};
use acorr_track::{cut_cost, CorrelationMatrix};

/// Finds a balanced mapping with the minimum cut cost, exactly.
///
/// Node populations match the stretch heuristic's quotas (equal up to
/// rounding). Among equal-cost optima, the lexicographically smallest
/// assignment (by thread, then node index) is returned, which makes results
/// deterministic and test-friendly.
///
/// # Panics
///
/// Panics if the matrix covers a different thread count than the cluster.
pub fn optimal(corr: &CorrelationMatrix, cluster: &ClusterConfig) -> Mapping {
    assert_eq!(
        corr.num_threads(),
        cluster.num_threads(),
        "matrix and cluster must cover the same threads"
    );
    let n = corr.num_threads();
    let quotas = Mapping::stretch(cluster).node_counts();
    let nodes = cluster.num_nodes();

    let mut assignment: Vec<u16> = vec![0; n];
    let mut counts = vec![0usize; nodes];
    let mut best_cut = u64::MAX;
    let mut best: Vec<u16> = Vec::new();

    // Unordered running cut (we double at the end to match cut_cost).
    #[allow(clippy::too_many_arguments)] // explicit DFS state beats a context struct here
    fn dfs(
        t: usize,
        running_cut: u64,
        corr: &CorrelationMatrix,
        quotas: &[usize],
        assignment: &mut Vec<u16>,
        counts: &mut Vec<usize>,
        best_cut: &mut u64,
        best: &mut Vec<u16>,
    ) {
        let n = corr.num_threads();
        if running_cut >= *best_cut {
            return; // bound
        }
        if t == n {
            *best_cut = running_cut;
            *best = assignment.clone();
            return;
        }
        // Symmetry breaking: thread t may open at most one new node.
        let max_open = counts.iter().position(|&c| c == 0).unwrap_or(counts.len());
        for node in 0..=max_open.min(counts.len() - 1) {
            if counts[node] >= quotas[node] {
                continue;
            }
            let mut added = 0u64;
            for (other, &a) in assignment.iter().enumerate().take(t) {
                if a as usize != node {
                    added += corr.get(t, other);
                }
            }
            assignment[t] = node as u16;
            counts[node] += 1;
            dfs(
                t + 1,
                running_cut + added,
                corr,
                quotas,
                assignment,
                counts,
                best_cut,
                best,
            );
            counts[node] -= 1;
        }
    }

    dfs(
        0,
        0,
        corr,
        &quotas,
        &mut assignment,
        &mut counts,
        &mut best_cut,
        &mut best,
    );

    let mapping = Mapping::from_assignment(cluster, best.into_iter().map(NodeId).collect())
        .expect("balanced exhaustive assignment is valid");
    debug_assert_eq!(cut_cost(corr, &mapping), best_cut * 2);
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mincost::min_cost;
    use acorr_sim::DetRng;

    fn random_matrix(n: usize, seed: u64, max: u64) -> CorrelationMatrix {
        let mut rng = DetRng::new(seed);
        let mut c = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in (a + 1)..n {
                c.set(a, b, rng.next_below(max));
            }
        }
        c
    }

    #[test]
    fn trivial_instances() {
        // Two threads, two nodes: the only balanced mapping cuts the pair.
        let mut c = CorrelationMatrix::zeros(2);
        c.set(0, 1, 5);
        let cluster = ClusterConfig::new(2, 2).unwrap();
        let m = optimal(&c, &cluster);
        assert_eq!(cut_cost(&c, &m), 10);
    }

    #[test]
    fn finds_zero_cut_when_one_exists() {
        // Interleaved blocks: threads with equal parity share.
        let n = 8;
        let mut c = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if a % 2 == b % 2 {
                    c.set(a, b, 3);
                }
            }
        }
        let cluster = ClusterConfig::new(2, n).unwrap();
        let m = optimal(&c, &cluster);
        assert_eq!(cut_cost(&c, &m), 0);
    }

    #[test]
    fn beats_or_matches_every_balanced_random_mapping() {
        let c = random_matrix(10, 11, 15);
        let cluster = ClusterConfig::new(2, 10).unwrap();
        let opt = cut_cost(&c, &optimal(&c, &cluster));
        let rng = DetRng::new(5);
        for s in 0..200 {
            let m = Mapping::random_balanced(&cluster, &mut rng.fork(s));
            assert!(opt <= cut_cost(&c, &m), "seed {s}");
        }
    }

    #[test]
    fn min_cost_is_within_one_percent_of_optimal() {
        // The paper's §5.1 claim, checked on a spread of random instances.
        for seed in 0..8 {
            let c = random_matrix(12, seed, 25);
            let cluster = ClusterConfig::new(3, 12).unwrap();
            let opt = cut_cost(&c, &optimal(&c, &cluster)) as f64;
            let heur = cut_cost(&c, &min_cost(&c, &cluster)) as f64;
            assert!(
                heur <= opt * 1.01 + 1e-9,
                "seed {seed}: min-cost {heur} vs optimal {opt}"
            );
        }
    }

    #[test]
    fn min_cost_matches_optimal_on_structured_sharing() {
        // Nearest-neighbor and block patterns (the paper's app shapes).
        let mut chain = CorrelationMatrix::zeros(12);
        for i in 0..11 {
            chain.set(i, i + 1, 4);
        }
        let cluster = ClusterConfig::new(4, 12).unwrap();
        assert_eq!(
            cut_cost(&chain, &min_cost(&chain, &cluster)),
            cut_cost(&chain, &optimal(&chain, &cluster))
        );
    }

    #[test]
    fn respects_ragged_quotas() {
        let c = random_matrix(7, 2, 9);
        let cluster = ClusterConfig::new(2, 7).unwrap();
        let m = optimal(&c, &cluster);
        let mut counts = m.node_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![3, 4]);
    }
}
