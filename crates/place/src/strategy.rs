//! Strategy dispatch.

use crate::{anneal, jarvis_patrick, min_cost, optimal, AnnealConfig};
use acorr_sim::{ClusterConfig, DetRng, Mapping};
use acorr_track::CorrelationMatrix;
use std::fmt;

/// The placement policies compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Contiguous equal blocks in thread order (§5.1's *stretch*).
    Stretch,
    /// Uniformly random balanced assignment (Table 6's "ran").
    RandomBalanced,
    /// Random, possibly unbalanced, at least two threads per node (the
    /// Table 2 configuration generator).
    RandomMinTwo,
    /// Greedy clustering + Kernighan-Lin refinement (§5.1's *min-cost*).
    MinCost,
    /// Jarvis-Patrick shared-near-neighbor clustering + refinement (the
    /// cluster-analysis method the paper cites).
    JarvisPatrick,
    /// Simulated annealing + refinement.
    Anneal,
    /// Exact branch-and-bound optimum (tractable sizes only).
    Optimal,
}

impl Strategy {
    /// All strategies, in report order.
    pub const ALL: [Strategy; 7] = [
        Strategy::Stretch,
        Strategy::RandomBalanced,
        Strategy::RandomMinTwo,
        Strategy::MinCost,
        Strategy::JarvisPatrick,
        Strategy::Anneal,
        Strategy::Optimal,
    ];
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Stretch => write!(f, "stretch"),
            Strategy::RandomBalanced => write!(f, "random"),
            Strategy::RandomMinTwo => write!(f, "random-min2"),
            Strategy::MinCost => write!(f, "min-cost"),
            Strategy::JarvisPatrick => write!(f, "jarvis-patrick"),
            Strategy::Anneal => write!(f, "anneal"),
            Strategy::Optimal => write!(f, "optimal"),
        }
    }
}

/// Produces a mapping with the chosen strategy. The correlation matrix is
/// only consulted by `MinCost` and `Optimal`; the RNG only by the random
/// strategies.
///
/// # Panics
///
/// Panics if the matrix covers a different thread count than the cluster
/// (for the strategies that use it), or if `RandomMinTwo` is asked for a
/// cluster with fewer than two threads per node.
pub fn place(
    strategy: Strategy,
    corr: &CorrelationMatrix,
    cluster: &ClusterConfig,
    rng: &mut DetRng,
) -> Mapping {
    match strategy {
        Strategy::Stretch => Mapping::stretch(cluster),
        Strategy::RandomBalanced => Mapping::random_balanced(cluster, rng),
        Strategy::RandomMinTwo => Mapping::random_min_two(cluster, rng),
        Strategy::MinCost => min_cost(corr, cluster),
        Strategy::JarvisPatrick => jarvis_patrick(corr, cluster),
        Strategy::Anneal => anneal(corr, cluster, &AnnealConfig::default(), rng),
        Strategy::Optimal => optimal(corr, cluster),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_track::cut_cost;

    #[test]
    fn dispatch_produces_valid_mappings() {
        let cluster = ClusterConfig::new(2, 8).unwrap();
        let mut corr = CorrelationMatrix::zeros(8);
        corr.set(0, 1, 3);
        let mut rng = DetRng::new(1);
        for s in Strategy::ALL {
            let m = place(s, &corr, &cluster, &mut rng);
            assert_eq!(m.num_threads(), 8, "{s}");
            assert!(m.node_counts().iter().all(|&c| c > 0), "{s}");
        }
    }

    #[test]
    fn min_cost_never_loses_to_stretch() {
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let mut corr = CorrelationMatrix::zeros(16);
        for i in 0..15 {
            corr.set(i, i + 1, 2);
        }
        let mut rng = DetRng::new(2);
        let mc = place(Strategy::MinCost, &corr, &cluster, &mut rng);
        let st = place(Strategy::Stretch, &corr, &cluster, &mut rng);
        assert!(cut_cost(&corr, &mc) <= cut_cost(&corr, &st));
    }

    #[test]
    fn display_names() {
        assert_eq!(Strategy::MinCost.to_string(), "min-cost");
        assert_eq!(Strategy::Stretch.to_string(), "stretch");
        assert_eq!(Strategy::ALL.len(), 7);
    }
}
