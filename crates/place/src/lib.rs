//! # acorr-place — thread placement
//!
//! §5.1 of the paper: finding the optimal mapping of threads to nodes is a
//! form of the NP-hard multi-way cut problem, so the paper compares:
//!
//! * **stretch** — keep the program's thread order, slice it into equal
//!   contiguous blocks ([`Mapping::stretch`](acorr_sim::Mapping::stretch));
//!   exactly right for nearest-neighbor sharing, neutral for all-to-all.
//! * **min-cost** — cluster-analysis heuristics. [`min_cost`] seeds clusters
//!   greedily from the strongest affinities and refines with
//!   Kernighan-Lin-style pairwise swaps; the paper found such heuristics
//!   land within 1% of optimal on its applications (a claim the test suite
//!   checks against [`optimal()`](optimal()) on tractable instances).
//! * **random** — the baseline of Tables 2 and 6
//!   ([`Mapping::random_balanced`](acorr_sim::Mapping::random_balanced),
//!   [`Mapping::random_min_two`](acorr_sim::Mapping::random_min_two)).
//! * **optimal** — the paper used integer programming; [`optimal()`](optimal()) is an
//!   exact branch-and-bound usable on reduced instances.
//! * **multilevel** — [`multilevel_place`]: heavy-edge-matching coarsening,
//!   affinity-greedy coarse partition and refined uncoarsening over any
//!   [`CorrelationStore`](acorr_track::CorrelationStore); the `O(T + E)`
//!   path that carries placement to the ROADMAP's 10⁶-thread scale
//!   (synthetic instances from [`synth::power_law_affinity`]).
//!
//! ```
//! use acorr_place::{min_cost, Strategy};
//! use acorr_sim::ClusterConfig;
//! use acorr_track::CorrelationMatrix;
//!
//! // A 4-thread nearest-neighbor chain on 2 nodes: min-cost recovers the
//! // contiguous split.
//! let mut corr = CorrelationMatrix::zeros(4);
//! corr.set(0, 1, 10);
//! corr.set(1, 2, 1);
//! corr.set(2, 3, 10);
//! let cluster = ClusterConfig::new(2, 4)?;
//! let m = min_cost(&corr, &cluster);
//! assert_eq!(m.node_of(0), m.node_of(1));
//! assert_eq!(m.node_of(2), m.node_of(3));
//! # Ok::<(), acorr_sim::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod jarvis_patrick;
pub mod migrate;
pub mod mincost;
pub mod multilevel;
pub mod optimal;
pub mod strategy;
pub mod synth;
pub mod weighted;

pub use anneal::{anneal, AnnealConfig};
pub use jarvis_patrick::jarvis_patrick;
pub use migrate::{interchange_migration, plan_migration, MigrationCostModel, MigrationPolicy};
pub use mincost::{min_cost, refine_kl, refine_kl_reference, DegreeCache};
pub use multilevel::{multilevel_place, multilevel_place_with, MultilevelConfig};
pub use optimal::optimal;
pub use strategy::{place, Strategy};
pub use synth::power_law_affinity;
pub use weighted::{imbalance, min_cost_weighted, node_loads};
