//! Simulated-annealing placement.
//!
//! A third member of the paper's "several heuristics" family: start from
//! the stretch mapping, propose random balanced swaps, accept improvements
//! always and regressions with a temperature-controlled probability. Slower
//! than the clustering heuristics, occasionally better on irregular
//! matrices; mostly useful as an independent check that min-cost is not
//! stuck in a poor local optimum.

use crate::mincost::{refine_kl, DegreeCache};
use acorr_sim::{ClusterConfig, DetRng, Mapping};
use acorr_track::{cut_cost, CorrelationMatrix};

/// Annealing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Swap proposals evaluated.
    pub steps: usize,
    /// Starting temperature as a fraction of the initial cut cost.
    pub start_temp: f64,
    /// Multiplicative cooling per step.
    pub cooling: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            steps: 4000,
            start_temp: 0.05,
            cooling: 0.999,
        }
    }
}

/// Simulated-annealing placement, finished with one Kernighan-Lin pass.
///
/// # Panics
///
/// Panics if the matrix covers a different thread count than the cluster.
pub fn anneal(
    corr: &CorrelationMatrix,
    cluster: &ClusterConfig,
    config: &AnnealConfig,
    rng: &mut DetRng,
) -> Mapping {
    assert_eq!(
        corr.num_threads(),
        cluster.num_threads(),
        "matrix and cluster must cover the same threads"
    );
    let n = corr.num_threads();
    let mut current = Mapping::stretch(cluster);
    // The same D-value cache the KL kernel uses scores each proposal in
    // O(1) (the ordered cut delta of a swap is exactly -2 * gain) instead
    // of re-walking the whole matrix per step; an accepted swap updates the
    // cache in O(n). Deltas and cuts are small exact integers, so the
    // acceptance test — including the RNG draw order — is bit-identical to
    // the recompute-the-cut formulation this replaces.
    let mut cache = DegreeCache::new(corr, &current);
    let mut current_cut = cut_cost(corr, &current) as i64;
    let mut best = current.clone();
    let mut best_cut = current_cut;
    let mut temp = (current_cut as f64 * config.start_temp).max(1.0);
    for _ in 0..config.steps {
        let a = rng.index(n);
        let b = rng.index(n);
        if a == b || current.node_of(a) == current.node_of(b) {
            temp *= config.cooling;
            continue;
        }
        let (na, nb) = (current.node_of(a), current.node_of(b));
        let delta = -2 * cache.gain(corr, &current, a, b);
        let accept = delta <= 0 || rng.next_f64() < (-(delta as f64) / temp).exp();
        if accept {
            cache.apply_swap(corr, a, b, na, nb);
            current.set_node_of(a, nb);
            current.set_node_of(b, na);
            current_cut += delta;
            if current_cut < best_cut {
                best = current.clone();
                best_cut = current_cut;
            }
        }
        temp *= config.cooling;
    }
    refine_kl(corr, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{min_cost, optimal};

    fn scrambled_blocks(n: usize, b: usize, w: u64) -> CorrelationMatrix {
        // Threads with equal index mod (n/b) share.
        let groups = n / b;
        let mut c = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for d in (a + 1)..n {
                if a % groups == d % groups {
                    c.set(a, d, w);
                }
            }
        }
        c
    }

    #[test]
    fn finds_zero_cut_on_scrambled_blocks() {
        let corr = scrambled_blocks(16, 4, 6);
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let mut rng = DetRng::new(5);
        let m = anneal(&corr, &cluster, &AnnealConfig::default(), &mut rng);
        assert_eq!(cut_cost(&corr, &m), 0, "{m}");
        assert!(m.is_balanced());
    }

    #[test]
    fn never_worse_than_stretch() {
        let rng = DetRng::new(9);
        for seed in 0..5 {
            let n = 12;
            let mut corr = CorrelationMatrix::zeros(n);
            let mut r = rng.fork(seed);
            for a in 0..n {
                for b in (a + 1)..n {
                    corr.set(a, b, r.next_below(10));
                }
            }
            let cluster = ClusterConfig::new(3, n).unwrap();
            let annealed = anneal(&corr, &cluster, &AnnealConfig::default(), &mut r);
            let stretch = Mapping::stretch(&cluster);
            assert!(cut_cost(&corr, &annealed) <= cut_cost(&corr, &stretch));
        }
    }

    #[test]
    fn close_to_optimal_on_small_instances() {
        let rng = DetRng::new(21);
        for seed in 0..4 {
            let n = 10;
            let mut corr = CorrelationMatrix::zeros(n);
            let mut r = rng.fork(seed);
            for a in 0..n {
                for b in (a + 1)..n {
                    corr.set(a, b, r.next_below(15));
                }
            }
            let cluster = ClusterConfig::new(2, n).unwrap();
            let ann = cut_cost(
                &corr,
                &anneal(&corr, &cluster, &AnnealConfig::default(), &mut r),
            );
            let opt = cut_cost(&corr, &optimal(&corr, &cluster));
            assert!(
                ann as f64 <= opt as f64 * 1.05 + 1e-9,
                "seed {seed}: annealed {ann} vs optimal {opt}"
            );
        }
    }

    #[test]
    fn agrees_with_min_cost_on_structure() {
        let corr = scrambled_blocks(16, 4, 6);
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let mut rng = DetRng::new(2);
        let ann = cut_cost(
            &corr,
            &anneal(&corr, &cluster, &AnnealConfig::default(), &mut rng),
        );
        let mc = cut_cost(&corr, &min_cost(&corr, &cluster));
        assert_eq!(ann, mc);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let corr = scrambled_blocks(16, 4, 3);
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let run = |seed| {
            let mut rng = DetRng::new(seed);
            anneal(&corr, &cluster, &AnnealConfig::default(), &mut rng)
        };
        assert_eq!(run(1), run(1));
    }
}
