//! Property tests for the simulation substrate: mapping constructors and
//! the regression fit.

// Property tests require the external `proptest` crate, which the
// offline default build cannot fetch; see the crate Cargo.toml.
#![cfg(feature = "proptest")]

use acorr_sim::{linear_fit, ClusterConfig, DetRng, Mapping};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stretch is always balanced and contiguous for any cluster shape.
    #[test]
    fn stretch_is_balanced_and_contiguous(
        nodes in 1usize..12,
        extra in 0usize..50,
    ) {
        let threads = nodes + extra;
        let cluster = ClusterConfig::new(nodes, threads).expect("valid");
        let m = Mapping::stretch(&cluster);
        prop_assert!(m.is_balanced(), "{m}");
        // Contiguity: node indices are non-decreasing over thread order.
        for t in 1..threads {
            prop_assert!(m.node_of(t - 1).idx() <= m.node_of(t).idx());
        }
        // Every node is populated.
        prop_assert!(m.node_counts().iter().all(|&c| c > 0));
    }

    /// random_min_two honors the ≥2 floor for every satisfiable shape and
    /// covers exactly the requested thread count.
    #[test]
    fn random_min_two_honors_floor(
        nodes in 1usize..8,
        extra in 0usize..40,
        seed in 0u64..1000,
    ) {
        let threads = 2 * nodes + extra;
        let cluster = ClusterConfig::new(nodes, threads).expect("valid");
        let mut rng = DetRng::new(seed);
        let m = Mapping::random_min_two(&cluster, &mut rng);
        prop_assert!(m.node_counts().iter().all(|&c| c >= 2));
        prop_assert_eq!(m.node_counts().iter().sum::<usize>(), threads);
    }

    /// Permutation preserves multiset of node counts and is a bijection on
    /// threads.
    #[test]
    fn permutation_preserves_populations(
        nodes in 1usize..6,
        extra in 0usize..30,
        seed in 0u64..1000,
    ) {
        let threads = nodes + extra;
        let cluster = ClusterConfig::new(nodes, threads).expect("valid");
        let base = Mapping::stretch(&cluster);
        let mut rng = DetRng::new(seed);
        let p = base.permuted(&mut rng);
        let mut a = base.node_counts();
        let mut b = p.node_counts();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// The least-squares fit is scale-equivariant: scaling y scales the
    /// slope and intercept, and leaves |r| unchanged.
    #[test]
    fn linear_fit_scale_equivariance(
        points in proptest::collection::vec((0.0f64..1000.0, -500.0f64..500.0), 3..40),
        scale in 1.0f64..50.0,
    ) {
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        prop_assume!(xs.iter().any(|&x| (x - xs[0]).abs() > 1e-9));
        let base = linear_fit(&xs, &ys).expect("x has spread");
        let scaled_ys: Vec<f64> = ys.iter().map(|y| y * scale).collect();
        let scaled = linear_fit(&xs, &scaled_ys).expect("same xs");
        prop_assert!((scaled.slope - base.slope * scale).abs() < 1e-6 * scale.max(1.0));
        prop_assert!((scaled.intercept - base.intercept * scale).abs() < 1e-4 * scale.max(1.0));
        prop_assert!((scaled.r.abs() - base.r.abs()).abs() < 1e-9);
    }
}
