//! Deterministic network fault injection.
//!
//! The paper's testbed was real Myrinet: messages were delayed, occasionally
//! lost (and retransmitted by the transport), and nodes stalled under daemon
//! activity. [`FaultPlan`] describes such misbehaviour as a small set of
//! knobs — delay jitter, bounded reordering, transient drop-with-retry,
//! per-node slowdown windows, message duplication, checksum-detected payload
//! corruption, group-based network partitions and node crashes — and
//! [`FaultInjector`] applies it at the send path.
//!
//! Faults come in two granularities:
//!
//! * **per-message** faults (delay, drop, reorder, duplicate, corrupt) are
//!   drawn inside [`FaultInjector::deliver`], one independent RNG stream per
//!   message;
//! * **per-interval** faults (partition, crash) are drawn once per barrier
//!   interval via [`FaultInjector::interval_action`], or prescribed by a
//!   model checker as a [`FaultAction`] choice — the same enumeration either
//!   way, so a stochastic counterexample can be replayed as a prescribed
//!   fault token.
//!
//! Everything is a pure function of `(plan, message identity)`: each message
//! gets its own RNG stream forked from the plan seed and a per-node sequence
//! number, so a run with a fixed `(seed, plan)` pair is byte-deterministic
//! regardless of host parallelism, and [`FaultPlan::none`] perturbs nothing
//! at all (zero-fault runs are bit-identical to runs without the injector).
//!
//! Drops are *transient*: the sender times out and retransmits with
//! exponential backoff, and the number of consecutive losses is bounded by
//! [`FaultPlan::max_retries`], so every experiment still terminates.
//!
//! ```
//! use acorr_sim::{FaultInjector, FaultPlan, NodeId, SimDuration, SimTime};
//!
//! let plan = FaultPlan::moderate(42);
//! let mut inj = FaultInjector::new(plan, 2);
//! let base = SimDuration::from_micros(120);
//! let d = inj.deliver(NodeId(0), SimTime::ZERO, base, 4096);
//! assert!(d.latency >= base);
//!
//! // Same plan, fresh injector: the same message sees the same fate.
//! let mut again = FaultInjector::new(FaultPlan::moderate(42), 2);
//! assert_eq!(again.deliver(NodeId(0), SimTime::ZERO, base, 4096), d);
//! ```

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;
use std::fmt;

/// A seeded, deterministic description of network misbehaviour.
///
/// All probabilities are per message. The default plan ([`FaultPlan::none`])
/// injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's RNG streams.
    pub seed: u64,
    /// Probability a message suffers extra delay jitter.
    pub delay_prob: f64,
    /// Maximum extra delay added to a jittered message (uniform in
    /// `[0, max_delay]`).
    pub max_delay: SimDuration,
    /// Probability a transmission attempt is lost in flight.
    pub drop_prob: f64,
    /// Maximum consecutive losses of one message before the transport
    /// delivers it unconditionally (bounds retries, guaranteeing
    /// termination).
    pub max_retries: u32,
    /// Sender timeout before the first retransmission; doubles per retry
    /// (capped at 64x).
    pub retry_timeout: SimDuration,
    /// Probability a message is overtaken by later traffic (bounded
    /// reordering).
    pub reorder_prob: f64,
    /// Maximum number of messages that may overtake a reordered one; each
    /// overtake costs one extra network latency.
    pub reorder_depth: u32,
    /// Every `slow_every`-th node (1-based; 0 disables) suffers periodic
    /// slowdown windows.
    pub slow_every: usize,
    /// Period of the slowdown cycle on affected nodes.
    pub slow_period: SimDuration,
    /// Fraction of each period spent slowed (0..=1).
    pub slow_duty: f64,
    /// Multiplier applied to message latency inside a slowdown window.
    pub slow_factor: f64,
    /// Probability a message is duplicated in flight. The duplicate is
    /// discarded by the receiver (sequence numbers), so it costs bandwidth
    /// but never changes protocol state or delivery latency.
    pub dup_prob: f64,
    /// Probability a message payload is corrupted in flight. Corruption is
    /// detected by the per-message checksum ([`message_checksum`]) and
    /// repaired with one retransmission round (`+base` latency).
    pub corrupt_prob: f64,
    /// Probability a barrier interval begins under a network partition
    /// (group-based link cut between two node groups, healed by the next
    /// barrier).
    pub partition_prob: f64,
    /// How long cross-partition messages stall before the cut heals within
    /// the interval. Zero means the parse-time default of 2 ms.
    pub partition_window: SimDuration,
    /// Probability a node crashes at a barrier interval boundary and
    /// recovers by protocol-level state reconstruction (cache wiped,
    /// valid pages re-fetched from surviving directories).
    pub crash_prob: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no perturbation whatsoever.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            delay_prob: 0.0,
            max_delay: SimDuration::ZERO,
            drop_prob: 0.0,
            max_retries: 0,
            retry_timeout: SimDuration::ZERO,
            reorder_prob: 0.0,
            reorder_depth: 0,
            slow_every: 0,
            slow_period: SimDuration::ZERO,
            slow_duty: 0.0,
            slow_factor: 1.0,
            dup_prob: 0.0,
            corrupt_prob: 0.0,
            partition_prob: 0.0,
            partition_window: SimDuration::ZERO,
            crash_prob: 0.0,
        }
    }

    /// Mild jitter only: occasional small delays, no losses.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_prob: 0.05,
            max_delay: SimDuration::from_micros(100),
            ..FaultPlan::none()
        }
    }

    /// Jitter, reordering and rare transient losses.
    pub fn moderate(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_prob: 0.15,
            max_delay: SimDuration::from_micros(300),
            drop_prob: 0.02,
            max_retries: 4,
            retry_timeout: SimDuration::from_micros(500),
            reorder_prob: 0.05,
            reorder_depth: 3,
            ..FaultPlan::none()
        }
    }

    /// Frequent jitter and losses plus periodic slowdown on every other
    /// node.
    pub fn heavy(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_prob: 0.30,
            max_delay: SimDuration::from_micros(1_000),
            drop_prob: 0.08,
            max_retries: 6,
            retry_timeout: SimDuration::from_micros(800),
            reorder_prob: 0.12,
            reorder_depth: 5,
            slow_every: 2,
            slow_period: SimDuration::from_millis(5),
            slow_duty: 0.3,
            slow_factor: 3.0,
            ..FaultPlan::none()
        }
    }

    /// Recurring group-based partitions plus light duplication: each barrier
    /// interval has a 25% chance of starting cut in two, healing 2 ms in.
    pub fn partition(seed: u64) -> Self {
        FaultPlan {
            seed,
            partition_prob: 0.25,
            partition_window: SimDuration::from_millis(2),
            dup_prob: 0.05,
            ..FaultPlan::none()
        }
    }

    /// Everything at once: moderate network misbehaviour plus partitions,
    /// duplication, checksum-detected corruption and node crashes.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            partition_prob: 0.15,
            partition_window: SimDuration::from_millis(1),
            dup_prob: 0.05,
            corrupt_prob: 0.02,
            crash_prob: 0.05,
            ..FaultPlan::moderate(seed)
        }
    }

    /// Returns the plan with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when the plan perturbs nothing (regardless of seed).
    pub fn is_none(&self) -> bool {
        self.delay_prob <= 0.0
            && self.drop_prob <= 0.0
            && self.reorder_prob <= 0.0
            && (self.slow_every == 0 || self.slow_factor <= 1.0 || self.slow_duty <= 0.0)
            && self.dup_prob <= 0.0
            && self.corrupt_prob <= 0.0
            && !self.has_interval_faults()
    }

    /// True when the plan draws per-interval fault actions (partitions or
    /// crashes), which the engine must consult at every barrier boundary.
    pub fn has_interval_faults(&self) -> bool {
        self.partition_prob > 0.0 || self.crash_prob > 0.0
    }

    /// Parses a CLI fault spec.
    ///
    /// The spec is a comma-separated list; the first element may be a preset
    /// name (one of [`FAULT_PRESETS`]: `none`, `light`, `moderate`, `heavy`,
    /// `partition`, `chaos`), the rest are `key=value` overrides. Durations
    /// are in microseconds.
    ///
    /// ```
    /// use acorr_sim::FaultPlan;
    /// let plan = FaultPlan::parse("moderate,seed=7,drop_prob=0.05").unwrap();
    /// assert_eq!(plan.seed, 7);
    /// assert_eq!(plan.drop_prob, 0.05);
    /// assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
    /// assert!(FaultPlan::parse("bogus").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::none();
        let mut parts = spec.split(',').map(str::trim).filter(|s| !s.is_empty());
        let mut pending: Option<&str> = None;
        if let Some(first) = parts.next() {
            if let Some(preset) = FAULT_PRESETS.iter().find(|p| p.name == first) {
                plan = (preset.build)(0);
            } else if first.contains('=') {
                pending = Some(first);
            } else {
                return Err(FaultSpecError::unknown_preset(first));
            }
        }
        for part in pending.into_iter().chain(parts) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError::bad_pair(part))?;
            let (key, value) = (key.trim(), value.trim());
            let us = |v: &str| -> Result<SimDuration, FaultSpecError> {
                Ok(SimDuration::from_micros(
                    v.parse::<u64>()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?,
                ))
            };
            let prob = |v: &str| -> Result<f64, FaultSpecError> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| FaultSpecError::bad_value(key, value))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(FaultSpecError::bad_value(key, value));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?
                }
                "delay_prob" => plan.delay_prob = prob(value)?,
                "max_delay_us" => plan.max_delay = us(value)?,
                "drop_prob" => plan.drop_prob = prob(value)?,
                "max_retries" => {
                    plan.max_retries = value
                        .parse()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?
                }
                "retry_timeout_us" => plan.retry_timeout = us(value)?,
                "reorder_prob" => plan.reorder_prob = prob(value)?,
                "reorder_depth" => {
                    plan.reorder_depth = value
                        .parse()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?
                }
                "slow_every" => {
                    plan.slow_every = value
                        .parse()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?
                }
                "slow_period_us" => plan.slow_period = us(value)?,
                "slow_duty" => plan.slow_duty = prob(value)?,
                "dup_prob" => plan.dup_prob = prob(value)?,
                "corrupt_prob" => plan.corrupt_prob = prob(value)?,
                "partition_prob" => plan.partition_prob = prob(value)?,
                "partition_window_us" => plan.partition_window = us(value)?,
                "crash_prob" => plan.crash_prob = prob(value)?,
                "slow_factor" => {
                    let f: f64 = value
                        .parse()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?;
                    if !f.is_finite() || f < 1.0 {
                        return Err(FaultSpecError::bad_value(key, value));
                    }
                    plan.slow_factor = f;
                }
                _ => return Err(FaultSpecError::unknown_key(key)),
            }
        }
        if plan.drop_prob > 0.0 {
            // Losses need a working retransmit path to terminate.
            if plan.max_retries == 0 {
                plan.max_retries = 4;
            }
            if plan.retry_timeout.is_zero() {
                plan.retry_timeout = SimDuration::from_micros(500);
            }
        }
        if plan.partition_prob > 0.0 && plan.partition_window.is_zero() {
            // A zero-length cut would be invisible; give it the preset width.
            plan.partition_window = SimDuration::from_millis(2);
        }
        Ok(plan)
    }

    /// True when `node` sits inside a slowdown window at local time `now`.
    pub fn in_slow_window(&self, node: NodeId, now: SimTime) -> bool {
        if self.slow_every == 0
            || self.slow_factor <= 1.0
            || self.slow_duty <= 0.0
            || self.slow_period.is_zero()
        {
            return false;
        }
        if !(node.0 as usize + 1).is_multiple_of(self.slow_every) {
            return false;
        }
        let phase = now.as_nanos() % self.slow_period.as_nanos();
        (phase as f64) < self.slow_period.as_nanos() as f64 * self.slow_duty
    }
}

/// A named [`FaultPlan`] builder.
///
/// The single source of truth for preset names: [`FaultPlan::parse`], the
/// CLI usage text and the chaos bench's `--plans` default all iterate
/// [`FAULT_PRESETS`], so the accepted names and the documented names cannot
/// drift apart.
#[derive(Debug, Clone, Copy)]
pub struct FaultPreset {
    /// The name accepted by [`FaultPlan::parse`] and `--plans`.
    pub name: &'static str,
    /// One-line description for usage text and bench listings.
    pub summary: &'static str,
    /// Builds the plan for a given seed.
    pub build: fn(u64) -> FaultPlan,
}

/// Every named fault preset, in increasing order of hostility.
pub const FAULT_PRESETS: &[FaultPreset] = &[
    FaultPreset {
        name: "none",
        summary: "no perturbation",
        build: |_| FaultPlan::none(),
    },
    FaultPreset {
        name: "light",
        summary: "occasional small delays",
        build: FaultPlan::light,
    },
    FaultPreset {
        name: "moderate",
        summary: "jitter, reordering, rare transient losses",
        build: FaultPlan::moderate,
    },
    FaultPreset {
        name: "heavy",
        summary: "frequent jitter/losses plus periodic node slowdown",
        build: FaultPlan::heavy,
    },
    FaultPreset {
        name: "partition",
        summary: "recurring partition + heal, light duplication",
        build: FaultPlan::partition,
    },
    FaultPreset {
        name: "chaos",
        summary: "moderate network faults plus partitions, duplication, corruption and crashes",
        build: FaultPlan::chaos,
    },
];

/// Error from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl FaultSpecError {
    fn unknown_preset(name: &str) -> Self {
        let names: Vec<&str> = FAULT_PRESETS.iter().map(|p| p.name).collect();
        FaultSpecError(format!(
            "unknown fault preset '{name}' (expected one of: {})",
            names.join(", ")
        ))
    }
    fn unknown_key(key: &str) -> Self {
        FaultSpecError(format!("unknown fault knob '{key}'"))
    }
    fn bad_pair(part: &str) -> Self {
        FaultSpecError(format!("expected key=value, got '{part}'"))
    }
    fn bad_value(key: &str, value: &str) -> Self {
        FaultSpecError(format!("bad value '{value}' for fault knob '{key}'"))
    }
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// The fate of one message under a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Total time from first send to delivery, including timeouts and
    /// retransmissions.
    pub latency: SimDuration,
    /// Number of retransmissions (0 when the first attempt got through).
    pub retries: u32,
    /// Number of spurious duplicate copies delivered (discarded by the
    /// receiver; bandwidth only, never latency).
    pub duplicates: u32,
    /// Number of checksum-detected corruptions, each repaired with one
    /// retransmission round already included in `latency`.
    pub corrupt_detected: u32,
}

/// One per-barrier-interval fault decision.
///
/// This is the alternative menu the model checker enumerates at each
/// interval boundary: choice `0` is always "no fault", so a fault-free
/// prescription is bit-identical to a run without any fault machinery. The
/// same enumeration backs the stochastic path
/// ([`FaultInjector::interval_action`]), which is what makes a randomly
/// found counterexample replayable as a prescribed choice sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault this interval.
    None,
    /// Cut the cluster into nodes `[0, split)` vs `[split, n)` for the
    /// partition window; cross-cut messages stall until the cut heals.
    Partition {
        /// First node of the second group.
        split: usize,
    },
    /// Duplicate every message sent this interval (bandwidth only).
    Duplicate,
    /// Corrupt every message sent this interval; each corruption is caught
    /// by its checksum and costs one retransmission round.
    Corrupt,
    /// Crash a node at the interval boundary; it recovers immediately with
    /// its page cache wiped and reconstructs state through the protocol.
    Crash {
        /// The crashing node.
        node: usize,
    },
}

impl FaultAction {
    /// Number of alternatives the model checker enumerates per interval.
    /// Partition and crash need at least two nodes to mean anything.
    pub fn alternatives(nodes: usize) -> usize {
        if nodes >= 2 {
            5
        } else {
            3
        }
    }

    /// Decodes a replay-token choice into an action. Choice `0` (and any
    /// out-of-range value, which the decision queue clamps anyway) is
    /// [`FaultAction::None`].
    pub fn from_choice(choice: usize, nodes: usize) -> FaultAction {
        if nodes >= 2 {
            match choice {
                1 => FaultAction::Partition { split: nodes / 2 },
                2 => FaultAction::Duplicate,
                3 => FaultAction::Corrupt,
                4 => FaultAction::Crash { node: nodes - 1 },
                _ => FaultAction::None,
            }
        } else {
            match choice {
                1 => FaultAction::Duplicate,
                2 => FaultAction::Corrupt,
                _ => FaultAction::None,
            }
        }
    }
}

/// FNV-1a checksum over a message's identity and payload length.
///
/// The simulator carries no payload bytes, so the checksum covers what
/// uniquely identifies a message on the wire: sender, per-sender sequence
/// number and size. Corruption flips payload bits, which shows up as a
/// checksum mismatch at the receiver and triggers a retransmission.
pub fn message_checksum(node: NodeId, seq: u64, bytes: u64) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for b in node
        .0
        .to_le_bytes()
        .into_iter()
        .chain(seq.to_le_bytes())
        .chain(bytes.to_le_bytes())
    {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h
}

/// Applies a [`FaultPlan`] to individual sends.
///
/// The injector keeps one sequence counter per sending node; the fate of a
/// message is a pure function of `(plan.seed, node, sequence number)`, so
/// two runs that issue the same message sequence see the same faults.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    root: DetRng,
    seq: Vec<u64>,
}

impl FaultInjector {
    /// Creates an injector for `num_nodes` sending nodes.
    pub fn new(plan: FaultPlan, num_nodes: usize) -> Self {
        let root = DetRng::new(plan.seed ^ 0xfa17_b01d_cafe_f00d);
        FaultInjector {
            plan,
            root,
            seq: vec![0; num_nodes],
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when the injector never perturbs anything.
    pub fn is_none(&self) -> bool {
        self.plan.is_none()
    }

    /// Delivers one `bytes`-sized message charged to `node` at local time
    /// `now` whose fault-free cost is `base`. Returns the perturbed latency
    /// and the retransmission/duplication/corruption counts. With an empty
    /// plan this returns exactly `base` and does not consume any randomness
    /// or sequence numbers.
    pub fn deliver(
        &mut self,
        node: NodeId,
        now: SimTime,
        base: SimDuration,
        bytes: u64,
    ) -> Delivery {
        if self.plan.is_none() {
            return Delivery {
                latency: base,
                retries: 0,
                duplicates: 0,
                corrupt_detected: 0,
            };
        }
        let idx = node.0 as usize;
        let seq = self.seq[idx];
        self.seq[idx] += 1;
        let mut rng = self.root.fork(((idx as u64) << 40) ^ seq);

        let mut latency = base;
        let mut retries = 0u32;
        // Transient loss: the sender times out (exponential backoff, capped)
        // and retransmits; a bounded number of consecutive losses guarantees
        // the message eventually lands.
        while retries < self.plan.max_retries && rng.chance(self.plan.drop_prob) {
            let backoff = 1u64 << (retries.min(6));
            latency += self.plan.retry_timeout * backoff + base;
            retries += 1;
        }
        // Delay jitter on the surviving attempt.
        if rng.chance(self.plan.delay_prob) {
            let cap = self.plan.max_delay.as_nanos();
            if cap > 0 {
                latency += SimDuration::from_nanos(rng.next_below(cap + 1));
            }
        }
        // Bounded reordering: overtaken by up to `reorder_depth` later
        // messages, each costing roughly one message service time.
        if self.plan.reorder_depth > 0 && rng.chance(self.plan.reorder_prob) {
            let overtaken = 1 + rng.next_below(self.plan.reorder_depth as u64);
            latency += base * overtaken;
        }
        // Duplication: a second copy of the same frame arrives; the receiver
        // discards it by sequence number, so it costs bandwidth but neither
        // latency nor protocol state. The draw is guarded so plans without
        // duplication consume an unchanged RNG stream.
        let mut duplicates = 0u32;
        if self.plan.dup_prob > 0.0 && rng.chance(self.plan.dup_prob) {
            duplicates = 1;
        }
        // Payload corruption: flip one payload bit and let the receiver
        // recompute the checksum. A mismatch (all but certain for a 32-bit
        // FNV under a single-bit flip) triggers one retransmission round; a
        // colliding flip would slip through silently — the residual risk any
        // real checksum carries.
        let mut corrupt_detected = 0u32;
        if self.plan.corrupt_prob > 0.0 && rng.chance(self.plan.corrupt_prob) {
            let sent = message_checksum(node, seq, bytes);
            let flipped = bytes ^ (1u64 << rng.next_below(64));
            if message_checksum(node, seq, flipped) != sent {
                corrupt_detected = 1;
                latency += base;
            }
        }
        // Per-node slowdown windows, deterministic in local time.
        if self.plan.in_slow_window(node, now) {
            let scaled = (latency.as_nanos() as f64 * self.plan.slow_factor) as u64;
            latency = SimDuration::from_nanos(scaled);
        }
        Delivery {
            latency,
            retries,
            duplicates,
            corrupt_detected,
        }
    }

    /// Draws the stochastic fault action for barrier interval `interval`.
    ///
    /// Pure in `(plan.seed, interval)`: the fork tag sets bit 63, which
    /// per-message streams (node index in bits 40..56, sequence below) can
    /// never collide with, so adding interval faults to a plan leaves every
    /// per-message fate untouched.
    pub fn interval_action(&self, interval: u64, nodes: usize) -> FaultAction {
        if nodes < 2 || !self.plan.has_interval_faults() {
            return FaultAction::None;
        }
        let mut rng = self.root.fork((1u64 << 63) | interval);
        if self.plan.crash_prob > 0.0 && rng.chance(self.plan.crash_prob) {
            return FaultAction::Crash {
                node: rng.index(nodes),
            };
        }
        if self.plan.partition_prob > 0.0 && rng.chance(self.plan.partition_prob) {
            return FaultAction::Partition {
                split: 1 + rng.index(nodes - 1),
            };
        }
        FaultAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimDuration {
        SimDuration::from_micros(130)
    }

    #[test]
    fn none_plan_is_identity() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 4);
        for i in 0..32 {
            let d = inj.deliver(NodeId(i % 4), SimTime::from_nanos(i as u64), base(), 4096);
            assert_eq!(d.latency, base());
            assert_eq!(d.retries, 0);
            assert_eq!(d.duplicates, 0);
            assert_eq!(d.corrupt_detected, 0);
        }
        // No sequence numbers consumed: determinism against PR-1 runs that
        // never called the injector.
        assert!(inj.seq.iter().all(|&s| s == 0));
    }

    #[test]
    fn deterministic_per_message() {
        let mk = || FaultInjector::new(FaultPlan::heavy(99), 4);
        let (mut a, mut b) = (mk(), mk());
        for i in 0..200u64 {
            let node = NodeId((i % 4) as u16);
            let now = SimTime::from_nanos(i * 1_000);
            assert_eq!(
                a.deliver(node, now, base(), 4096),
                b.deliver(node, now, base(), 4096)
            );
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = FaultInjector::new(FaultPlan::heavy(1), 1);
        let mut b = FaultInjector::new(FaultPlan::heavy(2), 1);
        let fates_a: Vec<_> = (0..100)
            .map(|_| a.deliver(NodeId(0), SimTime::ZERO, base(), 4096))
            .collect();
        let fates_b: Vec<_> = (0..100)
            .map(|_| b.deliver(NodeId(0), SimTime::ZERO, base(), 4096))
            .collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn latency_never_below_base_and_retries_bounded() {
        let plan = FaultPlan::heavy(7);
        let max_retries = plan.max_retries;
        let mut inj = FaultInjector::new(plan, 2);
        for i in 0..500u64 {
            let d = inj.deliver(
                NodeId((i % 2) as u16),
                SimTime::from_nanos(i * 777),
                base(),
                64,
            );
            assert!(d.latency >= base());
            assert!(d.retries <= max_retries);
        }
    }

    #[test]
    fn drops_do_happen_under_heavy_plan() {
        let mut inj = FaultInjector::new(FaultPlan::heavy(3), 1);
        let total: u32 = (0..500)
            .map(|_| inj.deliver(NodeId(0), SimTime::ZERO, base(), 4096).retries)
            .sum();
        assert!(total > 0, "heavy plan should produce retransmissions");
    }

    #[test]
    fn slow_window_is_periodic_and_node_selective() {
        let plan = FaultPlan::heavy(0);
        // heavy: slow_every = 2, so node 1 (1-based 2nd) is slow, node 0 not.
        assert!(!plan.in_slow_window(NodeId(0), SimTime::ZERO));
        assert!(plan.in_slow_window(NodeId(1), SimTime::ZERO));
        // Past the duty cycle the window closes.
        let late = SimTime::from_nanos(
            (plan.slow_period.as_nanos() as f64 * (plan.slow_duty + 0.1)) as u64,
        );
        assert!(!plan.in_slow_window(NodeId(1), late));
        // And reopens next period.
        let next = SimTime::from_nanos(plan.slow_period.as_nanos());
        assert!(plan.in_slow_window(NodeId(1), next));
    }

    #[test]
    fn parse_presets_and_overrides() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("light").unwrap(), FaultPlan::light(0));
        let p = FaultPlan::parse("heavy,seed=11,max_delay_us=50,slow_factor=2.5").unwrap();
        assert_eq!(p.seed, 11);
        assert_eq!(p.max_delay, SimDuration::from_micros(50));
        assert_eq!(p.slow_factor, 2.5);
        // Bare key=value list without a preset works too.
        let q = FaultPlan::parse("drop_prob=0.1,seed=3").unwrap();
        assert_eq!(q.drop_prob, 0.1);
        assert_eq!(q.seed, 3);
        // Drops imply a usable retransmit path.
        assert!(q.max_retries > 0);
        assert!(!q.retry_timeout.is_zero());
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(FaultPlan::parse("turbo").is_err());
        assert!(FaultPlan::parse("drop_prob=1.5").is_err());
        assert!(FaultPlan::parse("slow_factor=0.5").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("light,oops").is_err());
    }

    #[test]
    fn preset_intensity_ordering() {
        // More intense presets perturb more in expectation; spot-check via
        // mean latency over many messages.
        let mean = |plan: FaultPlan| -> f64 {
            let mut inj = FaultInjector::new(plan, 1);
            let n = 2_000;
            let total: u64 = (0..n)
                .map(|i| {
                    inj.deliver(NodeId(0), SimTime::from_nanos(i * 10_000), base(), 4096)
                        .latency
                        .as_nanos()
                })
                .sum();
            total as f64 / n as f64
        };
        let none = mean(FaultPlan::none());
        let light = mean(FaultPlan::light(5));
        let moderate = mean(FaultPlan::moderate(5));
        let heavy = mean(FaultPlan::heavy(5));
        assert_eq!(none, base().as_nanos() as f64);
        assert!(light > none);
        assert!(moderate > light);
        assert!(heavy > moderate);
    }

    #[test]
    fn preset_table_drives_parse() {
        // Every listed preset name parses to exactly its builder's plan, and
        // nothing outside the table is accepted — the table IS the grammar.
        for preset in FAULT_PRESETS {
            let parsed = FaultPlan::parse(preset.name).unwrap();
            assert_eq!(parsed, (preset.build)(0), "preset {}", preset.name);
            assert!(!preset.summary.is_empty());
        }
        let err = FaultPlan::parse("bogus").unwrap_err().to_string();
        for preset in FAULT_PRESETS {
            assert!(
                err.contains(preset.name),
                "error should list {}",
                preset.name
            );
        }
    }

    #[test]
    fn parse_new_knobs_and_partition_default_window() {
        let p = FaultPlan::parse("dup_prob=0.5,corrupt_prob=0.25,crash_prob=0.1,seed=9").unwrap();
        assert_eq!(p.dup_prob, 0.5);
        assert_eq!(p.corrupt_prob, 0.25);
        assert_eq!(p.crash_prob, 0.1);
        assert!(p.has_interval_faults());
        assert!(!p.is_none());
        // A partition probability without an explicit window gets the
        // preset's 2 ms default; an explicit window survives.
        let q = FaultPlan::parse("partition_prob=0.3").unwrap();
        assert_eq!(q.partition_window, SimDuration::from_millis(2));
        let r = FaultPlan::parse("partition_prob=0.3,partition_window_us=700").unwrap();
        assert_eq!(r.partition_window, SimDuration::from_micros(700));
        assert!(FaultPlan::parse("crash_prob=1.5").is_err());
        assert!(FaultPlan::parse("dup_prob=-0.1").is_err());
    }

    #[test]
    fn duplication_and_corruption_are_drawn_and_counted() {
        let dup = FaultPlan {
            dup_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(dup.with_seed(3), 2);
        for i in 0..64u64 {
            let d = inj.deliver(NodeId((i % 2) as u16), SimTime::ZERO, base(), 4096);
            assert_eq!(d.duplicates, 1);
            // Duplicates never touch latency.
            assert_eq!(d.latency, base());
        }
        let corrupt = FaultPlan {
            corrupt_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(corrupt.with_seed(3), 2);
        for i in 0..64u64 {
            let d = inj.deliver(NodeId((i % 2) as u16), SimTime::ZERO, base(), 4096);
            assert_eq!(d.corrupt_detected, 1, "single-bit flips must be caught");
            // One retransmission round repairs the corruption.
            assert_eq!(d.latency, base() * 2);
        }
    }

    #[test]
    fn new_draws_leave_existing_fault_streams_untouched() {
        // Adding duplication to a heavy plan must not perturb the latency or
        // retry stream: the new draws come after the old ones, and only when
        // their probability is non-zero.
        let mut plain = FaultInjector::new(FaultPlan::heavy(17), 2);
        let mut dup = FaultInjector::new(
            FaultPlan {
                dup_prob: 0.5,
                ..FaultPlan::heavy(17)
            },
            2,
        );
        for i in 0..300u64 {
            let node = NodeId((i % 2) as u16);
            let now = SimTime::from_nanos(i * 1_111);
            let a = plain.deliver(node, now, base(), 4096);
            let b = dup.deliver(node, now, base(), 4096);
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.retries, b.retries);
        }
    }

    #[test]
    fn message_checksum_is_stable_and_sensitive() {
        let sum = message_checksum(NodeId(3), 41, 4096);
        assert_eq!(sum, message_checksum(NodeId(3), 41, 4096));
        assert_ne!(sum, message_checksum(NodeId(4), 41, 4096));
        assert_ne!(sum, message_checksum(NodeId(3), 42, 4096));
        assert_ne!(sum, message_checksum(NodeId(3), 41, 4097));
    }

    #[test]
    fn interval_actions_are_deterministic_and_plan_scoped() {
        let inj = FaultInjector::new(FaultPlan::chaos(5), 4);
        let (mut crashes, mut partitions) = (0usize, 0usize);
        for interval in 0..400u64 {
            let action = inj.interval_action(interval, 4);
            assert_eq!(
                action,
                inj.interval_action(interval, 4),
                "pure per interval"
            );
            match action {
                FaultAction::Crash { node } => {
                    assert!(node < 4);
                    crashes += 1;
                }
                FaultAction::Partition { split } => {
                    assert!((1..4).contains(&split));
                    partitions += 1;
                }
                _ => {}
            }
        }
        assert!(crashes > 0, "chaos plan should crash sometimes");
        assert!(partitions > 0, "chaos plan should partition sometimes");

        let part = FaultInjector::new(FaultPlan::partition(5), 4);
        for interval in 0..400u64 {
            assert!(!matches!(
                part.interval_action(interval, 4),
                FaultAction::Crash { .. }
            ));
        }
        let none = FaultInjector::new(FaultPlan::none(), 4);
        for interval in 0..64u64 {
            assert_eq!(none.interval_action(interval, 4), FaultAction::None);
        }
        // Single-node clusters cannot partition or crash meaningfully.
        assert_eq!(inj.interval_action(0, 1), FaultAction::None);
    }

    #[test]
    fn fault_action_choice_menu_round_trips() {
        assert_eq!(FaultAction::alternatives(4), 5);
        assert_eq!(FaultAction::alternatives(1), 3);
        assert_eq!(FaultAction::from_choice(0, 4), FaultAction::None);
        assert_eq!(
            FaultAction::from_choice(1, 4),
            FaultAction::Partition { split: 2 }
        );
        assert_eq!(FaultAction::from_choice(2, 4), FaultAction::Duplicate);
        assert_eq!(FaultAction::from_choice(3, 4), FaultAction::Corrupt);
        assert_eq!(
            FaultAction::from_choice(4, 4),
            FaultAction::Crash { node: 3 }
        );
        // One-node menu: no partition or crash slots.
        assert_eq!(FaultAction::from_choice(1, 1), FaultAction::Duplicate);
        assert_eq!(FaultAction::from_choice(2, 1), FaultAction::Corrupt);
        // Out-of-range choices degrade to no-fault.
        assert_eq!(FaultAction::from_choice(9, 4), FaultAction::None);
    }
}
