//! Deterministic network fault injection.
//!
//! The paper's testbed was real Myrinet: messages were delayed, occasionally
//! lost (and retransmitted by the transport), and nodes stalled under daemon
//! activity. [`FaultPlan`] describes such misbehaviour as a small set of
//! knobs — delay jitter, bounded reordering, transient drop-with-retry, and
//! per-node slowdown windows — and [`FaultInjector`] applies it at the send
//! path.
//!
//! Everything is a pure function of `(plan, message identity)`: each message
//! gets its own RNG stream forked from the plan seed and a per-node sequence
//! number, so a run with a fixed `(seed, plan)` pair is byte-deterministic
//! regardless of host parallelism, and [`FaultPlan::none`] perturbs nothing
//! at all (zero-fault runs are bit-identical to runs without the injector).
//!
//! Drops are *transient*: the sender times out and retransmits with
//! exponential backoff, and the number of consecutive losses is bounded by
//! [`FaultPlan::max_retries`], so every experiment still terminates.
//!
//! ```
//! use acorr_sim::{FaultInjector, FaultPlan, NodeId, SimDuration, SimTime};
//!
//! let plan = FaultPlan::moderate(42);
//! let mut inj = FaultInjector::new(plan, 2);
//! let base = SimDuration::from_micros(120);
//! let d = inj.deliver(NodeId(0), SimTime::ZERO, base);
//! assert!(d.latency >= base);
//!
//! // Same plan, fresh injector: the same message sees the same fate.
//! let mut again = FaultInjector::new(FaultPlan::moderate(42), 2);
//! assert_eq!(again.deliver(NodeId(0), SimTime::ZERO, base), d);
//! ```

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;
use std::fmt;

/// A seeded, deterministic description of network misbehaviour.
///
/// All probabilities are per message. The default plan ([`FaultPlan::none`])
/// injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the injector's RNG streams.
    pub seed: u64,
    /// Probability a message suffers extra delay jitter.
    pub delay_prob: f64,
    /// Maximum extra delay added to a jittered message (uniform in
    /// `[0, max_delay]`).
    pub max_delay: SimDuration,
    /// Probability a transmission attempt is lost in flight.
    pub drop_prob: f64,
    /// Maximum consecutive losses of one message before the transport
    /// delivers it unconditionally (bounds retries, guaranteeing
    /// termination).
    pub max_retries: u32,
    /// Sender timeout before the first retransmission; doubles per retry
    /// (capped at 64x).
    pub retry_timeout: SimDuration,
    /// Probability a message is overtaken by later traffic (bounded
    /// reordering).
    pub reorder_prob: f64,
    /// Maximum number of messages that may overtake a reordered one; each
    /// overtake costs one extra network latency.
    pub reorder_depth: u32,
    /// Every `slow_every`-th node (1-based; 0 disables) suffers periodic
    /// slowdown windows.
    pub slow_every: usize,
    /// Period of the slowdown cycle on affected nodes.
    pub slow_period: SimDuration,
    /// Fraction of each period spent slowed (0..=1).
    pub slow_duty: f64,
    /// Multiplier applied to message latency inside a slowdown window.
    pub slow_factor: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no perturbation whatsoever.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            delay_prob: 0.0,
            max_delay: SimDuration::ZERO,
            drop_prob: 0.0,
            max_retries: 0,
            retry_timeout: SimDuration::ZERO,
            reorder_prob: 0.0,
            reorder_depth: 0,
            slow_every: 0,
            slow_period: SimDuration::ZERO,
            slow_duty: 0.0,
            slow_factor: 1.0,
        }
    }

    /// Mild jitter only: occasional small delays, no losses.
    pub fn light(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_prob: 0.05,
            max_delay: SimDuration::from_micros(100),
            ..FaultPlan::none()
        }
    }

    /// Jitter, reordering and rare transient losses.
    pub fn moderate(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_prob: 0.15,
            max_delay: SimDuration::from_micros(300),
            drop_prob: 0.02,
            max_retries: 4,
            retry_timeout: SimDuration::from_micros(500),
            reorder_prob: 0.05,
            reorder_depth: 3,
            ..FaultPlan::none()
        }
    }

    /// Frequent jitter and losses plus periodic slowdown on every other
    /// node.
    pub fn heavy(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_prob: 0.30,
            max_delay: SimDuration::from_micros(1_000),
            drop_prob: 0.08,
            max_retries: 6,
            retry_timeout: SimDuration::from_micros(800),
            reorder_prob: 0.12,
            reorder_depth: 5,
            slow_every: 2,
            slow_period: SimDuration::from_millis(5),
            slow_duty: 0.3,
            slow_factor: 3.0,
        }
    }

    /// Returns the plan with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when the plan perturbs nothing (regardless of seed).
    pub fn is_none(&self) -> bool {
        self.delay_prob <= 0.0
            && self.drop_prob <= 0.0
            && self.reorder_prob <= 0.0
            && (self.slow_every == 0 || self.slow_factor <= 1.0 || self.slow_duty <= 0.0)
    }

    /// Parses a CLI fault spec.
    ///
    /// The spec is a comma-separated list; the first element may be a preset
    /// name (`none`, `light`, `moderate`, `heavy`), the rest are `key=value`
    /// overrides. Durations are in microseconds.
    ///
    /// ```
    /// use acorr_sim::FaultPlan;
    /// let plan = FaultPlan::parse("moderate,seed=7,drop_prob=0.05").unwrap();
    /// assert_eq!(plan.seed, 7);
    /// assert_eq!(plan.drop_prob, 0.05);
    /// assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
    /// assert!(FaultPlan::parse("bogus").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::none();
        let mut parts = spec.split(',').map(str::trim).filter(|s| !s.is_empty());
        let mut pending: Option<&str> = None;
        if let Some(first) = parts.next() {
            match first {
                "none" => {}
                "light" => plan = FaultPlan::light(0),
                "moderate" => plan = FaultPlan::moderate(0),
                "heavy" => plan = FaultPlan::heavy(0),
                other if other.contains('=') => pending = Some(other),
                other => return Err(FaultSpecError::unknown_preset(other)),
            }
        }
        for part in pending.into_iter().chain(parts) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError::bad_pair(part))?;
            let (key, value) = (key.trim(), value.trim());
            let us = |v: &str| -> Result<SimDuration, FaultSpecError> {
                Ok(SimDuration::from_micros(
                    v.parse::<u64>()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?,
                ))
            };
            let prob = |v: &str| -> Result<f64, FaultSpecError> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| FaultSpecError::bad_value(key, value))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(FaultSpecError::bad_value(key, value));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?
                }
                "delay_prob" => plan.delay_prob = prob(value)?,
                "max_delay_us" => plan.max_delay = us(value)?,
                "drop_prob" => plan.drop_prob = prob(value)?,
                "max_retries" => {
                    plan.max_retries = value
                        .parse()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?
                }
                "retry_timeout_us" => plan.retry_timeout = us(value)?,
                "reorder_prob" => plan.reorder_prob = prob(value)?,
                "reorder_depth" => {
                    plan.reorder_depth = value
                        .parse()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?
                }
                "slow_every" => {
                    plan.slow_every = value
                        .parse()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?
                }
                "slow_period_us" => plan.slow_period = us(value)?,
                "slow_duty" => plan.slow_duty = prob(value)?,
                "slow_factor" => {
                    let f: f64 = value
                        .parse()
                        .map_err(|_| FaultSpecError::bad_value(key, value))?;
                    if !f.is_finite() || f < 1.0 {
                        return Err(FaultSpecError::bad_value(key, value));
                    }
                    plan.slow_factor = f;
                }
                _ => return Err(FaultSpecError::unknown_key(key)),
            }
        }
        if plan.drop_prob > 0.0 {
            // Losses need a working retransmit path to terminate.
            if plan.max_retries == 0 {
                plan.max_retries = 4;
            }
            if plan.retry_timeout.is_zero() {
                plan.retry_timeout = SimDuration::from_micros(500);
            }
        }
        Ok(plan)
    }

    /// True when `node` sits inside a slowdown window at local time `now`.
    pub fn in_slow_window(&self, node: NodeId, now: SimTime) -> bool {
        if self.slow_every == 0
            || self.slow_factor <= 1.0
            || self.slow_duty <= 0.0
            || self.slow_period.is_zero()
        {
            return false;
        }
        if !(node.0 as usize + 1).is_multiple_of(self.slow_every) {
            return false;
        }
        let phase = now.as_nanos() % self.slow_period.as_nanos();
        (phase as f64) < self.slow_period.as_nanos() as f64 * self.slow_duty
    }
}

/// Error from [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl FaultSpecError {
    fn unknown_preset(name: &str) -> Self {
        FaultSpecError(format!(
            "unknown fault preset '{name}' (expected none, light, moderate or heavy)"
        ))
    }
    fn unknown_key(key: &str) -> Self {
        FaultSpecError(format!("unknown fault knob '{key}'"))
    }
    fn bad_pair(part: &str) -> Self {
        FaultSpecError(format!("expected key=value, got '{part}'"))
    }
    fn bad_value(key: &str, value: &str) -> Self {
        FaultSpecError(format!("bad value '{value}' for fault knob '{key}'"))
    }
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// The fate of one message under a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Total time from first send to delivery, including timeouts and
    /// retransmissions.
    pub latency: SimDuration,
    /// Number of retransmissions (0 when the first attempt got through).
    pub retries: u32,
}

/// Applies a [`FaultPlan`] to individual sends.
///
/// The injector keeps one sequence counter per sending node; the fate of a
/// message is a pure function of `(plan.seed, node, sequence number)`, so
/// two runs that issue the same message sequence see the same faults.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    root: DetRng,
    seq: Vec<u64>,
}

impl FaultInjector {
    /// Creates an injector for `num_nodes` sending nodes.
    pub fn new(plan: FaultPlan, num_nodes: usize) -> Self {
        let root = DetRng::new(plan.seed ^ 0xfa17_b01d_cafe_f00d);
        FaultInjector {
            plan,
            root,
            seq: vec![0; num_nodes],
        }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when the injector never perturbs anything.
    pub fn is_none(&self) -> bool {
        self.plan.is_none()
    }

    /// Delivers one message charged to `node` at local time `now` whose
    /// fault-free cost is `base`. Returns the perturbed latency and the
    /// retransmission count. With an empty plan this returns exactly
    /// `base` and does not consume any randomness or sequence numbers.
    pub fn deliver(&mut self, node: NodeId, now: SimTime, base: SimDuration) -> Delivery {
        if self.plan.is_none() {
            return Delivery {
                latency: base,
                retries: 0,
            };
        }
        let idx = node.0 as usize;
        let seq = self.seq[idx];
        self.seq[idx] += 1;
        let mut rng = self.root.fork(((idx as u64) << 40) ^ seq);

        let mut latency = base;
        let mut retries = 0u32;
        // Transient loss: the sender times out (exponential backoff, capped)
        // and retransmits; a bounded number of consecutive losses guarantees
        // the message eventually lands.
        while retries < self.plan.max_retries && rng.chance(self.plan.drop_prob) {
            let backoff = 1u64 << (retries.min(6));
            latency += self.plan.retry_timeout * backoff + base;
            retries += 1;
        }
        // Delay jitter on the surviving attempt.
        if rng.chance(self.plan.delay_prob) {
            let cap = self.plan.max_delay.as_nanos();
            if cap > 0 {
                latency += SimDuration::from_nanos(rng.next_below(cap + 1));
            }
        }
        // Bounded reordering: overtaken by up to `reorder_depth` later
        // messages, each costing roughly one message service time.
        if self.plan.reorder_depth > 0 && rng.chance(self.plan.reorder_prob) {
            let overtaken = 1 + rng.next_below(self.plan.reorder_depth as u64);
            latency += base * overtaken;
        }
        // Per-node slowdown windows, deterministic in local time.
        if self.plan.in_slow_window(node, now) {
            let scaled = (latency.as_nanos() as f64 * self.plan.slow_factor) as u64;
            latency = SimDuration::from_nanos(scaled);
        }
        Delivery { latency, retries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimDuration {
        SimDuration::from_micros(130)
    }

    #[test]
    fn none_plan_is_identity() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 4);
        for i in 0..32 {
            let d = inj.deliver(NodeId(i % 4), SimTime::from_nanos(i as u64), base());
            assert_eq!(d.latency, base());
            assert_eq!(d.retries, 0);
        }
        // No sequence numbers consumed: determinism against PR-1 runs that
        // never called the injector.
        assert!(inj.seq.iter().all(|&s| s == 0));
    }

    #[test]
    fn deterministic_per_message() {
        let mk = || FaultInjector::new(FaultPlan::heavy(99), 4);
        let (mut a, mut b) = (mk(), mk());
        for i in 0..200u64 {
            let node = NodeId((i % 4) as u16);
            let now = SimTime::from_nanos(i * 1_000);
            assert_eq!(a.deliver(node, now, base()), b.deliver(node, now, base()));
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = FaultInjector::new(FaultPlan::heavy(1), 1);
        let mut b = FaultInjector::new(FaultPlan::heavy(2), 1);
        let fates_a: Vec<_> = (0..100)
            .map(|_| a.deliver(NodeId(0), SimTime::ZERO, base()))
            .collect();
        let fates_b: Vec<_> = (0..100)
            .map(|_| b.deliver(NodeId(0), SimTime::ZERO, base()))
            .collect();
        assert_ne!(fates_a, fates_b);
    }

    #[test]
    fn latency_never_below_base_and_retries_bounded() {
        let plan = FaultPlan::heavy(7);
        let max_retries = plan.max_retries;
        let mut inj = FaultInjector::new(plan, 2);
        for i in 0..500u64 {
            let d = inj.deliver(NodeId((i % 2) as u16), SimTime::from_nanos(i * 777), base());
            assert!(d.latency >= base());
            assert!(d.retries <= max_retries);
        }
    }

    #[test]
    fn drops_do_happen_under_heavy_plan() {
        let mut inj = FaultInjector::new(FaultPlan::heavy(3), 1);
        let total: u32 = (0..500)
            .map(|_| inj.deliver(NodeId(0), SimTime::ZERO, base()).retries)
            .sum();
        assert!(total > 0, "heavy plan should produce retransmissions");
    }

    #[test]
    fn slow_window_is_periodic_and_node_selective() {
        let plan = FaultPlan::heavy(0);
        // heavy: slow_every = 2, so node 1 (1-based 2nd) is slow, node 0 not.
        assert!(!plan.in_slow_window(NodeId(0), SimTime::ZERO));
        assert!(plan.in_slow_window(NodeId(1), SimTime::ZERO));
        // Past the duty cycle the window closes.
        let late = SimTime::from_nanos(
            (plan.slow_period.as_nanos() as f64 * (plan.slow_duty + 0.1)) as u64,
        );
        assert!(!plan.in_slow_window(NodeId(1), late));
        // And reopens next period.
        let next = SimTime::from_nanos(plan.slow_period.as_nanos());
        assert!(plan.in_slow_window(NodeId(1), next));
    }

    #[test]
    fn parse_presets_and_overrides() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("light").unwrap(), FaultPlan::light(0));
        let p = FaultPlan::parse("heavy,seed=11,max_delay_us=50,slow_factor=2.5").unwrap();
        assert_eq!(p.seed, 11);
        assert_eq!(p.max_delay, SimDuration::from_micros(50));
        assert_eq!(p.slow_factor, 2.5);
        // Bare key=value list without a preset works too.
        let q = FaultPlan::parse("drop_prob=0.1,seed=3").unwrap();
        assert_eq!(q.drop_prob, 0.1);
        assert_eq!(q.seed, 3);
        // Drops imply a usable retransmit path.
        assert!(q.max_retries > 0);
        assert!(!q.retry_timeout.is_zero());
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(FaultPlan::parse("turbo").is_err());
        assert!(FaultPlan::parse("drop_prob=1.5").is_err());
        assert!(FaultPlan::parse("slow_factor=0.5").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("light,oops").is_err());
    }

    #[test]
    fn preset_intensity_ordering() {
        // More intense presets perturb more in expectation; spot-check via
        // mean latency over many messages.
        let mean = |plan: FaultPlan| -> f64 {
            let mut inj = FaultInjector::new(plan, 1);
            let n = 2_000;
            let total: u64 = (0..n)
                .map(|i| {
                    inj.deliver(NodeId(0), SimTime::from_nanos(i * 10_000), base())
                        .latency
                        .as_nanos()
                })
                .sum();
            total as f64 / n as f64
        };
        let none = mean(FaultPlan::none());
        let light = mean(FaultPlan::light(5));
        let moderate = mean(FaultPlan::moderate(5));
        let heavy = mean(FaultPlan::heavy(5));
        assert_eq!(none, base().as_nanos() as f64);
        assert!(light > none);
        assert!(moderate > light);
        assert!(heavy > moderate);
    }
}
