//! Deterministic multi-tenant synthetic traffic.
//!
//! The online placement service (ROADMAP item 1) needs *live* load: a
//! stream of sharing observations whose affinity structure shifts
//! mid-run, so windowed tracking and re-mapping have something to react
//! to. This module is that stream's source. A [`TrafficDriver`] carves
//! the thread range into contiguous per-tenant shards and, for every
//! step, emits a sorted edge list `(a, b, weight)` of intra-tenant
//! sharing — raw material for a correlation store built one layer up
//! (this crate sits below `acorr-track` and therefore speaks edge
//! lists, not stores).
//!
//! Everything is a pure function of `(config, step)`: per-tenant edges
//! come from an [`DetRng`] forked on `(tenant, generation)`, tenants are
//! generated in parallel with [`par_map_range`] and concatenated in
//! tenant order, so any `jobs` count produces byte-identical output.

use crate::pool::{par_map_range, resolve_threads};
use crate::rng::DetRng;
use std::fmt;

/// A scripted traffic scenario: how tenant affinity evolves over steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Constant ring affinity, constant intensity: nothing ever shifts.
    Static,
    /// Tenant 0 runs hot and rotates its partner stride every
    /// generation — the paper's "sharing pattern changes mid-run" case.
    Hotspot,
    /// Each generation retires one tenant (round-robin) and replaces it
    /// with a fresh random pairing — tenant churn.
    Churn,
    /// Fixed ring structure; per-tenant intensity follows a phase-offset
    /// triangular wave — diurnal skew that moves load, not structure.
    Diurnal,
}

impl Scenario {
    /// Every scenario, in CLI/documentation order.
    pub const ALL: [Scenario; 4] = [
        Scenario::Static,
        Scenario::Hotspot,
        Scenario::Churn,
        Scenario::Diurnal,
    ];

    /// The CLI name (`static`, `hotspot`, `churn`, `diurnal`).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Static => "static",
            Scenario::Hotspot => "hotspot",
            Scenario::Churn => "churn",
            Scenario::Diurnal => "diurnal",
        }
    }

    /// Parses a CLI name back into a scenario.
    pub fn parse(name: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Shape of the synthetic load: thread count, tenancy, scenario script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Total threads across all tenants.
    pub threads: usize,
    /// Number of tenants sharing the thread range (clamped so every
    /// tenant owns at least two threads).
    pub tenants: usize,
    /// The affinity script.
    pub scenario: Scenario,
    /// Seed for every random draw the script makes.
    pub seed: u64,
    /// Steps per generation (hotspot rotation / churn cadence) and per
    /// diurnal cycle. Clamped to ≥ 1.
    pub period: u64,
}

impl TrafficConfig {
    /// A config with the given shape and the documented default period
    /// of 12 steps.
    pub fn new(threads: usize, tenants: usize, scenario: Scenario, seed: u64) -> TrafficConfig {
        TrafficConfig {
            threads,
            tenants,
            scenario,
            seed,
            period: 12,
        }
    }

    /// Replaces the generation/cycle period.
    #[must_use]
    pub fn with_period(mut self, period: u64) -> TrafficConfig {
        self.period = period.max(1);
        self
    }
}

/// Deterministic traffic source: emits one sorted intra-tenant edge
/// list per step.
#[derive(Debug, Clone)]
pub struct TrafficDriver {
    config: TrafficConfig,
    /// Per-tenant `(first_thread, len)` contiguous shards.
    shards: Vec<(usize, usize)>,
}

impl TrafficDriver {
    /// Builds a driver, carving `threads` into contiguous tenant shards
    /// (stretch-style quotas: earlier tenants absorb the remainder).
    ///
    /// # Panics
    ///
    /// Panics if the config has fewer than two threads.
    pub fn new(config: TrafficConfig) -> TrafficDriver {
        assert!(config.threads >= 2, "traffic needs at least two threads");
        let mut config = config;
        config.period = config.period.max(1);
        config.tenants = config.tenants.clamp(1, config.threads / 2);
        let base = config.threads / config.tenants;
        let extra = config.threads % config.tenants;
        let mut shards = Vec::with_capacity(config.tenants);
        let mut lo = 0;
        for k in 0..config.tenants {
            let len = base + usize::from(k < extra);
            shards.push((lo, len));
            lo += len;
        }
        TrafficDriver { config, shards }
    }

    /// The (clamped) config this driver runs.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Per-tenant `(first_thread, len)` shards, ascending and disjoint.
    pub fn shards(&self) -> &[(usize, usize)] {
        &self.shards
    }

    /// The generation a step belongs to.
    pub fn generation(&self, step: u64) -> u64 {
        step / self.config.period
    }

    /// Ground truth for tests: the steps in `0..steps` where the edge
    /// *structure* (not just intensity) changes relative to the
    /// previous step. Static and diurnal traffic never shift.
    pub fn shift_steps(&self, steps: u64) -> Vec<u64> {
        match self.config.scenario {
            Scenario::Static | Scenario::Diurnal => Vec::new(),
            Scenario::Hotspot | Scenario::Churn => (1..steps)
                .filter(|&s| self.generation(s) != self.generation(s - 1))
                .collect(),
        }
    }

    /// The edge list for `step`, generated with up to `jobs` workers
    /// (0 = all cores). Edges are `(a, b, weight)` with `a < b`, sorted
    /// ascending, disjoint across tenants — byte-identical for every
    /// `jobs` value.
    pub fn step_edges(&self, step: u64, jobs: usize) -> Vec<(u32, u32, u64)> {
        let workers = resolve_threads(jobs);
        let per_tenant = par_map_range(workers, self.shards.len(), |k| self.tenant_edges(k, step));
        let mut edges = Vec::with_capacity(per_tenant.iter().map(Vec::len).sum());
        for mut tenant in per_tenant {
            edges.append(&mut tenant);
        }
        edges
    }

    /// One tenant's sorted, coalesced edges for `step`.
    fn tenant_edges(&self, k: usize, step: u64) -> Vec<(u32, u32, u64)> {
        let (lo, len) = self.shards[k];
        let g = self.generation(step);
        let weight = self.intensity(k, step);
        let mut edges = match self.config.scenario {
            Scenario::Static | Scenario::Diurnal => ring_edges(lo, len, 1, weight),
            Scenario::Hotspot => {
                let offset = if k == 0 && len >= 3 {
                    1 + (g as usize * 5) % (len - 1)
                } else {
                    1
                };
                ring_edges(lo, len, offset, weight)
            }
            Scenario::Churn => match self.last_rematch(k, g) {
                None => ring_edges(lo, len, 1, weight),
                Some(r) => self.matched_edges(k, r, weight),
            },
        };
        edges.sort_unstable();
        coalesce(&mut edges);
        edges
    }

    /// Per-edge weight for tenant `k` at `step`.
    fn intensity(&self, k: usize, step: u64) -> u64 {
        match self.config.scenario {
            Scenario::Static => 4,
            Scenario::Hotspot => {
                if k == 0 {
                    16
                } else {
                    2
                }
            }
            // A freshly re-matched tenant arrives with an onboarding
            // burst (3x) for its first generation, then settles: the
            // structural change plus the burst is what pushes the
            // window delta past the detector's firing threshold.
            Scenario::Churn => {
                let g = self.generation(step);
                if self.last_rematch(k, g) == Some(g) {
                    18
                } else {
                    6
                }
            }
            Scenario::Diurnal => {
                // Triangular wave over one period, phase-shifted per
                // tenant: weight sweeps 1..=9 and back.
                let period = self.config.period;
                let phase = (k as u64 * period) / self.config.tenants as u64;
                let pos = (step + phase) % period;
                let half = (period / 2).max(1);
                let tri = if pos <= half { pos } else { period - pos };
                1 + (8 * tri) / half
            }
        }
    }

    /// The most recent generation ≤ `g` at which churn re-matched
    /// tenant `k` (generation `g` re-matches tenant `g % tenants`), or
    /// `None` if `k` still runs its initial ring.
    fn last_rematch(&self, k: usize, g: u64) -> Option<u64> {
        let tenants = self.config.tenants as u64;
        let k = k as u64;
        if g < k {
            return None;
        }
        Some(g - ((g - k) % tenants))
    }

    /// A seeded random perfect matching of tenant `k`'s shard, keyed by
    /// the generation `r` that introduced it.
    fn matched_edges(&self, k: usize, r: u64, weight: u64) -> Vec<(u32, u32, u64)> {
        let (lo, len) = self.shards[k];
        let mut perm: Vec<usize> = (0..len).collect();
        let mut rng = DetRng::new(self.config.seed)
            .fork(0x7E_0000 ^ k as u64)
            .fork(r);
        rng.shuffle(&mut perm);
        let mut edges = Vec::with_capacity(len / 2);
        for pair in perm.chunks_exact(2) {
            let (a, b) = ((lo + pair[0]) as u32, (lo + pair[1]) as u32);
            edges.push((a.min(b), a.max(b), weight));
        }
        edges
    }
}

/// Ring edges `(i, i + offset mod len)` over a contiguous shard, each
/// pair normalized to `a < b`.
fn ring_edges(lo: usize, len: usize, offset: usize, weight: u64) -> Vec<(u32, u32, u64)> {
    let mut edges = Vec::with_capacity(len);
    for i in 0..len {
        let j = (i + offset) % len;
        if i == j {
            continue;
        }
        let (a, b) = ((lo + i) as u32, (lo + j) as u32);
        edges.push((a.min(b), a.max(b), weight));
    }
    edges
}

/// Sums the weights of adjacent duplicate `(a, b)` entries in a sorted
/// edge list (an offset of `len / 2` names each pair twice).
fn coalesce(edges: &mut Vec<(u32, u32, u64)>) {
    let mut out = 0;
    for i in 0..edges.len() {
        if out > 0 && edges[out - 1].0 == edges[i].0 && edges[out - 1].1 == edges[i].1 {
            edges[out - 1].2 += edges[i].2;
        } else {
            edges[out] = edges[i];
            out += 1;
        }
    }
    edges.truncate(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver(scenario: Scenario) -> TrafficDriver {
        TrafficDriver::new(TrafficConfig::new(32, 4, scenario, 7))
    }

    #[test]
    fn shards_partition_the_thread_range() {
        for threads in [2, 7, 32, 65] {
            for tenants in [1, 3, 4, 100] {
                let d =
                    TrafficDriver::new(TrafficConfig::new(threads, tenants, Scenario::Static, 0));
                let mut covered = 0;
                for &(lo, len) in d.shards() {
                    assert_eq!(lo, covered, "shards are contiguous and ascending");
                    assert!(len >= 2, "every tenant owns at least two threads");
                    covered += len;
                }
                assert_eq!(covered, threads);
            }
        }
    }

    #[test]
    fn edges_are_sorted_normalized_and_in_range() {
        for scenario in Scenario::ALL {
            let d = driver(scenario);
            for step in 0..36 {
                let edges = d.step_edges(step, 1);
                assert!(!edges.is_empty());
                for w in edges.windows(2) {
                    assert!(w[0] < w[1], "{scenario}: sorted, no duplicates");
                }
                for &(a, b, v) in &edges {
                    assert!(a < b, "{scenario}: normalized");
                    assert!((b as usize) < 32, "{scenario}: in range");
                    assert!(v > 0, "{scenario}: positive weight");
                }
            }
        }
    }

    #[test]
    fn step_edges_are_jobs_invariant() {
        for scenario in Scenario::ALL {
            let d = driver(scenario);
            for step in [0, 5, 12, 25] {
                let seq = d.step_edges(step, 1);
                assert_eq!(seq, d.step_edges(step, 4), "{scenario} step {step}");
                assert_eq!(seq, d.step_edges(step, 8), "{scenario} step {step}");
            }
        }
    }

    #[test]
    fn static_traffic_never_changes() {
        let d = driver(Scenario::Static);
        let first = d.step_edges(0, 1);
        for step in 1..30 {
            assert_eq!(first, d.step_edges(step, 1));
        }
        assert!(d.shift_steps(30).is_empty());
    }

    #[test]
    fn hotspot_rotates_only_the_hot_tenant_each_generation() {
        let d = driver(Scenario::Hotspot);
        let before = d.step_edges(11, 1);
        let after = d.step_edges(12, 1);
        assert_ne!(before, after, "generation boundary shifts structure");
        let (_, hot_len) = d.shards()[0];
        let outside_hot = |edges: &[(u32, u32, u64)]| {
            edges
                .iter()
                .filter(|&&(a, _, _)| a as usize >= hot_len)
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(
            outside_hot(&before),
            outside_hot(&after),
            "cold tenants keep their structure"
        );
        assert_eq!(d.shift_steps(48), vec![12, 24, 36]);
    }

    #[test]
    fn hot_tenant_dominates_the_mass() {
        let d = driver(Scenario::Hotspot);
        let (_, hot_len) = d.shards()[0];
        let edges = d.step_edges(0, 1);
        let hot: u64 = edges
            .iter()
            .filter(|&&(a, _, _)| (a as usize) < hot_len)
            .map(|&(_, _, v)| v)
            .sum();
        let cold: u64 = edges
            .iter()
            .filter(|&&(a, _, _)| a as usize >= hot_len)
            .map(|&(_, _, v)| v)
            .sum();
        assert!(hot > 2 * cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn churn_rematches_one_tenant_per_generation() {
        let d = driver(Scenario::Churn);
        let shards = d.shards().to_vec();
        let tenant_of = |a: u32| {
            shards
                .iter()
                .position(|&(lo, len)| (a as usize) >= lo && (a as usize) < lo + len)
                .unwrap()
        };
        // Generation 1 (steps 12..) re-matches tenant 1 only: its edge
        // *structure* changes. Tenant 0's onboarding burst from
        // generation 0 expires at the same boundary, but that is a
        // weight change on an unchanged matching.
        let before = d.step_edges(11, 1);
        let after = d.step_edges(12, 1);
        let pick = |edges: &[(u32, u32, u64)], k: usize| {
            edges
                .iter()
                .filter(|&&(a, _, _)| tenant_of(a) == k)
                .copied()
                .collect::<Vec<_>>()
        };
        let structure = |edges: Vec<(u32, u32, u64)>| {
            edges
                .into_iter()
                .map(|(a, b, _)| (a, b))
                .collect::<Vec<_>>()
        };
        let restructured: Vec<usize> = (0..shards.len())
            .filter(|&k| structure(pick(&before, k)) != structure(pick(&after, k)))
            .collect();
        assert_eq!(restructured, vec![1]);
        // Tenant 0 keeps its matching but sheds the 3x onboarding burst.
        assert_eq!(structure(pick(&before, 0)), structure(pick(&after, 0)));
        assert!(pick(&before, 0)
            .iter()
            .zip(pick(&after, 0))
            .all(|(b, a)| b.2 == 3 * a.2));
    }

    #[test]
    fn churn_matchings_are_stable_within_a_generation() {
        let d = driver(Scenario::Churn);
        assert_eq!(d.step_edges(12, 1), d.step_edges(23, 1));
    }

    #[test]
    fn diurnal_shifts_weights_but_not_structure() {
        let d = driver(Scenario::Diurnal);
        let structure = |step| {
            d.step_edges(step, 1)
                .into_iter()
                .map(|(a, b, _)| (a, b))
                .collect::<Vec<_>>()
        };
        assert_eq!(structure(0), structure(7));
        assert_ne!(
            d.step_edges(0, 1),
            d.step_edges(6, 1),
            "per-tenant intensity follows the wave"
        );
        assert!(d.shift_steps(48).is_empty());
    }

    #[test]
    fn scenario_names_round_trip() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::parse(s.name()), Some(s));
            assert_eq!(format!("{s}"), s.name());
        }
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn tenant_count_is_clamped() {
        let d = TrafficDriver::new(TrafficConfig::new(6, 100, Scenario::Static, 0));
        assert_eq!(d.config().tenants, 3);
        assert_eq!(d.shards().len(), 3);
    }
}
