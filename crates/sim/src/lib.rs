//! # acorr-sim — simulation substrate
//!
//! Deterministic building blocks shared by every layer of the Active
//! Correlation Tracking reproduction:
//!
//! * [`time`] — simulated time ([`SimTime`]) and durations ([`SimDuration`]);
//!   the simulator never consults a wall clock.
//! * [`rng`] — a seedable, fork-able xoshiro256** generator ([`DetRng`]) so a
//!   run is a pure function of its seed.
//! * [`decisions`] — decision-point queues ([`DecisionQueue`]) prescribing
//!   scheduler choices for controllable-schedule exploration.
//! * [`pool`] — deterministic scoped-thread parallelism
//!   ([`par_map_indexed`]): seeds forked up-front, results collected in
//!   index order, bit-identical to sequential execution at any worker count.
//! * [`topology`] — cluster shape ([`ClusterConfig`]), node identities
//!   ([`NodeId`]) and thread-to-node assignments ([`Mapping`]).
//! * [`network`] — a LogP-style message cost model ([`NetworkModel`]) with
//!   full per-kind message/byte accounting ([`NetStats`]).
//! * [`faults`] — seeded deterministic fault injection ([`FaultPlan`],
//!   [`FaultInjector`]): delay jitter, bounded reordering, transient
//!   drop-with-retry, per-node slowdown windows, message duplication,
//!   checksum-detected corruption, and per-barrier-interval partition/crash
//!   actions ([`FaultAction`]), all a pure function of the plan seed.
//! * [`cost`] — CPU-side cost parameters ([`CostModel`]) for faults,
//!   protection changes, context switches, diffs and barriers.
//! * [`stats`] — summary statistics and the least-squares fit
//!   ([`LinearFit`]) used by the paper's Table 2 methodology.
//!
//! The paper ran on eight Pentium II workstations on Myrinet; this crate is
//! the substitute for that hardware. The default model parameters are chosen
//! to be era-plausible, but every experiment in the workspace reports counts
//! (misses, faults, bytes) in addition to modeled time, so conclusions do not
//! hinge on the exact constants.
//!
//! ```
//! use acorr_sim::{ClusterConfig, Mapping, NetworkModel, SimDuration};
//!
//! let cluster = ClusterConfig::new(8, 64)?;
//! let mapping = Mapping::stretch(&cluster);
//! assert_eq!(mapping.node_of(0), mapping.node_of(7));
//!
//! let net = NetworkModel::default();
//! assert!(net.transfer_time(4096) > SimDuration::ZERO);
//! # Ok::<(), acorr_sim::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod decisions;
pub mod faults;
pub mod network;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;
pub mod topology;
pub mod traffic;

pub use cost::CostModel;
pub use decisions::{DecisionQueue, DecisionRecord};
pub use faults::{
    message_checksum, Delivery, FaultAction, FaultInjector, FaultPlan, FaultPreset, FaultSpecError,
    FAULT_PRESETS,
};
pub use network::{MessageKind, NetStats, NetworkModel};
pub use pool::{available_threads, par_map_indexed, par_map_range, resolve_threads};
pub use rng::DetRng;
pub use stats::{linear_fit, mean, stddev, LinearFit};
pub use time::{SimDuration, SimTime};
pub use topology::{ClusterConfig, Mapping, NodeId, TopologyError};
pub use traffic::{Scenario, TrafficConfig, TrafficDriver};
