//! Deterministic random numbers.
//!
//! The paper's Table 2 methodology runs each application under 300 *randomly
//! generated* thread configurations; Figure 3 (c) randomly permutes thread
//! assignments. To keep every experiment reproducible, the workspace uses a
//! self-contained xoshiro256** generator seeded through splitmix64, rather
//! than an OS entropy source. [`DetRng::fork`] derives independent streams so
//! sub-experiments do not perturb each other's sequences.

/// A deterministic xoshiro256** PRNG.
///
/// ```
/// use acorr_sim::DetRng;
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert_ne!(DetRng::new(1).next_u64(), DetRng::new(2).next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent stream labelled by `stream`.
    ///
    /// Forked generators are decorrelated from the parent and from each
    /// other, and forking does not advance the parent.
    pub fn fork(&self, stream: u64) -> DetRng {
        let mut sm = self.s[0] ^ self.s[3] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)`, using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless bounded sampling.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let parent = DetRng::new(7);
        let mut f1 = parent.fork(1);
        let mut f1b = parent.fork(1);
        let mut f2 = parent.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn bounded_values_stay_in_bounds() {
        let mut rng = DetRng::new(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.next_below(bound) < bound);
            }
        }
        for _ in 0..50 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = DetRng::new(11);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of 1000 uniform draws should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(5);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // And actually permutes with overwhelming probability.
        assert_ne!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = DetRng::new(9);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn bounded_sampling_is_roughly_uniform() {
        let mut rng = DetRng::new(123);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.index(8)] += 1;
        }
        for b in buckets {
            assert!((700..1300).contains(&b), "bucket {b} far from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::new(0).next_below(0);
    }
}
