//! Cluster topology and thread-to-node mappings.
//!
//! The paper's experiments place 32-64 application threads on 4-8 nodes.
//! [`ClusterConfig`] describes the cluster shape, and [`Mapping`] is a
//! concrete assignment of threads to nodes — the object whose *cut cost* the
//! paper evaluates and whose realization is thread migration.

use crate::rng::DetRng;
use std::fmt;

/// Identifies one node (machine) of the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node's index, for use with slices.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors from constructing topologies or mappings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The cluster must contain at least one node.
    NoNodes,
    /// There must be at least one thread per node.
    TooFewThreads {
        /// Number of threads requested.
        threads: usize,
        /// Number of nodes requested.
        nodes: usize,
    },
    /// A mapping referenced a node outside the cluster.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the cluster.
        nodes: usize,
    },
    /// A mapping left some node without any thread.
    EmptyNode {
        /// The node with no threads.
        node: usize,
    },
    /// A mapping's thread count does not match the cluster.
    ThreadCountMismatch {
        /// Threads in the mapping.
        got: usize,
        /// Threads in the cluster.
        expected: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoNodes => write!(f, "cluster must contain at least one node"),
            TopologyError::TooFewThreads { threads, nodes } => {
                write!(f, "{threads} threads cannot populate {nodes} nodes")
            }
            TopologyError::NodeOutOfRange { node, nodes } => {
                write!(f, "node index {node} out of range for {nodes}-node cluster")
            }
            TopologyError::EmptyNode { node } => {
                write!(f, "mapping leaves node {node} without threads")
            }
            TopologyError::ThreadCountMismatch { got, expected } => {
                write!(f, "mapping covers {got} threads, cluster has {expected}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The shape of the simulated cluster: how many nodes, how many application
/// threads in total.
///
/// ```
/// use acorr_sim::ClusterConfig;
/// let c = ClusterConfig::new(8, 64)?;
/// assert_eq!(c.threads_per_node(), 8);
/// # Ok::<(), acorr_sim::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterConfig {
    num_nodes: usize,
    num_threads: usize,
}

impl ClusterConfig {
    /// Creates a cluster description.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoNodes`] for an empty cluster and
    /// [`TopologyError::TooFewThreads`] when there are fewer threads than
    /// nodes (every node must host at least one thread).
    pub fn new(num_nodes: usize, num_threads: usize) -> Result<Self, TopologyError> {
        if num_nodes == 0 {
            return Err(TopologyError::NoNodes);
        }
        if num_threads < num_nodes {
            return Err(TopologyError::TooFewThreads {
                threads: num_threads,
                nodes: num_nodes,
            });
        }
        Ok(ClusterConfig {
            num_nodes,
            num_threads,
        })
    }

    /// Number of nodes in the cluster.
    pub const fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total number of application threads.
    pub const fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Threads per node under a balanced mapping (rounded up).
    pub const fn threads_per_node(&self) -> usize {
        self.num_threads.div_ceil(self.num_nodes)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes as u16).map(NodeId)
    }
}

/// An assignment of every application thread to a node.
///
/// This is the object the paper's placement heuristics produce and whose cut
/// cost (pages shared across node boundaries) predicts communication.
///
/// ```
/// use acorr_sim::{ClusterConfig, Mapping};
/// let cluster = ClusterConfig::new(4, 32)?;
/// let m = Mapping::stretch(&cluster);
/// assert_eq!(m.threads_on(acorr_sim::NodeId(0)).count(), 8);
/// assert!(m.is_balanced());
/// # Ok::<(), acorr_sim::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    nodes: usize,
    assignment: Vec<NodeId>,
}

impl Mapping {
    /// Builds a mapping from an explicit per-thread assignment.
    ///
    /// # Errors
    ///
    /// Rejects assignments that reference nodes outside the cluster, leave a
    /// node empty, or cover the wrong number of threads.
    pub fn from_assignment(
        cluster: &ClusterConfig,
        assignment: Vec<NodeId>,
    ) -> Result<Self, TopologyError> {
        if assignment.len() != cluster.num_threads() {
            return Err(TopologyError::ThreadCountMismatch {
                got: assignment.len(),
                expected: cluster.num_threads(),
            });
        }
        let mut seen = vec![false; cluster.num_nodes()];
        for &n in &assignment {
            if n.idx() >= cluster.num_nodes() {
                return Err(TopologyError::NodeOutOfRange {
                    node: n.idx(),
                    nodes: cluster.num_nodes(),
                });
            }
            seen[n.idx()] = true;
        }
        if let Some(node) = seen.iter().position(|s| !s) {
            return Err(TopologyError::EmptyNode { node });
        }
        Ok(Mapping {
            nodes: cluster.num_nodes(),
            assignment,
        })
    }

    /// The *stretch* heuristic of §5.1: keep the program's thread ordering
    /// and slice it into contiguous, equal blocks — thread `i` goes to node
    /// `i / (T/N)`.
    pub fn stretch(cluster: &ClusterConfig) -> Self {
        // Balanced contiguous blocks: thread t lands on node t*N/T, which
        // distributes any remainder one-per-node.
        let n = cluster.num_nodes();
        let total = cluster.num_threads();
        let assignment = (0..total).map(|t| NodeId((t * n / total) as u16)).collect();
        Mapping {
            nodes: n,
            assignment,
        }
    }

    /// A random *balanced* mapping: a uniformly random permutation of the
    /// stretch block sizes (every node receives the same number of threads,
    /// up to rounding).
    pub fn random_balanced(cluster: &ClusterConfig, rng: &mut DetRng) -> Self {
        let mut m = Mapping::stretch(cluster);
        rng.shuffle(&mut m.assignment);
        m
    }

    /// A random, possibly *unbalanced* mapping as in the paper's Table 2
    /// methodology: "equal numbers of threads were not necessarily present on
    /// each node, although no node ever ended up with fewer than two
    /// threads".
    ///
    /// # Panics
    ///
    /// Panics if the cluster has fewer than `2 * num_nodes` threads, which
    /// makes the constraint unsatisfiable.
    pub fn random_min_two(cluster: &ClusterConfig, rng: &mut DetRng) -> Self {
        let nodes = cluster.num_nodes();
        let threads = cluster.num_threads();
        assert!(
            threads >= 2 * nodes,
            "random_min_two needs at least two threads per node"
        );
        // Pin two threads to each node, scatter the rest uniformly, then
        // shuffle which thread gets which slot.
        let mut slots: Vec<NodeId> = Vec::with_capacity(threads);
        for n in cluster.nodes() {
            slots.push(n);
            slots.push(n);
        }
        for _ in slots.len()..threads {
            slots.push(NodeId(rng.index(nodes) as u16));
        }
        rng.shuffle(&mut slots);
        Mapping {
            nodes,
            assignment: slots,
        }
    }

    /// Randomly permutes which thread holds which slot, preserving the
    /// per-node thread counts (Figure 3 (c)'s "randomized thread
    /// assignments").
    pub fn permuted(&self, rng: &mut DetRng) -> Mapping {
        let mut m = self.clone();
        rng.shuffle(&mut m.assignment);
        m
    }

    /// The node hosting `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn node_of(&self, thread: usize) -> NodeId {
        self.assignment[thread]
    }

    /// Moves one thread to a new node, in place. The caller is responsible
    /// for keeping every node non-empty.
    pub fn set_node_of(&mut self, thread: usize, node: NodeId) {
        assert!(node.idx() < self.nodes, "node out of range");
        self.assignment[thread] = node;
    }

    /// Number of threads covered by this mapping.
    pub fn num_threads(&self) -> usize {
        self.assignment.len()
    }

    /// Number of nodes in the underlying cluster.
    pub const fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Iterates over the threads assigned to `node`.
    pub fn threads_on(&self, node: NodeId) -> impl Iterator<Item = usize> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |(_, &n)| n == node)
            .map(|(t, _)| t)
    }

    /// Per-node thread counts.
    pub fn node_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes];
        for n in &self.assignment {
            counts[n.idx()] += 1;
        }
        counts
    }

    /// True when every node hosts the same number of threads (up to the
    /// rounding slack of one when `threads % nodes != 0`).
    pub fn is_balanced(&self) -> bool {
        let counts = self.node_counts();
        let min = counts.iter().min().copied().unwrap_or(0);
        let max = counts.iter().max().copied().unwrap_or(0);
        max - min <= usize::from(!self.assignment.len().is_multiple_of(self.nodes))
    }

    /// Number of threads whose host differs between `self` and `other` — the
    /// migrations needed to reconfigure from `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if the mappings cover different thread counts.
    pub fn moves_from(&self, other: &Mapping) -> usize {
        assert_eq!(
            self.assignment.len(),
            other.assignment.len(),
            "mappings must cover the same threads"
        );
        self.assignment
            .iter()
            .zip(&other.assignment)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// The raw per-thread assignment.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.assignment
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, n) in self.assignment.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", n.0)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(nodes: usize, threads: usize) -> ClusterConfig {
        ClusterConfig::new(nodes, threads).unwrap()
    }

    #[test]
    fn cluster_validation() {
        assert_eq!(ClusterConfig::new(0, 4), Err(TopologyError::NoNodes));
        assert_eq!(
            ClusterConfig::new(8, 4),
            Err(TopologyError::TooFewThreads {
                threads: 4,
                nodes: 8
            })
        );
        assert!(ClusterConfig::new(8, 64).is_ok());
        assert_eq!(cluster(8, 64).threads_per_node(), 8);
        assert_eq!(cluster(3, 8).threads_per_node(), 3);
    }

    #[test]
    fn stretch_slices_contiguously() {
        let m = Mapping::stretch(&cluster(4, 32));
        for t in 0..32 {
            assert_eq!(m.node_of(t), NodeId((t / 8) as u16));
        }
        assert!(m.is_balanced());
        assert_eq!(m.node_counts(), vec![8, 8, 8, 8]);
    }

    #[test]
    fn stretch_handles_ragged_division() {
        let m = Mapping::stretch(&cluster(3, 8));
        assert_eq!(m.node_counts(), vec![3, 3, 2]);
        assert!(m.is_balanced());
    }

    #[test]
    fn random_balanced_preserves_counts() {
        let mut rng = DetRng::new(1);
        let m = Mapping::random_balanced(&cluster(8, 64), &mut rng);
        assert_eq!(m.node_counts(), vec![8; 8]);
        assert_ne!(m, Mapping::stretch(&cluster(8, 64)));
    }

    #[test]
    fn random_min_two_honors_floor() {
        let rng = DetRng::new(2);
        for seed in 0..50 {
            let m = Mapping::random_min_two(&cluster(8, 64), &mut rng.fork(seed));
            assert!(m.node_counts().iter().all(|&c| c >= 2), "{m}");
            assert_eq!(m.num_threads(), 64);
        }
    }

    #[test]
    fn random_min_two_is_actually_unbalanced_sometimes() {
        let rng = DetRng::new(3);
        let any_unbalanced = (0..20)
            .any(|s| !Mapping::random_min_two(&cluster(8, 64), &mut rng.fork(s)).is_balanced());
        assert!(any_unbalanced);
    }

    #[test]
    fn from_assignment_validates() {
        let c = cluster(2, 4);
        let ok = Mapping::from_assignment(&c, vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)]);
        assert!(ok.is_ok());
        assert_eq!(
            Mapping::from_assignment(&c, vec![NodeId(0); 3]),
            Err(TopologyError::ThreadCountMismatch {
                got: 3,
                expected: 4
            })
        );
        assert_eq!(
            Mapping::from_assignment(&c, vec![NodeId(0), NodeId(0), NodeId(0), NodeId(5)]),
            Err(TopologyError::NodeOutOfRange { node: 5, nodes: 2 })
        );
        assert_eq!(
            Mapping::from_assignment(&c, vec![NodeId(0); 4]),
            Err(TopologyError::EmptyNode { node: 1 })
        );
    }

    #[test]
    fn permutation_preserves_node_counts() {
        let mut rng = DetRng::new(4);
        let base = Mapping::stretch(&cluster(4, 32));
        let p = base.permuted(&mut rng);
        let mut a = base.node_counts();
        let mut b = p.node_counts();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(p.moves_from(&base) > 0);
    }

    #[test]
    fn moves_from_counts_migrations() {
        let c = cluster(2, 4);
        let a =
            Mapping::from_assignment(&c, vec![NodeId(0), NodeId(0), NodeId(1), NodeId(1)]).unwrap();
        let b =
            Mapping::from_assignment(&c, vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)]).unwrap();
        assert_eq!(a.moves_from(&b), 2);
        assert_eq!(a.moves_from(&a), 0);
    }

    #[test]
    fn threads_on_lists_members() {
        let m = Mapping::stretch(&cluster(4, 8));
        assert_eq!(m.threads_on(NodeId(1)).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = TopologyError::EmptyNode { node: 3 };
        assert!(e.to_string().contains("node 3"));
    }
}
