//! Simulated time.
//!
//! The whole reproduction runs on virtual time: [`SimTime`] is an instant
//! (nanoseconds since simulation start) and [`SimDuration`] a span. Both are
//! thin newtypes over `u64` so the engine can add costs without floating
//! point drift, while reports convert to seconds at the edge.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use acorr_sim::SimDuration;
/// let d = SimDuration::from_micros(250) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 250_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((s * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns true when this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant of simulated time: nanoseconds since simulation start.
///
/// ```
/// use acorr_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant, saturating at zero.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_round_trip() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(4);
        assert_eq!((a + b).as_micros(), 14);
        assert_eq!((a - b).as_micros(), 6);
        assert_eq!((a * 3).as_micros(), 30);
        assert_eq!((a / 2).as_micros(), 5);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total.as_micros(), 18);
    }

    #[test]
    fn time_and_duration_interact() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_nanos(7);
        let u = t + SimDuration::from_nanos(3);
        assert_eq!(u - t, SimDuration::from_nanos(3));
        assert_eq!(SimTime::ZERO.saturating_since(u), SimDuration::ZERO);
        assert_eq!(u.saturating_since(SimTime::ZERO).as_nanos(), 10);
    }

    #[test]
    fn ordering_is_chronological() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert!(early < late);
        assert_eq!(early.max(late), late);
        assert!(SimTime::MAX > late);
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert!(SimTime::from_nanos(1500).to_string().starts_with("t+"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn zero_checks() {
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_nanos(1).is_zero());
    }
}
