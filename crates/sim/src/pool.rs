//! Deterministic parallel execution.
//!
//! The paper's randomized methodologies are embarrassingly parallel: Table 2
//! alone runs 300 random configurations per application, and every run is a
//! pure function of `(program, config, seed)`. This module provides the one
//! primitive the experiment drivers need — [`par_map_indexed`] — built only
//! on [`std::thread::scope`] so the workspace stays free of external
//! dependencies.
//!
//! # Determinism contract
//!
//! Output is **bit-identical** for every worker count, including the
//! sequential `threads <= 1` fallback, because:
//!
//! 1. **Seeds are forked up-front.** Callers derive one independent RNG
//!    stream per index *before* submitting work (see
//!    [`DetRng::fork`](crate::DetRng::fork)); no worker ever observes
//!    another worker's draws.
//! 2. **Work is a pure function of its index.** The closure receives
//!    `(index, item)` and shares nothing mutable.
//! 3. **Results are collected in index order.** Each result lands in the
//!    slot of its index regardless of which worker computed it or when; the
//!    returned `Vec` is ordered by index, not by completion.
//!
//! Scheduling (which worker claims which index) is the only nondeterminism,
//! and it is unobservable in the result.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads the host offers, with a sequential fallback
/// of 1 when the parallelism cannot be queried.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a user-facing thread-count option: `0` means "use everything
/// the host offers" ([`available_threads`]), any other value is taken
/// literally (`1` = exact sequential execution).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning results **in index order**.
///
/// `threads <= 1` (or fewer than two items) runs the exact sequential path
/// on the calling thread. Otherwise `min(threads, items.len())` workers
/// claim indices from a shared counter and deposit each result into the
/// slot of its index, so the output is bit-identical to the sequential
/// path whenever `f` is a pure function of `(index, item)` — see the
/// [module docs](self) for the full determinism contract.
///
/// # Panics
///
/// Panics (after all workers are joined) if `f` panics for any item.
pub fn par_map_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }
    let workers = threads.min(n);
    // Uncontended per-slot mutexes: each item is claimed exactly once (the
    // atomic counter hands out unique indices) and each result slot is
    // written exactly once, so the locks only pay their fast path.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("index handed out once");
                    let result = f(i, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                })
            })
            .collect();
        // Join explicitly so a worker panic resurfaces with its original
        // payload instead of scope's generic "a scoped thread panicked".
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was computed")
        })
        .collect()
}

/// [`par_map_indexed`] over the bare indices `0..count`, for workloads that
/// need no per-item payload (the index selects the forked seed).
pub fn par_map_range<R, F>(threads: usize, count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_indexed(threads, vec![(); count], |i, ()| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DetRng;

    #[test]
    fn preserves_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = par_map_indexed(threads, (0..100).collect(), |i, x: i32| {
                assert_eq!(i as i32, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn matches_sequential_for_forked_seeds() {
        let rng = DetRng::new(99);
        let run = |threads| par_map_range(threads, 64, |i| rng.fork(i as u64).next_u64());
        let sequential = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), sequential, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u8> = par_map_indexed(8, Vec::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map_range(8, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        assert_eq!(par_map_range(64, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn resolve_threads_maps_zero_to_auto() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn worker_panics_propagate() {
        par_map_range(4, 16, |i| {
            if i == 9 {
                panic!("deliberate");
            }
            i
        });
    }
}
