//! Summary statistics.
//!
//! Table 2 of the paper fits `remote misses = slope * cut_cost + intercept`
//! over 300 random configurations per application and reports the slope, the
//! intercept and the correlation coefficient. [`linear_fit`] implements that
//! ordinary least-squares fit; [`mean`] and [`stddev`] support the reports.

use std::fmt;

/// Result of an ordinary least-squares fit of `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted y-intercept.
    pub intercept: f64,
    /// Pearson correlation coefficient `r` between x and y.
    pub r: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl fmt::Display for LinearFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y = {:.3}x + {:.1} (r = {:.3}, n = {})",
            self.slope, self.intercept, self.r, self.n
        )
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for slices shorter than 2.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Least-squares fit of `ys` against `xs`, plus Pearson's r.
///
/// Returns `None` when there are fewer than two points, when the slices
/// disagree in length, or when `xs` has zero variance (vertical fit).
///
/// ```
/// use acorr_sim::linear_fit;
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [1.0, 3.0, 5.0, 7.0];
/// let fit = linear_fit(&xs, &ys).unwrap();
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!((fit.r - 1.0).abs() < 1e-12);
/// ```
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r = if syy == 0.0 {
        // y constant: perfectly predicted by any slope-0 line.
        if sxy == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    };
    let _ = n;
    Some(LinearFit {
        slope,
        intercept,
        r,
        n: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_line_recovered() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.1 * x - 21.4).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 4.1).abs() < 1e-9);
        assert!((fit.intercept + 21.4).abs() < 1e-6);
        assert!((fit.r - 1.0).abs() < 1e-12);
        assert_eq!(fit.n, 100);
    }

    #[test]
    fn anticorrelation_gives_negative_r() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [9.0, 6.0, 3.0, 0.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.slope < 0.0);
        assert!((fit.r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_reduces_r() {
        // Deterministic pseudo-noise.
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + if i % 2 == 0 { 40.0 } else { -40.0 })
            .collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.r < 1.0 && fit.r > 0.9);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(linear_fit(&[1.0], &[1.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
        assert!(linear_fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn constant_y_is_perfectly_fit() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r, 1.0);
    }

    #[test]
    fn display_formats() {
        let fit = linear_fit(&[0.0, 1.0], &[0.0, 2.0]).unwrap();
        let s = fit.to_string();
        assert!(s.contains("2.000x"));
        assert!(s.contains("n = 2"));
    }
}
