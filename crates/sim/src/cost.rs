//! CPU-side cost model.
//!
//! Everything the DSM engine does locally — delivering a segmentation
//! violation to a handler, changing page protections, creating a twin,
//! building or applying a diff, switching threads — takes simulated time
//! drawn from this table. Values default to an era-plausible 266 MHz
//! Pentium II running Linux 2.0 (the paper's testbed), but every field is
//! public so experiments can run sensitivity sweeps.

use crate::time::SimDuration;

/// Per-operation CPU costs charged by the DSM engine.
///
/// ```
/// use acorr_sim::{CostModel, SimDuration};
/// let mut cost = CostModel::default();
/// // Ablation: a machine with free page faults.
/// cost.tracking_fault = SimDuration::ZERO;
/// assert!(cost.coherence_fault > SimDuration::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Handling one *correlation fault* during active tracking: trap
    /// delivery, setting the access-bitmap bit, restoring the protection.
    pub tracking_fault: SimDuration,
    /// Local part of handling a coherence fault (trap delivery and protocol
    /// bookkeeping); the remote fetch itself is priced by the network model.
    pub coherence_fault: SimDuration,
    /// Creating a twin (copying a page before the first write).
    pub twin_create: SimDuration,
    /// Building a diff at a release point, per dirty byte.
    pub diff_create_ns_per_byte: f64,
    /// Applying a fetched diff, per byte.
    pub diff_apply_ns_per_byte: f64,
    /// Fixed cost of an `mprotect`-style protection sweep over the whole
    /// shared region (one syscall)...
    pub protect_sweep_base: SimDuration,
    /// ...plus this much per page touched by the sweep.
    pub protect_sweep_per_page: SimDuration,
    /// Switching between runnable threads on one node.
    pub context_switch: SimDuration,
    /// Fixed barrier cost at the manager...
    pub barrier_base: SimDuration,
    /// ...plus this much per participating node.
    pub barrier_per_node: SimDuration,
    /// First-touch cost of accessing a mapped page (TLB/cache effects).
    pub page_touch: SimDuration,
    /// Granting a lock to a thread on the node that already holds it.
    pub lock_local: SimDuration,
    /// Bytes copied when migrating one thread (its stack), priced by the
    /// network model.
    pub migration_stack_bytes: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            tracking_fault: SimDuration::from_micros(60),
            coherence_fault: SimDuration::from_micros(70),
            twin_create: SimDuration::from_micros(30),
            diff_create_ns_per_byte: 12.0,
            diff_apply_ns_per_byte: 8.0,
            protect_sweep_base: SimDuration::from_micros(15),
            protect_sweep_per_page: SimDuration::from_nanos(400),
            context_switch: SimDuration::from_micros(6),
            barrier_base: SimDuration::from_micros(150),
            barrier_per_node: SimDuration::from_micros(25),
            page_touch: SimDuration::from_nanos(300),
            lock_local: SimDuration::from_micros(2),
            migration_stack_bytes: 64 * 1024,
        }
    }
}

impl CostModel {
    /// Cost of one protection sweep over `pages` pages (arming or disarming
    /// the correlation-tracking read protection).
    pub fn protect_sweep(&self, pages: u64) -> SimDuration {
        self.protect_sweep_base + self.protect_sweep_per_page * pages
    }

    /// Cost of creating a diff of `bytes` dirty bytes.
    pub fn diff_create(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos((bytes as f64 * self.diff_create_ns_per_byte) as u64)
    }

    /// Cost of applying `bytes` of fetched diff data.
    pub fn diff_apply(&self, bytes: u64) -> SimDuration {
        SimDuration::from_nanos((bytes as f64 * self.diff_apply_ns_per_byte) as u64)
    }

    /// Manager-side cost of releasing a barrier across `nodes` nodes.
    pub fn barrier(&self, nodes: u64) -> SimDuration {
        self.barrier_base + self.barrier_per_node * nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert!(c.tracking_fault < c.coherence_fault);
        assert!(c.context_switch < c.tracking_fault);
        assert!(c.migration_stack_bytes >= 4096);
    }

    #[test]
    fn sweep_scales_with_pages() {
        let c = CostModel::default();
        let small = c.protect_sweep(10);
        let large = c.protect_sweep(4000);
        assert!(large > small);
        assert_eq!(
            (large - c.protect_sweep_base).as_nanos(),
            c.protect_sweep_per_page.as_nanos() * 4000
        );
    }

    #[test]
    fn diff_costs_are_linear() {
        let c = CostModel::default();
        assert_eq!(c.diff_create(0), SimDuration::ZERO);
        let one = c.diff_create(1000).as_nanos();
        let two = c.diff_create(2000).as_nanos();
        assert_eq!(two, one * 2);
        assert!(c.diff_apply(1000) < c.diff_create(1000));
    }

    #[test]
    fn barrier_scales_with_nodes() {
        let c = CostModel::default();
        assert!(c.barrier(8) > c.barrier(4));
        assert_eq!(
            (c.barrier(8) - c.barrier(4)).as_nanos(),
            c.barrier_per_node.as_nanos() * 4
        );
    }
}
