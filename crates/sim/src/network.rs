//! Network cost model and traffic accounting.
//!
//! The paper's testbed interconnect was Myrinet, with remote page fetches in
//! the hundreds of microseconds. [`NetworkModel`] is a LogP-style substitute:
//! every message pays a fixed latency, a per-byte serialization cost, and a
//! small per-message CPU overhead. [`NetStats`] accumulates the message and
//! byte counts per [`MessageKind`] — these counters are what Tables 2 and 6
//! report ("remote misses", "Total Mbytes", "Diff Mbytes").

use crate::time::SimDuration;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Classifies simulated protocol messages for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// Full-page data fetch (a remote miss resolved from the owner).
    PageFetch,
    /// Diff fetch (a remote miss resolved by applying writers' diffs).
    DiffFetch,
    /// Write-notice exchange at synchronization points.
    WriteNotice,
    /// Barrier arrival/release control traffic.
    Barrier,
    /// Lock request/grant control traffic.
    Lock,
    /// Thread-migration payload (stack copy).
    Migration,
    /// Garbage-collection consolidation traffic.
    Gc,
}

impl MessageKind {
    /// All kinds, in display order.
    pub const ALL: [MessageKind; 7] = [
        MessageKind::PageFetch,
        MessageKind::DiffFetch,
        MessageKind::WriteNotice,
        MessageKind::Barrier,
        MessageKind::Lock,
        MessageKind::Migration,
        MessageKind::Gc,
    ];

    const fn index(self) -> usize {
        match self {
            MessageKind::PageFetch => 0,
            MessageKind::DiffFetch => 1,
            MessageKind::WriteNotice => 2,
            MessageKind::Barrier => 3,
            MessageKind::Lock => 4,
            MessageKind::Migration => 5,
            MessageKind::Gc => 6,
        }
    }

    /// A short label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            MessageKind::PageFetch => "page",
            MessageKind::DiffFetch => "diff",
            MessageKind::WriteNotice => "notice",
            MessageKind::Barrier => "barrier",
            MessageKind::Lock => "lock",
            MessageKind::Migration => "migration",
            MessageKind::Gc => "gc",
        }
    }
}

/// LogP-style point-to-point message cost model.
///
/// The time to deliver a message of `n` payload bytes is
/// `latency + n * ns_per_byte + per_message_cpu`.
///
/// ```
/// use acorr_sim::{NetworkModel, SimDuration};
/// let net = NetworkModel::default();
/// let small = net.transfer_time(64);
/// let page = net.transfer_time(4096);
/// assert!(page > small);
/// assert!(page > SimDuration::from_micros(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency (wire + protocol stack).
    pub latency: SimDuration,
    /// Serialization cost per payload byte, in nanoseconds.
    pub ns_per_byte: f64,
    /// Fixed CPU cost charged to the requester per message.
    pub per_message_cpu: SimDuration,
}

impl Default for NetworkModel {
    /// Era-plausible Myrinet-class defaults: 60 us latency, ~33 MB/s
    /// effective bandwidth (30 ns/byte), 10 us per-message CPU.
    fn default() -> Self {
        NetworkModel {
            latency: SimDuration::from_micros(60),
            ns_per_byte: 30.0,
            per_message_cpu: SimDuration::from_micros(10),
        }
    }
}

impl NetworkModel {
    /// Myrinet-class parameters (the paper's testbed interconnect); equal to
    /// [`NetworkModel::default`].
    pub fn myrinet() -> Self {
        NetworkModel::default()
    }

    /// Commodity-Ethernet-class parameters of the era: higher latency,
    /// lower bandwidth. Useful for sensitivity studies — placement matters
    /// more on slower networks.
    pub fn ethernet() -> Self {
        NetworkModel {
            latency: SimDuration::from_micros(400),
            ns_per_byte: 100.0,
            per_message_cpu: SimDuration::from_micros(25),
        }
    }

    /// Time for a request/response exchange carrying `payload_bytes` of data
    /// back to the requester. Charged entirely to the requesting node (the
    /// server-side CPU is assumed overlapped).
    pub fn transfer_time(&self, payload_bytes: u64) -> SimDuration {
        let wire = SimDuration::from_nanos((payload_bytes as f64 * self.ns_per_byte) as u64);
        // Request latency + response latency + payload + fixed CPU.
        self.latency + self.latency + wire + self.per_message_cpu
    }

    /// Time for a one-way control message (no payload to speak of).
    pub fn control_time(&self) -> SimDuration {
        self.latency + self.per_message_cpu
    }
}

/// Accumulated network traffic, split by [`MessageKind`].
///
/// First-sends and fault-induced retransmissions are counted separately:
/// the paper-reproduction columns ([`NetStats::data_bytes`],
/// [`NetStats::diff_bytes`], per-kind [`NetStats::messages`]) cover
/// first-sends only, so fault-injected runs do not inflate reproduced
/// numbers; retransmitted traffic is reported through the `retrans_*`
/// accessors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    messages: [u64; 7],
    bytes: [u64; 7],
    retrans_messages: [u64; 7],
    retrans_bytes: [u64; 7],
}

impl NetStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Records one message of `kind` carrying `bytes` of payload.
    pub fn record(&mut self, kind: MessageKind, bytes: u64) {
        self.messages[kind.index()] += 1;
        self.bytes[kind.index()] += bytes;
    }

    /// Records `times` retransmissions of a message of `kind` carrying
    /// `bytes` of payload (the first send goes through [`NetStats::record`]).
    pub fn record_retrans(&mut self, kind: MessageKind, bytes: u64, times: u64) {
        self.retrans_messages[kind.index()] += times;
        self.retrans_bytes[kind.index()] += bytes * times;
    }

    /// Retransmitted messages of one kind.
    pub fn retrans_messages(&self, kind: MessageKind) -> u64 {
        self.retrans_messages[kind.index()]
    }

    /// Retransmitted payload bytes of one kind.
    pub fn retrans_bytes(&self, kind: MessageKind) -> u64 {
        self.retrans_bytes[kind.index()]
    }

    /// Total retransmitted messages across all kinds.
    pub fn total_retrans_messages(&self) -> u64 {
        self.retrans_messages.iter().sum()
    }

    /// Total retransmitted payload bytes across all kinds.
    pub fn total_retrans_bytes(&self) -> u64 {
        self.retrans_bytes.iter().sum()
    }

    /// Messages of one kind.
    pub fn messages(&self, kind: MessageKind) -> u64 {
        self.messages[kind.index()]
    }

    /// Payload bytes of one kind.
    pub fn bytes(&self, kind: MessageKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// Total messages across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Total payload bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes moved by data-carrying messages (page + diff + migration + gc);
    /// the paper's "Total Mbytes" column counts data traffic.
    pub fn data_bytes(&self) -> u64 {
        self.bytes(MessageKind::PageFetch)
            + self.bytes(MessageKind::DiffFetch)
            + self.bytes(MessageKind::Migration)
            + self.bytes(MessageKind::Gc)
            + self.bytes(MessageKind::WriteNotice)
    }

    /// Bytes moved as diffs (the paper's "Diff Mbytes" column).
    pub fn diff_bytes(&self) -> u64 {
        self.bytes(MessageKind::DiffFetch) + self.bytes(MessageKind::Gc)
    }
}

impl Add for NetStats {
    type Output = NetStats;
    fn add(self, rhs: NetStats) -> NetStats {
        let mut out = self;
        out += rhs;
        out
    }
}

/// Counter difference between two snapshots of the *same* accumulating
/// ledger (`later - earlier`), used to derive per-interval traffic. All
/// counters are monotonic, and subtraction saturates so misuse yields zeros
/// rather than a panic.
impl Sub for NetStats {
    type Output = NetStats;
    fn sub(self, rhs: NetStats) -> NetStats {
        let mut out = NetStats::new();
        for i in 0..7 {
            out.messages[i] = self.messages[i].saturating_sub(rhs.messages[i]);
            out.bytes[i] = self.bytes[i].saturating_sub(rhs.bytes[i]);
            out.retrans_messages[i] =
                self.retrans_messages[i].saturating_sub(rhs.retrans_messages[i]);
            out.retrans_bytes[i] = self.retrans_bytes[i].saturating_sub(rhs.retrans_bytes[i]);
        }
        out
    }
}

impl AddAssign for NetStats {
    fn add_assign(&mut self, rhs: NetStats) {
        for i in 0..7 {
            self.messages[i] += rhs.messages[i];
            self.bytes[i] += rhs.bytes[i];
            self.retrans_messages[i] += rhs.retrans_messages[i];
            self.retrans_bytes[i] += rhs.retrans_bytes[i];
        }
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{{")?;
        for (i, kind) in MessageKind::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}: {} msgs / {} B",
                kind.label(),
                self.messages(*kind),
                self.bytes(*kind)
            )?;
        }
        if self.total_retrans_messages() > 0 {
            write!(
                f,
                ", retrans: {} msgs / {} B",
                self.total_retrans_messages(),
                self.total_retrans_bytes()
            )?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_payload() {
        let net = NetworkModel::default();
        let t0 = net.transfer_time(0);
        let t1 = net.transfer_time(4096);
        let t2 = net.transfer_time(8192);
        assert!(t0 < t1 && t1 < t2);
        // Payload component is linear.
        assert_eq!((t2 - t1).as_nanos(), (t1 - t0).as_nanos());
    }

    #[test]
    fn control_cheaper_than_page() {
        let net = NetworkModel::default();
        assert!(net.control_time() < net.transfer_time(4096));
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let myri = NetworkModel::myrinet();
        let eth = NetworkModel::ethernet();
        assert!(eth.transfer_time(4096) > myri.transfer_time(4096) * 2);
        assert_eq!(myri, NetworkModel::default());
    }

    #[test]
    fn stats_accumulate_per_kind() {
        let mut s = NetStats::new();
        s.record(MessageKind::PageFetch, 4096);
        s.record(MessageKind::PageFetch, 4096);
        s.record(MessageKind::DiffFetch, 128);
        assert_eq!(s.messages(MessageKind::PageFetch), 2);
        assert_eq!(s.bytes(MessageKind::PageFetch), 8192);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 8320);
        assert_eq!(s.diff_bytes(), 128);
        assert_eq!(s.data_bytes(), 8320);
    }

    #[test]
    fn stats_add() {
        let mut a = NetStats::new();
        a.record(MessageKind::Lock, 8);
        let mut b = NetStats::new();
        b.record(MessageKind::Lock, 8);
        b.record(MessageKind::Barrier, 0);
        let c = a + b;
        assert_eq!(c.messages(MessageKind::Lock), 2);
        assert_eq!(c.messages(MessageKind::Barrier), 1);
        assert_eq!(c.bytes(MessageKind::Lock), 16);
    }

    #[test]
    fn display_mentions_every_kind() {
        let s = NetStats::new();
        let txt = s.to_string();
        for kind in MessageKind::ALL {
            assert!(txt.contains(kind.label()), "missing {}", kind.label());
        }
    }

    #[test]
    fn retransmissions_are_counted_separately() {
        let mut s = NetStats::new();
        s.record(MessageKind::PageFetch, 4096);
        s.record_retrans(MessageKind::PageFetch, 4096, 2);
        // Paper-reproduction counters see the first send only.
        assert_eq!(s.messages(MessageKind::PageFetch), 1);
        assert_eq!(s.bytes(MessageKind::PageFetch), 4096);
        assert_eq!(s.data_bytes(), 4096);
        assert_eq!(s.total_bytes(), 4096);
        // Retransmitted traffic is reported on its own.
        assert_eq!(s.retrans_messages(MessageKind::PageFetch), 2);
        assert_eq!(s.retrans_bytes(MessageKind::PageFetch), 8192);
        assert_eq!(s.total_retrans_messages(), 2);
        assert_eq!(s.total_retrans_bytes(), 8192);
        // They accumulate and survive display.
        let sum = s + s;
        assert_eq!(sum.retrans_messages(MessageKind::PageFetch), 4);
        assert!(sum.to_string().contains("retrans"));
        assert!(!NetStats::new().to_string().contains("retrans"));
    }

    #[test]
    fn snapshot_subtraction_isolates_an_interval() {
        let mut earlier = NetStats::new();
        earlier.record(MessageKind::PageFetch, 4096);
        earlier.record_retrans(MessageKind::PageFetch, 4096, 1);
        let mut later = earlier;
        later.record(MessageKind::DiffFetch, 100);
        later.record(MessageKind::PageFetch, 4096);
        let delta = later - earlier;
        assert_eq!(delta.messages(MessageKind::PageFetch), 1);
        assert_eq!(delta.messages(MessageKind::DiffFetch), 1);
        assert_eq!(delta.total_bytes(), 4196);
        assert_eq!(delta.total_retrans_messages(), 0);
        // Misuse saturates to zero.
        assert_eq!((earlier - later).total_bytes(), 0);
    }

    #[test]
    fn barrier_and_lock_are_control_not_data() {
        let mut s = NetStats::new();
        s.record(MessageKind::Barrier, 100);
        s.record(MessageKind::Lock, 100);
        assert_eq!(s.data_bytes(), 0);
    }
}
