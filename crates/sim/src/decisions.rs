//! Decision-point queues for controllable scheduling.
//!
//! A deterministic engine occasionally reaches a point where several
//! outcomes are all legal — which ready thread to dispatch next, which
//! queued waiter receives a released lock. The engine's built-in policy is
//! always choice `0` (FIFO); a schedule explorer instead *prescribes* the
//! choices up front. A [`DecisionQueue`] holds that prescription: a finite
//! prefix of explicit choices, then a tail policy (the default choice `0`,
//! or a forked [`DetRng`] stream for seeded random exploration).
//!
//! The queue is a pure chooser — it holds no log. Recording what was chosen
//! (so a failing random run can be replayed and shrunk) is the caller's
//! job; [`DecisionRecord`] is the agreed unit of that log.
//!
//! ```
//! use acorr_sim::{DecisionQueue, DetRng};
//!
//! let mut q = DecisionQueue::new(vec![2, 0], None);
//! assert_eq!(q.next(3), 2); // prescribed
//! assert_eq!(q.next(3), 0); // prescribed
//! assert_eq!(q.next(3), 0); // past the prefix: default
//!
//! let mut r = DecisionQueue::new(vec![], Some(DetRng::new(7)));
//! assert!(r.next(4) < 4); // past the prefix: seeded random
//! ```

use crate::rng::DetRng;
use std::collections::VecDeque;

/// One consulted decision point: how many alternatives were available and
/// which was taken. A sequence of records *is* a schedule — replaying the
/// `chosen` column through a fresh [`DecisionQueue`] reproduces the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Number of legal alternatives at this point (always ≥ 2; points with
    /// a single option are never consulted).
    pub alternatives: u32,
    /// Index chosen, in `0..alternatives`; `0` is the engine's default.
    pub chosen: u32,
}

/// A prescription of scheduling choices: explicit prefix, then a tail.
#[derive(Debug, Clone)]
pub struct DecisionQueue {
    prefix: VecDeque<u32>,
    tail: Option<DetRng>,
}

impl DecisionQueue {
    /// Creates a queue that yields `prefix` first, then falls back to the
    /// default choice `0` — or, when `tail_rng` is given, to uniformly
    /// random choices drawn from that stream.
    pub fn new(prefix: Vec<u32>, tail_rng: Option<DetRng>) -> Self {
        DecisionQueue {
            prefix: prefix.into(),
            tail: tail_rng,
        }
    }

    /// Returns the next choice among `alternatives` options. Prescribed
    /// choices beyond the range are clamped to the last alternative, so a
    /// stale prefix (replayed against a slightly different run) degrades
    /// gracefully instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is zero — a decision point with no options
    /// is a caller bug.
    pub fn next(&mut self, alternatives: usize) -> usize {
        assert!(alternatives > 0, "decision point with no alternatives");
        match self.prefix.pop_front() {
            Some(c) => (c as usize).min(alternatives - 1),
            None => match &mut self.tail {
                Some(rng) => rng.index(alternatives),
                None => 0,
            },
        }
    }

    /// Prescribed choices not yet consumed.
    pub fn remaining(&self) -> usize {
        self.prefix.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_then_default_tail() {
        let mut q = DecisionQueue::new(vec![1, 3, 0], None);
        assert_eq!(q.remaining(), 3);
        assert_eq!(q.next(2), 1);
        assert_eq!(q.next(2), 1); // 3 clamped to alternatives-1
        assert_eq!(q.next(5), 0);
        assert_eq!(q.remaining(), 0);
        for n in 1..5 {
            assert_eq!(q.next(n), 0, "default tail is always 0");
        }
    }

    #[test]
    fn random_tail_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut q = DecisionQueue::new(vec![], Some(DetRng::new(seed)));
            (0..32).map(|_| q.next(7)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
        assert!(draw(9).iter().all(|&c| c < 7));
    }

    #[test]
    #[should_panic(expected = "no alternatives")]
    fn zero_alternatives_panics() {
        DecisionQueue::new(vec![], None).next(0);
    }
}
