//! # acorr-cli — command-line front end
//!
//! A small CLI over the `acorr` library for the workflows a DSM operator or
//! performance engineer actually repeats:
//!
//! ```text
//! acorr track   --app SOR --threads 64 --nodes 8 [--format ascii|pgm|csv|svg] [--out FILE]
//! acorr profile --app FFT6 --threads 64 | --csv corr.csv
//! acorr place   --app LU2k --threads 64 --nodes 8 --strategy min-cost | --csv corr.csv
//! acorr run     --app Ocean --threads 64 --nodes 8 --strategy min-cost --iters 10
//! acorr overhead --app Water --threads 64 --nodes 8
//! acorr explore --app sor --budget 500 [--mode random|systematic] [--replay TOKEN]
//! acorr apps
//! ```
//!
//! Every command is a thin composition of public library calls — the CLI is
//! also living documentation of the API.
//!
//! Commands that run experiments accept `--jobs N`, the worker-thread count
//! of the deterministic parallel runner (`--threads` already names the
//! *simulated application* thread count, so the host-parallelism flag is
//! spelled `--jobs`). The default `0` uses all available cores; `--jobs 1`
//! is the exact sequential path. Results are bit-identical either way —
//! every sample forks its own RNG stream and results are collected in
//! index order (see `acorr::sim::pool`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;

use acorr::apps;
use acorr::experiment::Workbench;
use acorr::place::{place, Strategy};
use acorr::sim::{DetRng, FaultPlan};
use acorr::track::{
    compatible_node_sizes, cut_cost, page_report, profile_map, render_ascii, render_csv,
    render_pgm, render_svg, CorrelationMatrix, MapStyle,
};
use args::Args;

/// Runs one CLI invocation, returning the text to print.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments or engine failures.
pub fn run(args: &Args) -> Result<String, String> {
    match args.command() {
        "apps" => Ok(list_apps()),
        "track" => track(args),
        "profile" => profile(args),
        "place" => place_cmd(args),
        "run" => run_cmd(args),
        "serve" => serve_cmd(args),
        "report" => report(args),
        "analyze" => analyze(args),
        "overhead" => overhead(args),
        "explore" => explore(args),
        "hot" => hot(args),
        "verify" => verify(args),
        "help" | "--help" => Ok(usage()),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "\
acorr — Active Correlation Tracking toolkit

USAGE:
  acorr apps
  acorr track    --app NAME [--threads N] [--nodes N] [--format ascii|pgm|csv|svg] [--out FILE]
  acorr profile  --app NAME [--threads N] | --csv FILE
  acorr place    --app NAME [--threads N] [--nodes N] [--strategy S] | --csv FILE --nodes N
                 | --scale THREADSxNODES [--degree N] [--seed N] [--jobs N]
  acorr run      --app NAME [--threads N] [--nodes N] [--strategy S] [--iters N] [--faults SPEC]
                 [--obs-dir DIR]
  acorr serve    --scenario static|hotspot|churn|diurnal [--threads N] [--nodes N]
                 [--tenants N] [--steps N] [--window N] [--period N]
                 [--policy greedy|interchange] [--pages-per-thread N] [--cost-per-page N]
                 [--remap-cost N] [--max-swaps N] [--seed N] [--jobs N]
                 [--timeline FILE] [--obs-dir DIR]
                 | --app NAME [--steps N] ...
  acorr report   --manifest FILE [--jobs N]
  acorr analyze  --obs-dir DIR [--top K] [--window N] [--jobs N]
  acorr overhead --app NAME [--threads N] [--nodes N] [--faults SPEC]
  acorr explore  --app NAME [--threads N] [--nodes N] [--budget N] [--iters N]
                 [--mode random|systematic|model-check] [--seed N] [--preemptions N]
                 [--faults N] [--inject BUG] [--decision-log FILE]
                 [--strategy S] [--replay TOKEN] [--jobs N]
  acorr hot      --app NAME [--threads N] [--k N]
  acorr verify   --app NAME [--threads N] [--nodes N] [--iters N] [--faults SPEC]
                 [--crash PROB]

Strategies: stretch, random, min-cost, jarvis-patrick, anneal, optimal
Defaults: --threads 64 --nodes 8 --strategy min-cost --format ascii
Scale mode: `place --scale 1000000x1000` skips the simulator and places a
synthetic power-law affinity workload (~`--degree` edges per thread, default
8) with the multilevel partitioner, reporting generation/placement times,
cut cost vs the stretch baseline, and a machine-independent `mapping
digest:` line. Output is bit-identical at any --jobs.
Fault specs: a preset (none, light, moderate, heavy) and/or key=value
overrides, comma-separated — e.g. `moderate`, `heavy,seed=7`,
`drop_prob=0.05,max_retries=6`. Plans are deterministic per seed; `verify`
additionally shadows the run with the coherence conformance oracle.
Parallelism: every experiment command takes --jobs N (worker threads for the
deterministic parallel runner; 0 = all cores, 1 = sequential; --threads is
the simulated app thread count). Output is bit-identical at any --jobs.
Observability: `run --obs-dir DIR` writes events.jsonl, trace.json (open in
chrome://tracing or Perfetto), metrics.csv, histograms.csv and manifest.json
into DIR; sinks are pure observers, so the reported row is unchanged.
`report --manifest FILE` replays a run from its manifest and checks the
final statistics digest bit-for-bit.
Analytics: `analyze --obs-dir DIR` replay-verifies DIR/manifest.json and then
distills DIR/events.jsonl into DIR/analysis/ — page_heat.csv (per-page
fetch/twin/diff/transfer heat, hottest first), thread_comm.csv (per-thread
attribution), critical_path.csv (per-barrier-interval slowest node with its
fetch/lock wait split), spans.csv (engine self-profiling totals), phases.csv
(windowed correlation phase shifts) and report.txt (top `--top K` pages,
digest-stamped). `--window N` sets the phase-detection window in barrier
intervals. Output is byte-identical across runs and `--jobs` values.
Exploration: `explore` drives the app under steered schedules, checking each
against the default-schedule baseline with happens-before race detection,
the conformance oracle, and multi-writer vs single-writer differential
memory comparison. App names are case-insensitive here, and the seeded-race
fixture `Racey` is accepted (forced to 2 threads on 1 node). Counterexamples
shrink to a minimal replay token; `--replay TOKEN` reruns one exactly.
Model checking: `explore --mode model-check` enumerates the fault x schedule
product space (partition, duplication, corruption, one-node crash at barrier
intervals) with state-hash pruning; in this mode `--faults N` is the fault
budget per schedule (default 1), `--inject lose-partitioned-invalidations`
plants the seeded protocol bug the checker must find, and tokens gain a `!`
fault section (e.g. `s1!1`). `--decision-log FILE` writes a machine-readable
summary of the search (CI uploads it when the smoke check fails).
`verify --crash PROB` adds barrier-interval node crashes to the fault plan.
Online service: `serve` runs the live placement loop — a deterministic
multi-tenant traffic driver (or, with --app, tracked engine iterations)
streams into windowed detection; on each phase shift the service recomputes
placement, gates re-mapping on predicted cut improvement strictly beating
the migration cost model (--pages-per-thread x --cost-per-page + flat
--remap-cost), and migrates under --policy (greedy adopts the candidate,
interchange realizes it with at most --max-swaps profitable pairwise
swaps). Prints the decision timeline plus stable `timeline digest:` and
`final mapping digest:` lines (CI pins the former); --timeline FILE writes
the timeline snapshot; --obs-dir DIR writes the decision events through the
obs sinks (Perfetto marks on the decision lane). Output is bit-identical at
any --jobs.
"
    .to_owned()
}

fn list_apps() -> String {
    let mut out = String::from("Table 1 applications:\n");
    for name in apps::SUITE_NAMES {
        out.push_str(&format!("  {name}\n"));
    }
    out.push_str("plus: Drift (dynamic, §7)\n");
    out
}

fn strategy_of(name: &str) -> Result<Strategy, String> {
    Ok(match name {
        "stretch" => Strategy::Stretch,
        "random" => Strategy::RandomBalanced,
        "random-min2" => Strategy::RandomMinTwo,
        "min-cost" => Strategy::MinCost,
        "jarvis-patrick" => Strategy::JarvisPatrick,
        "anneal" => Strategy::Anneal,
        "optimal" => Strategy::Optimal,
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

/// The `--jobs` option: pool worker threads (0 = available parallelism).
fn jobs_of(args: &Args) -> Result<usize, String> {
    args.get_usize("jobs", 0)
}

/// The `--faults` option: a deterministic fault-plan spec (see
/// [`FaultPlan::parse`]); absent means no faults. Parse failures are
/// routed through [`acorr::dsm::DsmError`] so `run`, `verify`, `overhead`
/// and `report` all print the same uniform diagnostic.
fn faults_of(args: &Args) -> Result<FaultPlan, String> {
    parse_faults(args.get("faults").unwrap_or("none"))
}

fn parse_faults(spec: &str) -> Result<FaultPlan, String> {
    FaultPlan::parse(spec).map_err(|e| acorr::dsm::DsmError::from(e).to_string())
}

fn app_factory(args: &Args) -> Result<(String, usize), String> {
    let name = args.get("app").ok_or("--app is required")?.to_owned();
    let threads = args.get_usize("threads", 64)?;
    if name != "Drift" && apps::by_name(&name, threads).is_none() {
        return Err(format!("unknown application `{name}` (try `acorr apps`)"));
    }
    Ok((name, threads))
}

fn build(name: &str, threads: usize) -> Box<dyn acorr::dsm::Program> {
    if name == "Drift" {
        Box::new(apps::Drift::new(32 * threads, threads, 8))
    } else {
        apps::by_name(name, threads).expect("validated earlier")
    }
}

fn correlations(args: &Args) -> Result<(String, CorrelationMatrix), String> {
    if let Some(path) = args.get("csv") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let corr = CorrelationMatrix::from_csv(&text)?;
        Ok((path.to_owned(), corr))
    } else {
        let (name, threads) = app_factory(args)?;
        let nodes = args.get_usize("nodes", 8)?;
        let bench = Workbench::new(nodes, threads)
            .map_err(|e| e.to_string())?
            .with_threads(jobs_of(args)?);
        let truth = bench
            .ground_truth(|| build(&name, threads))
            .map_err(|e| e.to_string())?;
        Ok((name, truth.corr))
    }
}

fn track(args: &Args) -> Result<String, String> {
    if let Some(unknown) = args
        .unknown_keys(&["app", "threads", "nodes", "format", "out", "jobs"])
        .first()
    {
        return Err(format!("unknown flag --{unknown}"));
    }
    let (label, corr) = correlations(args)?;
    let format = args.get_or("format", "ascii");
    let rendered = match format {
        "ascii" => render_ascii(&corr, &MapStyle::default()),
        "pgm" => render_pgm(&corr),
        "csv" => render_csv(&corr),
        "svg" => render_svg(&corr, &MapStyle::default()),
        other => return Err(format!("unknown format `{other}`")),
    };
    let profile = profile_map(&corr);
    let body = match args.get("out") {
        Some(path) => {
            std::fs::write(path, &rendered).map_err(|e| format!("{path}: {e}"))?;
            format!("wrote {path}\n")
        }
        None => rendered,
    };
    Ok(format!("{label}: {profile}\n{body}"))
}

fn profile(args: &Args) -> Result<String, String> {
    let (label, corr) = correlations(args)?;
    let p = profile_map(&corr);
    let sizes = compatible_node_sizes(&p, corr.num_threads());
    Ok(format!(
        "{label}: {p}\ncompatible per-node thread counts: {sizes:?}\n"
    ))
}

fn place_cmd(args: &Args) -> Result<String, String> {
    if let Some(spec) = args.get("scale") {
        return place_scale(args, spec);
    }
    let (label, corr) = correlations(args)?;
    let nodes = args.get_usize("nodes", 8)?;
    let cluster =
        acorr::sim::ClusterConfig::new(nodes, corr.num_threads()).map_err(|e| e.to_string())?;
    let strategy = strategy_of(args.get_or("strategy", "min-cost"))?;
    let mut rng = DetRng::new(args.get_usize("seed", 42)? as u64);
    let mapping = place(strategy, &corr, &cluster, &mut rng);
    let cut = cut_cost(&corr, &mapping);
    Ok(format!(
        "{label}: {strategy} on {nodes} nodes\nmapping: {mapping}\ncut cost: {cut}\n"
    ))
}

/// `place --scale TxN`: the multilevel production-scale path. Generates a
/// synthetic power-law affinity store and places it, reporting timings,
/// cut costs and the assignment digest (stable `mapping digest:` line for
/// scripts and CI to pin).
fn place_scale(args: &Args, spec: &str) -> Result<String, String> {
    let (threads, nodes) = parse_scale(spec)?;
    let degree = args.get_usize("degree", 8)?;
    let seed = args.get_usize("seed", 42)? as u64;
    let row =
        acorr::experiment::scale_placement_study(threads, nodes, degree, seed, jobs_of(args)?)
            .map_err(|e| e.to_string())?;
    Ok(format!(
        "scale placement (multilevel, degree {degree}, seed {seed}): {row}\n\
         mapping digest: {}\n",
        row.digest
    ))
}

/// Parses `--scale` specs like `1000000x1000` (threads x nodes).
fn parse_scale(spec: &str) -> Result<(usize, usize), String> {
    let (t, n) = spec
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("--scale wants THREADSxNODES (e.g. 100000x256), got `{spec}`"))?;
    let threads = t
        .parse::<usize>()
        .map_err(|_| format!("--scale: bad thread count `{t}`"))?;
    let nodes = n
        .parse::<usize>()
        .map_err(|_| format!("--scale: bad node count `{n}`"))?;
    Ok((threads, nodes))
}

fn run_cmd(args: &Args) -> Result<String, String> {
    let (name, threads) = app_factory(args)?;
    let nodes = args.get_usize("nodes", 8)?;
    let iters = args.get_usize("iters", 10)?;
    let strategy_name = args.get_or("strategy", "min-cost").to_owned();
    let strategy = strategy_of(&strategy_name)?;
    let faults_spec = args.get("faults").unwrap_or("none").to_owned();
    let obs_dir = args.get("obs-dir").map(std::path::PathBuf::from);
    let mut bench = Workbench::new(nodes, threads)
        .map_err(|e| e.to_string())?
        .with_threads(jobs_of(args)?)
        .with_faults(parse_faults(&faults_spec)?);
    if obs_dir.is_some() {
        bench = bench.with_observer(acorr::obs::ObsConfig::all());
    }
    let run = bench
        .observed_heuristic_run(|| build(&name, threads), strategy, iters)
        .map_err(|e| e.to_string())?;
    let mut out = format!("{}\n", run.row);
    if let Some(dir) = obs_dir {
        let observation = run.observation.expect("observer was configured");
        let mut written = observation
            .write_to(&dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        let manifest = acorr::obs::RunManifest::new("acorr run")
            .param("app", &name)
            .param("threads", &threads.to_string())
            .param("nodes", &nodes.to_string())
            .param("iters", &iters.to_string())
            .param("strategy", &strategy_name)
            .param("faults", &faults_spec)
            .param("seed", &bench.seed.to_string())
            .with_digest(acorr::obs::stats_digest(&run.stats));
        let manifest_path = dir.join("manifest.json");
        std::fs::write(&manifest_path, manifest.to_json())
            .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
        written.push(manifest_path);
        for path in &written {
            out.push_str(&format!("wrote {}\n", path.display()));
        }
        out.push_str(&format!("stats digest: {}\n", manifest.digest));
    }
    Ok(out)
}

/// `acorr serve`: the online placement service. Traffic mode by default;
/// `--app NAME` drives a live engine (one tracked iteration per step)
/// through the same decision core, re-mapping mid-run.
fn serve_cmd(args: &Args) -> Result<String, String> {
    if let Some(unknown) = args
        .unknown_keys(&[
            "scenario",
            "app",
            "threads",
            "nodes",
            "tenants",
            "steps",
            "window",
            "period",
            "policy",
            "pages-per-thread",
            "cost-per-page",
            "remap-cost",
            "max-swaps",
            "seed",
            "jobs",
            "timeline",
            "obs-dir",
        ])
        .first()
    {
        return Err(format!("unknown flag --{unknown}"));
    }
    let scenario_name = args.get_or("scenario", "hotspot");
    let scenario = acorr::sim::Scenario::parse(scenario_name).ok_or_else(|| {
        format!("unknown scenario `{scenario_name}` (static, hotspot, churn, diurnal)")
    })?;
    let policy_name = args.get_or("policy", "greedy");
    let policy = acorr::place::MigrationPolicy::parse(policy_name)
        .ok_or_else(|| format!("unknown policy `{policy_name}` (greedy, interchange)"))?;
    let defaults = acorr::place::MigrationCostModel::default();
    let cost_model = acorr::place::MigrationCostModel::new(
        args.get_usize("pages-per-thread", defaults.pages_per_thread as usize)? as u64,
        args.get_usize("cost-per-page", defaults.cost_per_page as usize)? as u64,
        args.get_usize("remap-cost", defaults.fixed_cost as usize)? as u64,
    );
    let base = acorr::ServeOptions::new(scenario);
    let options = acorr::ServeOptions {
        scenario,
        steps: args.get_usize("steps", base.steps)?,
        tenants: args.get_usize("tenants", base.tenants)?,
        window: args.get_usize("window", base.window)?,
        period: args.get_usize("period", base.period as usize)? as u64,
        policy,
        cost_model,
        max_swaps: args.get_usize("max-swaps", base.max_swaps)?,
        ..base
    };
    let nodes = args.get_usize("nodes", 8)?;
    let obs_dir = args.get("obs-dir").map(std::path::PathBuf::from);
    let report = if args.get("app").is_some() {
        let (name, threads) = app_factory(args)?;
        let mut bench = Workbench::new(nodes, threads)
            .map_err(|e| e.to_string())?
            .with_threads(jobs_of(args)?);
        if let Some(seed) = args.get("seed") {
            bench = bench.with_seed(seed.parse().map_err(|_| format!("bad --seed `{seed}`"))?);
        }
        if obs_dir.is_some() {
            bench = bench.with_observer(acorr::obs::ObsConfig::all());
        }
        bench
            .serve_app(|| build(&name, threads), &options)
            .map_err(|e| e.to_string())?
    } else {
        let threads = args.get_usize("threads", 64)?;
        let mut bench = Workbench::new(nodes, threads)
            .map_err(|e| e.to_string())?
            .with_threads(jobs_of(args)?);
        if let Some(seed) = args.get("seed") {
            bench = bench.with_seed(seed.parse().map_err(|_| format!("bad --seed `{seed}`"))?);
        }
        if obs_dir.is_some() {
            bench = bench.with_observer(acorr::obs::ObsConfig::all());
        }
        bench.serve_traffic(&options)
    };
    let mut out = format!(
        "{report}\nfinal mapping digest: {}\ntimeline digest: {}\n",
        report.final_mapping_digest(),
        report.timeline_digest()
    );
    if report.timeline.is_empty() {
        out.push_str("timeline: (no decisions)\n");
    } else {
        out.push_str("timeline:\n");
        for decision in &report.timeline {
            out.push_str(&format!("  {decision}\n"));
        }
    }
    if let Some(path) = args.get("timeline") {
        std::fs::write(path, report.snapshot()).map_err(|e| format!("{path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if let Some(dir) = obs_dir {
        let observation = report
            .observation
            .as_ref()
            .expect("observer was configured");
        let written = observation
            .write_to(&dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?;
        for path in &written {
            out.push_str(&format!("wrote {}\n", path.display()));
        }
    }
    Ok(out)
}

/// Replays a run from its manifest and checks the statistics digest.
/// Returns the manifest, the replayed run and the (matching) digest;
/// a digest mismatch is an error.
fn replay_manifest(
    args: &Args,
    path: &str,
) -> Result<
    (
        acorr::obs::RunManifest,
        acorr::experiment::ObservedRun,
        String,
    ),
    String,
> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let manifest = acorr::obs::RunManifest::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    if manifest.tool != "acorr run" {
        return Err(format!(
            "{path}: cannot replay manifests from `{}` (only `acorr run`)",
            manifest.tool
        ));
    }
    let param = |key: &str| -> Result<&str, String> {
        manifest
            .get(key)
            .ok_or_else(|| format!("{path}: manifest is missing param \"{key}\""))
    };
    let usize_param = |key: &str| -> Result<usize, String> {
        param(key)?
            .parse()
            .map_err(|e| format!("{path}: bad \"{key}\": {e}"))
    };
    let name = param("app")?.to_owned();
    let threads = usize_param("threads")?;
    let nodes = usize_param("nodes")?;
    let iters = usize_param("iters")?;
    let strategy = strategy_of(param("strategy")?)?;
    let faults = parse_faults(param("faults")?)?;
    let seed: u64 = param("seed")?
        .parse()
        .map_err(|e| format!("{path}: bad \"seed\": {e}"))?;
    if name != "Drift" && apps::by_name(&name, threads).is_none() {
        return Err(format!("{path}: unknown application `{name}`"));
    }
    let bench = Workbench::new(nodes, threads)
        .map_err(|e| e.to_string())?
        .with_seed(seed)
        .with_threads(jobs_of(args)?)
        .with_faults(faults);
    let run = bench
        .observed_heuristic_run(|| build(&name, threads), strategy, iters)
        .map_err(|e| e.to_string())?;
    let digest = acorr::obs::stats_digest(&run.stats);
    if digest == manifest.digest {
        Ok((manifest, run, digest))
    } else {
        Err(format!(
            "replay MISMATCH: manifest digest {} (recorded under {}), replay digest {digest}\n{}",
            manifest.digest, manifest.git, run.row
        ))
    }
}

fn report(args: &Args) -> Result<String, String> {
    let path = args.get("manifest").ok_or("--manifest is required")?;
    let (manifest, run, digest) = replay_manifest(args, path)?;
    Ok(format!(
        "{}\nreplay OK: digest {digest} matches manifest (recorded under {})\n",
        run.row, manifest.git
    ))
}

/// Distills a `run --obs-dir` artifact directory into `DIR/analysis/`:
/// attribution CSVs, the critical-path decomposition, span totals, phase
/// shifts, and a digest-stamped human-readable report. The manifest is
/// replay-verified first, so the analysis is never built over artifacts
/// that no longer reproduce.
fn analyze(args: &Args) -> Result<String, String> {
    let dir = std::path::PathBuf::from(args.get("obs-dir").ok_or("--obs-dir is required")?);
    let top_k = args.get_usize("top", acorr::obs::analyze::DEFAULT_TOP_K)?;
    let window = args.get_usize("window", acorr::obs::analyze::DEFAULT_PHASE_WINDOW)?;
    let manifest_path = dir.join("manifest.json");
    let manifest_str = manifest_path
        .to_str()
        .ok_or("--obs-dir is not valid UTF-8")?
        .to_owned();
    let (_, run, digest) = replay_manifest(args, &manifest_str)?;
    let events_path = dir.join("events.jsonl");
    let events = std::fs::read_to_string(&events_path)
        .map_err(|e| format!("{}: {e}", events_path.display()))?;
    let analysis = acorr::obs::Analysis::from_events_windowed(&events, window)
        .map_err(|e| format!("{}: {e}", events_path.display()))?;
    let report = analysis.report(&digest, top_k);
    let out_dir = dir.join("analysis");
    let written = analysis
        .write_to(&out_dir, &report)
        .map_err(|e| format!("{}: {e}", out_dir.display()))?;
    let mut out = format!("{}\n", run.row);
    for path in &written {
        out.push_str(&format!("wrote {}\n", path.display()));
    }
    out.push_str(&format!(
        "analyzed {} page(s), {} thread(s), {} interval(s); {} phase shift(s)\n",
        analysis.pages.len(),
        analysis.threads.len(),
        analysis.intervals.len(),
        analysis.shifts.len()
    ));
    out.push_str(&format!("stats digest: {digest}\n"));
    Ok(out)
}

fn verify(args: &Args) -> Result<String, String> {
    let (name, threads) = app_factory(args)?;
    let nodes = args.get_usize("nodes", 8)?;
    let iters = args.get_usize("iters", 3)?;
    let mut plan = faults_of(args)?;
    // `--crash P` sugar: barrier-interval node crashes on top of whatever
    // `--faults` specified (the oracle tolerates the wiped state — crashed
    // caches reconstruct lazily from the surviving directory).
    if let Some(crash) = args.get("crash") {
        let p: f64 = crash
            .parse()
            .map_err(|e| format!("bad --crash value `{crash}`: {e}"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("--crash {p} is not a probability in [0, 1]"));
        }
        plan.crash_prob = p;
    }
    let bench = Workbench::new(nodes, threads)
        .map_err(|e| e.to_string())?
        .with_faults(plan);
    let run = bench
        .conformance_run(build(&name, threads), iters)
        .map_err(|e| e.to_string())?;
    Ok(format!("{run}\nconformance OK\n"))
}

/// Resolves `--app` case-insensitively against the suite plus the
/// explorer-only names, returning the canonical spelling. The acceptance
/// workflow spells apps in lowercase (`--app sor`), so `explore` is more
/// forgiving than the measurement commands.
fn explore_app(raw: &str) -> Result<&'static str, String> {
    apps::SUITE_NAMES
        .iter()
        .copied()
        .chain(["Drift", "Racey"])
        .find(|n| n.eq_ignore_ascii_case(raw))
        .ok_or_else(|| format!("unknown application `{raw}` (try `acorr apps`)"))
}

fn explore(args: &Args) -> Result<String, String> {
    use acorr::explore::ExploreOptions;
    use acorr::sched::{ExploreMode, Schedule};

    let name = explore_app(args.get("app").ok_or("--app is required")?)?;
    // Racey's shape is fixed: two threads that must share a node for
    // dispatch order to be steerable.
    let racey = name == "Racey";
    let threads = if racey {
        2
    } else {
        args.get_usize("threads", 64)?
    };
    let nodes = if racey {
        1
    } else {
        args.get_usize("nodes", 8)?
    };
    let mode = match args.get_or("mode", "random") {
        "random" => ExploreMode::Random {
            seed: args.get_usize("seed", 0xACE5)? as u64,
        },
        "systematic" => ExploreMode::Systematic {
            preemptions: args.get_usize("preemptions", 1)?,
        },
        "model-check" => ExploreMode::ModelCheck {
            preemptions: args.get_usize("preemptions", 1)?,
            faults: args.get_usize("faults", 1)?,
        },
        other => {
            return Err(format!(
                "unknown mode `{other}` (random|systematic|model-check)"
            ))
        }
    };
    let replay = match args.get("replay") {
        Some(token) => Some(Schedule::parse_token(token).map_err(|e| e.to_string())?),
        None => None,
    };
    let inject = match args.get("inject") {
        Some("lose-partitioned-invalidations") => {
            Some(acorr::dsm::InjectedBug::LosePartitionedInvalidations)
        }
        Some(other) => {
            return Err(format!(
                "unknown injected bug `{other}` (lose-partitioned-invalidations)"
            ))
        }
        None => None,
    };
    let options = ExploreOptions {
        strategy: strategy_of(args.get_or("strategy", "min-cost"))?,
        iterations: args.get_usize("iters", 1)?,
        budget: args.get_usize("budget", 20)?.max(1),
        mode,
        replay,
        inject,
        jobs: jobs_of(args)?,
        ..ExploreOptions::default()
    };
    let bench = Workbench::new(nodes, threads).map_err(|e| e.to_string())?;
    let report = bench
        .explore_run(
            || {
                if racey {
                    Box::new(apps::Racey) as Box<dyn acorr::dsm::Program>
                } else {
                    build(name, threads)
                }
            },
            &options,
        )
        .map_err(|e| e.to_string())?;
    if let Some(path) = args.get("decision-log") {
        let mut artifact = format!(
            "app={}\nmode={}\nschedules_run={}\ndecision_points={}\ndistinct_states={}\n",
            report.app,
            args.get_or("mode", "random"),
            report.schedules_run,
            report.decision_points,
            report.distinct_states,
        );
        match &report.failure {
            Some(fail) => {
                artifact.push_str(&format!(
                    "failure_token={}\nfailure_kind={}\nfailure_mode={}\nfailure_detail={}\n",
                    fail.token, fail.kind, fail.write_mode, fail.detail
                ));
            }
            None => artifact.push_str("failure_token=none\n"),
        }
        std::fs::write(path, artifact).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(format!("{report}\n"))
}

fn hot(args: &Args) -> Result<String, String> {
    let (name, threads) = app_factory(args)?;
    let nodes = args.get_usize("nodes", 8)?;
    let k = args.get_usize("k", 10)?;
    let bench = Workbench::new(nodes, threads)
        .map_err(|e| e.to_string())?
        .with_threads(jobs_of(args)?);
    let truth = bench
        .ground_truth(|| build(&name, threads))
        .map_err(|e| e.to_string())?;
    let report = page_report(&truth.access, k);
    Ok(format!("{name}: {report}"))
}

fn overhead(args: &Args) -> Result<String, String> {
    let (name, threads) = app_factory(args)?;
    let nodes = args.get_usize("nodes", 8)?;
    let bench = Workbench::new(nodes, threads)
        .map_err(|e| e.to_string())?
        .with_threads(jobs_of(args)?)
        .with_faults(faults_of(args)?);
    let row = bench
        .tracking_overhead(|| build(&name, threads))
        .map_err(|e| e.to_string())?;
    Ok(format!("{row}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(tokens: &[&str]) -> Result<String, String> {
        run(&Args::parse(tokens.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn apps_lists_the_suite() {
        let out = cli(&["apps"]).unwrap();
        for name in apps::SUITE_NAMES {
            assert!(out.contains(name));
        }
        assert!(out.contains("Drift"));
    }

    #[test]
    fn track_renders_a_map_with_profile() {
        let out = cli(&["track", "--app", "SOR", "--threads", "8", "--nodes", "2"]).unwrap();
        assert!(out.contains("nearest-neighbor"), "{out}");
        assert!(out.lines().count() > 8);
    }

    #[test]
    fn track_rejects_unknown_flags_and_apps() {
        assert!(cli(&["track", "--app", "SOR", "--thread", "8"])
            .unwrap_err()
            .contains("--thread"));
        assert!(cli(&["track", "--app", "NotAnApp"])
            .unwrap_err()
            .contains("NotAnApp"));
    }

    #[test]
    fn profile_and_place_work_from_csv() {
        // Build a CSV via track, feed it back through profile and place.
        let dir = std::env::temp_dir().join("acorr-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corr.csv");
        let out = cli(&[
            "track",
            "--app",
            "FFT6",
            "--threads",
            "16",
            "--nodes",
            "4",
            "--format",
            "csv",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("wrote"));
        let prof = cli(&["profile", "--csv", path.to_str().unwrap()]).unwrap();
        assert!(prof.contains("compatible per-node thread counts"));
        let placed = cli(&[
            "place",
            "--csv",
            path.to_str().unwrap(),
            "--nodes",
            "4",
            "--strategy",
            "min-cost",
        ])
        .unwrap();
        assert!(placed.contains("cut cost:"), "{placed}");
    }

    #[test]
    fn place_scale_reports_a_digest_and_is_jobs_invariant() {
        let base = cli(&["place", "--scale", "1000x8", "--jobs", "1"]).unwrap();
        assert!(base.contains("mapping digest: fnv1a:"), "{base}");
        assert!(base.contains("cut"), "{base}");
        let par = cli(&["place", "--scale", "1000x8", "--jobs", "4"]).unwrap();
        let digest_of = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("mapping digest:"))
                .map(str::to_owned)
        };
        assert_eq!(digest_of(&base), digest_of(&par));
    }

    #[test]
    fn place_scale_rejects_malformed_specs() {
        assert!(cli(&["place", "--scale", "1000"])
            .unwrap_err()
            .contains("THREADSxNODES"));
        assert!(cli(&["place", "--scale", "axb"])
            .unwrap_err()
            .contains("bad thread count"));
        assert!(
            cli(&["place", "--scale", "8x1000"]).is_err(),
            "threads < nodes"
        );
    }

    #[test]
    fn run_reports_a_table6_style_row() {
        let out = cli(&[
            "run",
            "--app",
            "Water",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--iters",
            "2",
            "--strategy",
            "stretch",
        ])
        .unwrap();
        assert!(out.contains("stretch"), "{out}");
        assert!(out.contains("misses"));
    }

    #[test]
    fn overhead_reports_a_table5_style_row() {
        let out = cli(&["overhead", "--app", "SOR", "--threads", "8", "--nodes", "2"]).unwrap();
        assert!(out.contains("tracking"), "{out}");
    }

    #[test]
    fn hot_lists_hot_pages() {
        let out = cli(&[
            "hot",
            "--app",
            "Water",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--k",
            "3",
        ])
        .unwrap();
        assert!(out.contains("touched pages"), "{out}");
        assert!(out.contains("sharers"));
    }

    #[test]
    fn verify_reports_conformance_with_and_without_faults() {
        let clean = cli(&["verify", "--app", "SOR", "--threads", "8", "--nodes", "2"]).unwrap();
        assert!(clean.contains("conformance OK"), "{clean}");
        assert!(clean.contains("oracle"));
        let faulty = cli(&[
            "verify",
            "--app",
            "SOR",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--iters",
            "3",
            "--faults",
            "heavy,seed=9",
        ])
        .unwrap();
        assert!(faulty.contains("conformance OK"), "{faulty}");
    }

    #[test]
    fn run_accepts_a_fault_spec_and_rejects_bad_ones() {
        let out = cli(&[
            "run",
            "--app",
            "Water",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--iters",
            "2",
            "--strategy",
            "stretch",
            "--faults",
            "moderate,seed=3",
        ])
        .unwrap();
        assert!(out.contains("misses"), "{out}");
        let err = cli(&[
            "run",
            "--app",
            "Water",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--faults",
            "bogus",
        ])
        .unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn run_with_obs_dir_emits_artifacts_and_report_replays() {
        let dir = std::env::temp_dir().join(format!("acorr-cli-obs-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let out = cli(&[
            "run",
            "--app",
            "Water",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--iters",
            "2",
            "--strategy",
            "stretch",
            "--faults",
            "moderate,seed=3",
            "--obs-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("stats digest: fnv1a:"), "{out}");
        for name in [
            "events.jsonl",
            "trace.json",
            "metrics.csv",
            "histograms.csv",
            "manifest.json",
        ] {
            assert!(dir.join(name).exists(), "missing {name}");
        }
        // The manifest replays to the same digest.
        let manifest = dir.join("manifest.json");
        let replayed = cli(&["report", "--manifest", manifest.to_str().unwrap()]).unwrap();
        assert!(replayed.contains("replay OK"), "{replayed}");
        // Tampering with the digest is caught.
        let tampered = std::fs::read_to_string(&manifest)
            .unwrap()
            .replace("fnv1a:", "fnv1a:f");
        std::fs::write(&manifest, tampered).unwrap();
        let err = cli(&["report", "--manifest", manifest.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("replay MISMATCH"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_builds_digest_verified_artifacts() {
        let dir = std::env::temp_dir().join(format!("acorr-cli-analyze-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        cli(&[
            "run",
            "--app",
            "SOR",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--iters",
            "3",
            "--strategy",
            "stretch",
            "--obs-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        let out = cli(&["analyze", "--obs-dir", dir.to_str().unwrap(), "--top", "5"]).unwrap();
        assert!(out.contains("stats digest: fnv1a:"), "{out}");
        assert!(out.contains("phase shift(s)"), "{out}");
        for name in [
            "page_heat.csv",
            "thread_comm.csv",
            "critical_path.csv",
            "spans.csv",
            "phases.csv",
            "report.txt",
        ] {
            assert!(dir.join("analysis").join(name).exists(), "missing {name}");
        }
        // The report's digest line matches the manifest's digest.
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        let report = std::fs::read_to_string(dir.join("analysis/report.txt")).unwrap();
        let digest_line = report
            .lines()
            .find(|l| l.starts_with("stats digest: "))
            .unwrap();
        let digest = digest_line.trim_start_matches("stats digest: ");
        assert!(manifest.contains(digest), "{digest_line} not in manifest");
        // Spans were captured and decomposed.
        assert!(report.contains("span totals:"), "{report}");
        assert!(report.contains("fetch"), "{report}");
        // The analysis is byte-identical when re-run (and at --jobs 1).
        let first: std::collections::BTreeMap<String, String> = [
            "page_heat.csv",
            "critical_path.csv",
            "spans.csv",
            "report.txt",
        ]
        .iter()
        .map(|n| {
            let body = std::fs::read_to_string(dir.join("analysis").join(n)).unwrap();
            (n.to_string(), body)
        })
        .collect();
        cli(&[
            "analyze",
            "--obs-dir",
            dir.to_str().unwrap(),
            "--top",
            "5",
            "--jobs",
            "1",
        ])
        .unwrap();
        for (name, body) in &first {
            let again = std::fs::read_to_string(dir.join("analysis").join(name)).unwrap();
            assert_eq!(&again, body, "{name} drifted across runs");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_refuses_a_tampered_manifest() {
        let dir =
            std::env::temp_dir().join(format!("acorr-cli-anal-tamper-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        cli(&[
            "run",
            "--app",
            "Water",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--iters",
            "2",
            "--strategy",
            "stretch",
            "--obs-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        let manifest = dir.join("manifest.json");
        let tampered = std::fs::read_to_string(&manifest)
            .unwrap()
            .replace("fnv1a:", "fnv1a:f");
        std::fs::write(&manifest, tampered).unwrap();
        let err = cli(&["analyze", "--obs-dir", dir.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("replay MISMATCH"), "{err}");
        assert!(!dir.join("analysis").exists(), "must not write on mismatch");
        let err = cli(&["analyze"]).unwrap_err();
        assert!(err.contains("--obs-dir"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_rejects_missing_and_malformed_manifests() {
        let err = cli(&["report"]).unwrap_err();
        assert!(err.contains("--manifest"));
        let dir = std::env::temp_dir().join(format!("acorr-cli-badman-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("manifest.json");
        std::fs::write(&bad, "{not json").unwrap();
        let err = cli(&["report", "--manifest", bad.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("not valid JSON"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_spec_errors_are_uniform_across_commands() {
        for cmd in ["run", "verify", "overhead"] {
            let err = cli(&[
                cmd,
                "--app",
                "SOR",
                "--threads",
                "8",
                "--nodes",
                "2",
                "--faults",
                "bogus",
            ])
            .unwrap_err();
            assert!(err.starts_with("fault spec error:"), "{cmd}: {err}");
        }
    }

    #[test]
    fn explore_is_case_insensitive_and_reports_clean_apps() {
        let out = cli(&[
            "explore",
            "--app",
            "sor",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--budget",
            "2",
        ])
        .unwrap();
        assert!(out.contains("SOR: 2 schedule(s)"), "{out}");
        assert!(out.contains("no new races, no divergences"), "{out}");
    }

    #[test]
    fn explore_finds_and_replays_the_seeded_race() {
        let out = cli(&[
            "explore",
            "--app",
            "racey",
            "--mode",
            "systematic",
            "--budget",
            "8",
        ])
        .unwrap();
        assert!(out.contains("FAILED"), "{out}");
        assert!(out.contains("s1:1"), "{out}");
        assert!(out.contains("write-write race"), "{out}");
        // The printed token replays the identical counterexample.
        let replayed = cli(&["explore", "--app", "Racey", "--replay", "s1:1"]).unwrap();
        assert!(replayed.contains("FAILED"), "{replayed}");
        assert!(replayed.contains("s1:1"), "{replayed}");
    }

    #[test]
    fn explore_rejects_bad_modes_and_tokens() {
        let err = cli(&["explore", "--app", "SOR", "--mode", "magic"]).unwrap_err();
        assert!(err.contains("magic"), "{err}");
        let err = cli(&["explore", "--app", "SOR", "--replay", "v2:9"]).unwrap_err();
        assert!(err.contains("v2:9"), "{err}");
        let err = cli(&["explore", "--app", "SOR", "--inject", "gremlins"]).unwrap_err();
        assert!(err.contains("gremlins"), "{err}");
    }

    #[test]
    fn explore_model_check_sweeps_clean_and_writes_decision_log() {
        let dir = std::env::temp_dir().join(format!("acorr-cli-mc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("decisions.log");
        let out = cli(&[
            "explore",
            "--app",
            "sor",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--mode",
            "model-check",
            "--budget",
            "4",
            "--decision-log",
            log.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("no new races, no divergences"), "{out}");
        assert!(out.contains("distinct states:"), "{out}");
        let artifact = std::fs::read_to_string(&log).unwrap();
        assert!(artifact.contains("mode=model-check"), "{artifact}");
        assert!(artifact.contains("failure_token=none"), "{artifact}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explore_model_check_finds_the_injected_partition_bug() {
        let out = cli(&[
            "explore",
            "--app",
            "sor",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--mode",
            "model-check",
            "--budget",
            "8",
            "--inject",
            "lose-partitioned-invalidations",
        ])
        .unwrap();
        assert!(out.contains("FAILED"), "{out}");
        assert!(out.contains("s1!1"), "{out}");
        // The printed token replays the identical counterexample, fault
        // section included.
        let replayed = cli(&[
            "explore",
            "--app",
            "sor",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--replay",
            "s1!1",
            "--inject",
            "lose-partitioned-invalidations",
        ])
        .unwrap();
        assert!(replayed.contains("FAILED"), "{replayed}");
        assert!(replayed.contains("s1!1"), "{replayed}");
    }

    #[test]
    fn verify_crash_sugar_survives_and_rejects_bad_probabilities() {
        let out = cli(&[
            "verify",
            "--app",
            "SOR",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--crash",
            "1.0",
        ])
        .unwrap();
        assert!(out.contains("conformance OK"), "{out}");
        let err = cli(&[
            "verify",
            "--app",
            "SOR",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--crash",
            "7",
        ])
        .unwrap_err();
        assert!(err.contains("probability"), "{err}");
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = cli(&["frobnicate"]).unwrap_err();
        assert!(err.contains("USAGE"));
        assert!(cli(&["help"]).unwrap().contains("USAGE"));
    }

    #[test]
    fn bad_strategy_is_reported() {
        let err = cli(&[
            "place",
            "--app",
            "SOR",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--strategy",
            "magic",
        ])
        .unwrap_err();
        assert!(err.contains("magic"));
    }

    #[test]
    fn drift_is_available_to_the_cli() {
        let out = cli(&[
            "run",
            "--app",
            "Drift",
            "--threads",
            "8",
            "--nodes",
            "2",
            "--iters",
            "2",
        ])
        .unwrap();
        assert!(out.contains("Drift"), "{out}");
    }
}
