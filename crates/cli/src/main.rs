//! The `acorr` binary: see [`acorr_cli::usage`] or run `acorr help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{}", acorr_cli::usage());
        return ExitCode::FAILURE;
    }
    let args = match acorr_cli::args::Args::parse(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match acorr_cli::run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
