//! A small `--flag value` argument parser (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    command: String,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses `argv` (without the program name): first token is the
    /// subcommand, the rest alternate `--key value`.
    ///
    /// # Errors
    ///
    /// Rejects missing subcommands, non-`--` tokens in option position, and
    /// flags without values.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut iter = argv.into_iter();
        let command = iter.next().ok_or("missing subcommand")?;
        if command.starts_with("--") {
            return Err(format!("expected a subcommand, got flag {command}"));
        }
        let mut options = BTreeMap::new();
        while let Some(key) = iter.next() {
            let Some(stripped) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got {key}"));
            };
            let value = iter
                .next()
                .ok_or_else(|| format!("flag --{stripped} needs a value"))?;
            options.insert(stripped.to_owned(), value);
        }
        Ok(Args { command, options })
    }

    /// The subcommand.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// An integer option with a default.
    ///
    /// # Errors
    ///
    /// Reports unparsable values with the flag name.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key} {v}: {e}")),
        }
    }

    /// Flags that were provided but never consumed — call after reading all
    /// expected options to reject typos.
    pub fn unknown_keys(&self, known: &[&str]) -> Vec<String> {
        self.options
            .keys()
            .filter(|k| !known.contains(&k.as_str()))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["track", "--app", "SOR", "--threads", "64"]).unwrap();
        assert_eq!(a.command(), "track");
        assert_eq!(a.get("app"), Some("SOR"));
        assert_eq!(a.get_usize("threads", 0).unwrap(), 64);
        assert_eq!(a.get_usize("nodes", 8).unwrap(), 8, "default");
        assert_eq!(a.get_or("format", "ascii"), "ascii");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--app", "SOR"]).is_err(), "flag as command");
        assert!(parse(&["track", "app", "SOR"]).is_err(), "missing --");
        assert!(parse(&["track", "--app"]).is_err(), "missing value");
        assert!(parse(&["track", "--threads", "x"])
            .unwrap()
            .get_usize("threads", 0)
            .is_err());
    }

    #[test]
    fn detects_unknown_flags() {
        let a = parse(&["track", "--app", "SOR", "--thread", "64"]).unwrap();
        assert_eq!(a.unknown_keys(&["app", "threads"]), vec!["thread"]);
        assert!(a.unknown_keys(&["app", "thread"]).is_empty());
    }
}
