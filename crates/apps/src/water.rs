//! Water — the SPLASH-2 water-nsquared molecular dynamics kernel.
//!
//! 512 molecules in 44 shared pages (Table 1). Every thread owns a block of
//! molecules and, in the O(n²) force phase, reads the *cyclically next half*
//! of the molecule array — the classic half-interaction trick that computes
//! each pair once. At page granularity the read windows of two threads
//! overlap in proportion to `T/2 - distance`, which yields exactly the
//! correlation map the paper describes: *"nearest-neighbor traffic that
//! starts high, smoothly decreases, and then increases with 'distance'
//! between the threads"*. Global reductions use locks.

use crate::common::block_range;
use acorr_dsm::{LockId, Op, Program};
use acorr_mem::SharedLayout;

/// Bytes per molecule record (positions, velocities, forces, energies for a
/// 3-site model) — sized so 512 molecules occupy the paper's 44 pages.
const MOL_BYTES: u64 = 352;
/// Calibrated toward the paper's ≈1.07 s 64-thread iteration.
const FORCE_NS_PER_PAIR: u64 = 62_000;
const LOCKS: usize = 8;

/// Water-nsquared over `mols` molecules.
#[derive(Debug, Clone)]
pub struct Water {
    mols: usize,
    threads: usize,
    mols_base: u64,
    globals_base: u64,
    shared_bytes: u64,
}

impl Water {
    /// Creates an instance with an explicit molecule count.
    ///
    /// # Panics
    ///
    /// Panics if `mols` or `threads` is zero, or `threads > mols`.
    pub fn new(mols: usize, threads: usize) -> Self {
        assert!(mols > 0 && threads > 0, "degenerate Water");
        assert!(threads <= mols, "more threads than molecules");
        let mut layout = SharedLayout::new();
        let m = layout.alloc("molecules", mols as u64 * MOL_BYTES);
        let g = layout.alloc("globals", 128);
        Water {
            mols,
            threads,
            mols_base: m.base(),
            globals_base: g.base(),
            shared_bytes: layout.total_bytes(),
        }
    }

    /// The paper's input: 512 molecules.
    pub fn paper(threads: usize) -> Self {
        Water::new(512, threads)
    }

    fn mol_addr(&self, mol: usize) -> u64 {
        self.mols_base + mol as u64 * MOL_BYTES
    }
}

impl Program for Water {
    fn name(&self) -> &str {
        "Water"
    }

    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn num_locks(&self) -> usize {
        LOCKS
    }

    fn default_iterations(&self) -> usize {
        20
    }

    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        let own = block_range(self.mols, self.threads, thread);
        let own_addr = self.mol_addr(own.start);
        let own_bytes = own.len() as u64 * MOL_BYTES;
        // Phase 1: predict — purely local update of owned molecules.
        let mut ops = vec![
            Op::read(own_addr, own_bytes),
            Op::compute(own.len() as u64 * 2_000),
            Op::write(own_addr, own_bytes),
            Op::Barrier,
        ];

        // Phase 2: intermolecular forces — half-interaction window. The
        // window is the cyclically-next half of the molecule array.
        let window = self.mols / 2;
        let start = own.end % self.mols;
        if start + window <= self.mols {
            ops.push(Op::read(self.mol_addr(start), window as u64 * MOL_BYTES));
        } else {
            let first = self.mols - start;
            ops.push(Op::read(self.mol_addr(start), first as u64 * MOL_BYTES));
            ops.push(Op::read(
                self.mol_addr(0),
                (window - first) as u64 * MOL_BYTES,
            ));
        }
        ops.push(Op::read(own_addr, own_bytes));
        let pairs = own.len() as u64 * window as u64;
        ops.push(Op::compute(pairs * FORCE_NS_PER_PAIR));
        // Forces accumulate into *both* molecules of each pair: the window
        // is written back (multi-writer pages), as is the owned block.
        if start + window <= self.mols {
            ops.push(Op::write(self.mol_addr(start), window as u64 * MOL_BYTES));
        } else {
            let first = self.mols - start;
            ops.push(Op::write(self.mol_addr(start), first as u64 * MOL_BYTES));
            ops.push(Op::write(
                self.mol_addr(0),
                (window - first) as u64 * MOL_BYTES,
            ));
        }
        ops.push(Op::write(own_addr, own_bytes));
        let lock = LockId((thread % LOCKS) as u16);
        ops.push(Op::Lock(lock));
        ops.push(Op::read(self.globals_base, 64));
        ops.push(Op::write(self.globals_base, 64));
        ops.push(Op::Unlock(lock));
        ops.push(Op::Barrier);

        // Phase 3: correct — local again.
        ops.push(Op::read(own_addr, own_bytes));
        ops.push(Op::compute(own.len() as u64 * 2_000));
        ops.push(Op::write(own_addr, own_bytes));
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::validate_iteration;
    use acorr_mem::pages_for;

    #[test]
    fn paper_input_matches_table1_pages() {
        let w = Water::paper(64);
        // Table 1: 44 shared pages. 512 × 352 B = 44 pages + 1 globals page.
        assert_eq!(pages_for(w.shared_bytes()), 45);
    }

    #[test]
    fn scripts_validate() {
        for threads in [8, 32, 48, 64] {
            let w = Water::paper(threads);
            validate_iteration(&w, 0).unwrap();
        }
    }

    #[test]
    fn window_wraps_cyclically() {
        let w = Water::new(64, 8);
        // Last thread's window must wrap to the array start: two reads.
        let script = w.script(7, 0);
        let force_reads: Vec<u64> = script
            .iter()
            .filter_map(|op| match *op {
                Op::Read { addr, len } if len > 8 * MOL_BYTES => Some(addr),
                _ => None,
            })
            .collect();
        assert!(force_reads.contains(&0), "wrapped read starts at base");
    }

    #[test]
    fn window_overlap_decreases_with_distance() {
        // The defining property behind the paper's Water map: read-window
        // overlap (in molecules) falls linearly with cyclic thread distance.
        let _w = Water::new(512, 64);
        let window_of = |t: usize| {
            let own = block_range(512, 64, t);
            let start = own.end % 512;
            (0..256).map(move |k| (start + k) % 512)
        };
        let overlap = |a: usize, b: usize| {
            let wa: std::collections::HashSet<usize> = window_of(a).collect();
            window_of(b).filter(|m| wa.contains(m)).count()
        };
        let d1 = overlap(0, 1);
        let d8 = overlap(0, 8);
        let d31 = overlap(0, 31);
        let d63 = overlap(0, 63);
        assert!(d1 > d8 && d8 > d31, "{d1} > {d8} > {d31}");
        assert!(d63 > d31, "cyclic distance: thread 63 is a near neighbor");
    }

    #[test]
    fn every_thread_locks_and_unlocks() {
        let w = Water::paper(16);
        for t in 0..16 {
            let script = w.script(t, 0);
            let locks = script.iter().filter(|o| matches!(o, Op::Lock(_))).count();
            let unlocks = script.iter().filter(|o| matches!(o, Op::Unlock(_))).count();
            assert_eq!(locks, 1);
            assert_eq!(unlocks, 1);
        }
    }
}
