//! Ocean — the SPLASH-2 ocean-current simulation.
//!
//! Many `(n+2)²` `f64` grids (25 of them at the paper's "256 oceans" input,
//! totalling Table 1's ≈3191 pages), relaxed with 5-point stencils under a
//! 2D partition, plus a lock-protected reduction and a multigrid phase over
//! a hierarchy of coarser grids.
//!
//! The thread grid fixes **8 row-bands** and splits columns among `T/8`
//! threads, so the correlation map shows diagonal blocks of `T/8` threads
//! (the column threads of one band share that band's row pages) — growing
//! with the thread count while their *number* stays fixed, exactly the
//! Table 3 behaviour the paper reports for Ocean. The multigrid phase makes
//! every thread read the whole coarse hierarchy, producing the uniform
//! all-to-all background §5.1 points out.

use crate::common::{block_range, thread_grid};
use acorr_dsm::{LockId, Op, Program};
use acorr_mem::SharedLayout;

const ELEM_BYTES: u64 = 8; // f64
const FINE_GRIDS: usize = 24;
/// Fine grids relaxed under the row-band partition (2D stencils).
const ROW_PHASE_GRIDS: usize = 18;
const ROW_PHASES: usize = 6;
/// Fine grids swept under the *column* partition (the cross-direction
/// phases of Ocean's solver) — every thread touches every page of these.
const COL_PHASES: usize = 2;
const COARSE_LEVELS: usize = 4;
const LOCKS: usize = 4;
/// Calibrated toward the paper's ≈1.9 s 64-thread iteration.
const NS_PER_POINT: u64 = 7_000;

/// Ocean over `FINE_GRIDS` grids of `(n+2) x (n+2)` doubles.
#[derive(Debug, Clone)]
pub struct Ocean {
    dim: usize, // n + 2
    threads: usize,
    bands: usize,
    cols: usize,
    fine_bases: Vec<u64>,
    coarse_bases: Vec<(u64, usize)>, // (base, dim)
    globals_base: u64,
    shared_bytes: u64,
}

impl Ocean {
    /// Creates an Ocean instance for an `n x n` ocean (grids are
    /// `(n+2) x (n+2)` with boundary halos).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `threads` is zero.
    pub fn new(n: usize, threads: usize) -> Self {
        assert!(n > 0 && threads > 0, "degenerate Ocean");
        let dim = n + 2;
        let (bands, cols) = if threads.is_multiple_of(8) && threads >= 8 {
            (8, threads / 8)
        } else {
            thread_grid(threads)
        };
        let mut layout = SharedLayout::new();
        let grid_bytes = (dim * dim) as u64 * ELEM_BYTES;
        let fine_bases = (0..FINE_GRIDS)
            .map(|g| layout.alloc(&format!("fine{g}"), grid_bytes).base())
            .collect();
        let mut coarse_bases = Vec::new();
        let mut cdim = dim / 2;
        for level in 0..COARSE_LEVELS {
            let seg = layout.alloc(&format!("coarse{level}"), (cdim * cdim) as u64 * ELEM_BYTES);
            coarse_bases.push((seg.base(), cdim));
            cdim = (cdim / 2).max(4);
        }
        let globals = layout.alloc("globals", 256);
        Ocean {
            dim,
            threads,
            bands,
            cols,
            fine_bases,
            coarse_bases,
            globals_base: globals.base(),
            shared_bytes: layout.total_bytes(),
        }
    }

    /// The paper's "256 oceans" input: 258x258 grids.
    pub fn paper(threads: usize) -> Self {
        Ocean::new(256, threads)
    }

    /// The (band, column) coordinates of a thread.
    fn coords(&self, thread: usize) -> (usize, usize) {
        (thread / self.cols, thread % self.cols)
    }

    fn row_addr(&self, base: u64, dim: usize, row: usize, col_off: usize) -> u64 {
        base + (row * dim + col_off) as u64 * ELEM_BYTES
    }

    /// Stencil ops over the thread's subgrid of one fine grid.
    fn stencil_ops(&self, base: u64, thread: usize, ops: &mut Vec<Op>) {
        let interior = self.dim - 2;
        let (band, col) = self.coords(thread);
        let rows = block_range(interior, self.bands, band);
        let cols = block_range(interior, self.cols, col);
        // Interior rows are offset by the 1-element halo.
        let col_off = cols.start + 1;
        // Halo columns included in each row read.
        let read_bytes = (cols.len() + 2) as u64 * ELEM_BYTES;
        let write_bytes = cols.len() as u64 * ELEM_BYTES;
        // Boundary rows from the neighbouring bands.
        ops.push(Op::read(
            self.row_addr(base, self.dim, rows.start, col_off - 1),
            read_bytes,
        ));
        ops.push(Op::read(
            self.row_addr(base, self.dim, rows.end + 1, col_off - 1),
            read_bytes,
        ));
        for r in rows.clone() {
            let row = r + 1;
            ops.push(Op::read(
                self.row_addr(base, self.dim, row, col_off - 1),
                read_bytes,
            ));
            ops.push(Op::write(
                self.row_addr(base, self.dim, row, col_off),
                write_bytes,
            ));
        }
        ops.push(Op::compute((rows.len() * cols.len()) as u64 * NS_PER_POINT));
    }

    /// Column-partition sweep: the thread reads and updates its column band
    /// over a cyclic window of one third of the rows, offset per thread.
    /// Because the grid is row-major, the window spans one third of the
    /// grid's *pages*, so nearby threads overlap heavily and distant ones
    /// not at all — Ocean's broad dark band — while each page is still
    /// touched by a bounded set of threads, keeping remote misses sensitive
    /// to placement (the Table 2 signal).
    fn column_sweep_ops(&self, base: u64, thread: usize, ops: &mut Vec<Op>) {
        let interior = self.dim - 2;
        let cols = block_range(interior, self.threads, thread);
        let col_off = cols.start + 1;
        let read_bytes = (cols.len() + 2) as u64 * ELEM_BYTES;
        let write_bytes = cols.len() as u64 * ELEM_BYTES;
        let window = (interior / 3).max(1);
        let start = thread * interior / self.threads;
        for r in 0..window {
            let row = 1 + (start + r) % interior;
            ops.push(Op::read(
                self.row_addr(base, self.dim, row, col_off - 1),
                read_bytes,
            ));
            ops.push(Op::write(
                self.row_addr(base, self.dim, row, col_off),
                write_bytes,
            ));
        }
        ops.push(Op::compute((window * cols.len()) as u64 * NS_PER_POINT));
    }
}

impl Program for Ocean {
    fn name(&self) -> &str {
        "Ocean"
    }

    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn num_locks(&self) -> usize {
        LOCKS
    }

    fn default_iterations(&self) -> usize {
        15
    }

    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        let mut ops = Vec::new();
        // Row-band stencil phases.
        let grids_per_phase = ROW_PHASE_GRIDS / ROW_PHASES;
        for phase in 0..ROW_PHASES {
            for g in 0..grids_per_phase {
                let base = self.fine_bases[phase * grids_per_phase + g];
                self.stencil_ops(base, thread, &mut ops);
            }
            ops.push(Op::Barrier);
        }
        // Column-partition sweeps: the thread owns a column band and walks
        // every row of it — with row-major grids that touches every page of
        // the grid, producing Ocean's uniform all-to-all background.
        let col_grids = (FINE_GRIDS - ROW_PHASE_GRIDS) / COL_PHASES;
        for phase in 0..COL_PHASES {
            for g in 0..col_grids {
                let base = self.fine_bases[ROW_PHASE_GRIDS + phase * col_grids + g];
                self.column_sweep_ops(base, thread, &mut ops);
            }
            ops.push(Op::Barrier);
        }
        // Multigrid phase: every thread reads the full coarse hierarchy and
        // writes its slice of each level.
        for &(base, cdim) in &self.coarse_bases {
            let bytes = (cdim * cdim) as u64 * ELEM_BYTES;
            ops.push(Op::read(base, bytes));
            let slice = block_range(cdim * cdim, self.threads, thread);
            ops.push(Op::write(
                base + slice.start as u64 * ELEM_BYTES,
                slice.len() as u64 * ELEM_BYTES,
            ));
            ops.push(Op::compute((cdim * cdim) as u64 * NS_PER_POINT / 8));
        }
        ops.push(Op::Barrier);
        // Lock-protected convergence reduction.
        let lock = LockId((thread % LOCKS) as u16);
        ops.push(Op::Lock(lock));
        ops.push(Op::read(self.globals_base, 64));
        ops.push(Op::write(self.globals_base, 64));
        ops.push(Op::Unlock(lock));
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::validate_iteration;
    use acorr_mem::pages_for;

    #[test]
    fn paper_input_matches_table1_pages() {
        let o = Ocean::paper(64);
        let pages = pages_for(o.shared_bytes());
        // Table 1: 3191 pages. 24 fine grids (130 pages each) + the coarse
        // hierarchy + globals.
        assert!((3100..=3300).contains(&pages), "{pages}");
    }

    #[test]
    fn thread_grid_fixes_eight_bands() {
        assert_eq!(Ocean::paper(32).cols, 4);
        assert_eq!(Ocean::paper(48).cols, 6);
        assert_eq!(Ocean::paper(64).cols, 8);
        assert_eq!(Ocean::paper(64).bands, 8);
    }

    #[test]
    fn scripts_validate() {
        for threads in [8, 32, 48, 64] {
            validate_iteration(&Ocean::paper(threads), 0).unwrap();
        }
    }

    #[test]
    fn accesses_stay_in_bounds() {
        for threads in [8, 12, 64] {
            let o = Ocean::paper(threads);
            for t in 0..threads {
                for op in o.script(t, 0) {
                    if let Op::Read { addr, len } | Op::Write { addr, len } = op {
                        assert!(addr + len <= o.shared_bytes(), "t{t} {addr}+{len}");
                    }
                }
            }
        }
    }

    #[test]
    fn same_band_threads_share_row_pages() {
        // Column threads of one band read overlapping row spans of the same
        // grid rows — the diagonal block mechanism. Verify at the address
        // level: thread 0 and 1 (same band) read some common page, thread 0
        // and a far band thread do not (on fine grids).
        let o = Ocean::paper(64);
        // Restrict to the row-partitioned grids; the column sweeps and the
        // coarse hierarchy are deliberately shared by everyone.
        let fine_limit = o.fine_bases[ROW_PHASE_GRIDS];
        let pages = |t: usize| -> std::collections::HashSet<u64> {
            o.script(t, 0)
                .iter()
                .filter_map(|op| match *op {
                    Op::Read { addr, len } if addr < fine_limit => Some((addr, len)),
                    _ => None,
                })
                .flat_map(|(a, l)| (a / 4096)..=((a + l - 1) / 4096))
                .collect()
        };
        let p0 = pages(0);
        let p1 = pages(1);
        let far = pages(40); // band 5
        assert!(p0.intersection(&p1).count() > 0, "same band shares");
        assert_eq!(p0.intersection(&far).count(), 0, "far bands disjoint");
    }

    #[test]
    fn column_sweep_windows_tile_and_overlap() {
        let o = Ocean::paper(64);
        let grid_base = o.fine_bases[ROW_PHASE_GRIDS];
        let grid_bytes = (o.dim * o.dim) as u64 * 8;
        let pages_of = |t: usize| -> std::collections::BTreeSet<u64> {
            o.script(t, 0)
                .iter()
                .filter_map(|op| match *op {
                    Op::Read { addr, len } | Op::Write { addr, len }
                        if addr >= grid_base && addr < grid_base + grid_bytes =>
                    {
                        Some((addr, len))
                    }
                    _ => None,
                })
                .flat_map(|(a, l)| (a / 4096)..=((a + l - 1) / 4096))
                .collect()
        };
        // Each thread's window spans about a third of the grid's pages.
        let p0 = pages_of(0);
        let grid_pages = grid_bytes.div_ceil(4096);
        assert!(
            (p0.len() as u64) > grid_pages / 4 && (p0.len() as u64) < grid_pages / 2,
            "window covers {} of {} pages",
            p0.len(),
            grid_pages
        );
        // Neighbours overlap heavily, distant threads not at all.
        let p1 = pages_of(1);
        let p32 = pages_of(32);
        assert!(p0.intersection(&p1).count() * 2 > p0.len());
        assert_eq!(p0.intersection(&p32).count(), 0);
        // Collectively the windows cover the whole grid (minus halo tail).
        let mut union = std::collections::BTreeSet::new();
        for t in 0..64 {
            union.extend(pages_of(t));
        }
        assert!(union.len() as u64 >= grid_pages - 1);
    }

    #[test]
    fn multigrid_is_read_by_everyone() {
        let o = Ocean::paper(16);
        let (coarse_base, cdim) = o.coarse_bases[0];
        for t in 0..16 {
            let hit = o.script(t, 0).iter().any(|op| {
                matches!(*op, Op::Read { addr, len }
                    if addr == coarse_base && len == (cdim * cdim * 8) as u64)
            });
            assert!(hit, "thread {t} reads the coarse grid");
        }
    }
}
