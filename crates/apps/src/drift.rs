//! Drift — a dynamic, adaptive irregular application (the paper's §7
//! future work; cf. its reference \[14\] on adaptive irregular codes).
//!
//! Particles live on a ring, partitioned in blocks per thread. Each thread
//! interacts with one partner block — but the particles *drift*, so the
//! partner offset jumps at every phase boundary and the sharing pattern
//! rotates through the whole ring. Any static placement is eventually
//! wrong; §7's prescription (periodic re-tracking + min-cost migration)
//! keeps the interacting pairs co-located.
//!
//! The paper's static applications answer "can we measure affinity
//! cheaply?"; Drift answers "is it worth re-measuring?" — the test suite
//! and the `adaptive` experiment use it for exactly that.

use crate::common::block_range;
use acorr_dsm::{LockId, Op, Program};
use acorr_mem::SharedLayout;

/// Bytes per particle record.
const PARTICLE_BYTES: u64 = 256;
const LOCKS: usize = 4;
/// Compute per (own particle, window particle) pair.
const NS_PER_PAIR: u64 = 900;

/// A drifting-particle ring simulation.
#[derive(Debug, Clone)]
pub struct Drift {
    particles: usize,
    threads: usize,
    period: usize,
    particles_base: u64,
    globals_base: u64,
    shared_bytes: u64,
}

impl Drift {
    /// Creates a ring of `particles` particles whose interaction window
    /// slides by one block every `period` iterations.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or there are more threads than
    /// particles.
    pub fn new(particles: usize, threads: usize, period: usize) -> Self {
        assert!(
            particles > 0 && threads > 0 && period > 0,
            "degenerate Drift"
        );
        assert!(threads <= particles, "more threads than particles");
        let mut layout = SharedLayout::new();
        let p = layout.alloc("particles", particles as u64 * PARTICLE_BYTES);
        let g = layout.alloc("globals", 128);
        Drift {
            particles,
            threads,
            period,
            particles_base: p.base(),
            globals_base: g.base(),
            shared_bytes: layout.total_bytes(),
        }
    }

    /// The block of thread `owner`'s particles as an address range.
    fn block(&self, owner: usize) -> (u64, u64) {
        let r = block_range(self.particles, self.threads, owner);
        (
            self.particles_base + r.start as u64 * PARTICLE_BYTES,
            r.len() as u64 * PARTICLE_BYTES,
        )
    }

    /// The partner block thread `thread` interacts with at `iteration`.
    /// The partner offset starts at 1 (nearest neighbor) and jumps a
    /// quarter of the ring (plus one, to visit every offset) at each phase
    /// boundary — the abrupt re-bucketing of an adaptive irregular code
    /// after a re-partition. Because each thread has exactly one partner
    /// at a time, co-locating the pairs eliminates the communication, and
    /// only re-placement can keep doing so as the offset jumps.
    pub fn window_of(&self, thread: usize, iteration: usize) -> Vec<usize> {
        let jump = self.threads / 4 + 1;
        let shift = (1 + (iteration / self.period) * jump) % self.threads;
        vec![(thread + shift) % self.threads]
    }
}

impl Program for Drift {
    fn name(&self) -> &str {
        "Drift"
    }

    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn num_locks(&self) -> usize {
        LOCKS
    }

    fn default_iterations(&self) -> usize {
        4 * self.period
    }

    fn script(&self, thread: usize, iteration: usize) -> Vec<Op> {
        let (own_addr, own_bytes) = self.block(thread);
        let own_particles = block_range(self.particles, self.threads, thread).len() as u64;
        let mut ops = Vec::new();
        // Phase 1: read the interaction window (wherever it has drifted).
        let mut window_particles = 0u64;
        for partner in self.window_of(thread, iteration) {
            let (addr, bytes) = self.block(partner);
            ops.push(Op::read(addr, bytes));
            window_particles += bytes / PARTICLE_BYTES;
        }
        ops.push(Op::read(own_addr, own_bytes));
        ops.push(Op::compute(own_particles * window_particles * NS_PER_PAIR));
        ops.push(Op::write(own_addr, own_bytes));
        ops.push(Op::Barrier);
        // Phase 2: update positions; the lock-protected global-energy
        // reduction runs every fourth iteration (as adaptive codes
        // typically sample diagnostics, and so the constant lock traffic
        // does not drown the drift signal).
        ops.push(Op::read(own_addr, own_bytes));
        ops.push(Op::compute(own_particles * 1_500));
        ops.push(Op::write(own_addr, own_bytes));
        if iteration.is_multiple_of(4) {
            let lock = LockId((thread % LOCKS) as u16);
            ops.push(Op::Lock(lock));
            ops.push(Op::read(self.globals_base, 64));
            ops.push(Op::write(self.globals_base, 64));
            ops.push(Op::Unlock(lock));
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::validate_iteration;

    #[test]
    fn scripts_validate_at_every_phase() {
        let d = Drift::new(256, 16, 3);
        for iter in [0, 2, 3, 7, 20, 48] {
            validate_iteration(&d, iter).unwrap();
        }
    }

    #[test]
    fn partner_jumps_a_quarter_ring_per_phase() {
        let d = Drift::new(256, 16, 4);
        assert_eq!(d.window_of(0, 0), vec![1], "starts nearest-neighbor");
        assert_eq!(d.window_of(0, 3), vec![1], "stable within a phase");
        // jump = 16/4 + 1 = 5.
        assert_eq!(d.window_of(0, 4), vec![6], "jumps at the boundary");
        assert_eq!(d.window_of(0, 8), vec![11]);
    }

    #[test]
    fn partner_wraps_the_ring() {
        let d = Drift::new(64, 8, 1);
        assert_eq!(d.window_of(7, 0), vec![0]);
        // jump = 3; after 8 phases the shift is back to 1: full cycle.
        assert_eq!(d.window_of(3, 8), d.window_of(3, 0));
    }

    #[test]
    fn sharing_pattern_actually_changes() {
        let d = Drift::new(256, 16, 2);
        let early = d.script(5, 0);
        let late = d.script(5, 2 * 8); // eight phases later
        assert_ne!(early, late, "scripts must rotate");
    }

    #[test]
    fn accesses_stay_in_bounds() {
        let d = Drift::new(100, 7, 2);
        for t in 0..7 {
            for iter in [0, 5, 13] {
                for op in d.script(t, iter) {
                    if let Op::Read { addr, len } | Op::Write { addr, len } = op {
                        assert!(addr + len <= d.shared_bytes());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_period_rejected() {
        Drift::new(64, 8, 0);
    }
}
