//! Barnes — the SPLASH-2 Barnes-Hut N-body simulation.
//!
//! 8192 bodies (Table 1: 251 shared pages) in three phases per iteration:
//! a lock-protected octree build, a force-computation phase in which every
//! thread traverses the shared tree and reads many other threads' bodies
//! (near neighbours fully, the rest through a deterministic sample standing
//! in for the tree-guided partial traversal), and a local update phase with
//! a lock-protected global reduction.
//!
//! The correlation map this produces — a strong diagonal over a broad
//! shared background — is largely insensitive to the thread count, as the
//! paper observes in Table 3.

use crate::common::block_range;
use acorr_dsm::{LockId, Op, Program};
use acorr_mem::SharedLayout;
use acorr_sim::DetRng;

/// Bytes per body record (mass, position, velocity, acceleration, links).
const BODY_BYTES: u64 = 120;
/// Pages of shared octree cells.
const TREE_BYTES: u64 = 10 * 4096;
const LOCKS: usize = 32;
/// Fraction (out of 256) of far body pages sampled during force
/// computation.
const SAMPLE_DENSITY: u64 = 80;
/// Calibrated toward the paper's ≈2.2 s 64-thread iteration.
const FORCE_NS_PER_BODY: u64 = 2_000_000;

/// Barnes-Hut over `bodies` bodies.
#[derive(Debug, Clone)]
pub struct Barnes {
    bodies: usize,
    threads: usize,
    bodies_base: u64,
    tree_base: u64,
    globals_base: u64,
    shared_bytes: u64,
}

impl Barnes {
    /// Creates an instance with an explicit body count.
    ///
    /// # Panics
    ///
    /// Panics if `bodies` or `threads` is zero, or `threads > bodies`.
    pub fn new(bodies: usize, threads: usize) -> Self {
        assert!(bodies > 0 && threads > 0, "degenerate Barnes");
        assert!(threads <= bodies, "more threads than bodies");
        let mut layout = SharedLayout::new();
        let b = layout.alloc("bodies", bodies as u64 * BODY_BYTES);
        let t = layout.alloc("tree", TREE_BYTES);
        let g = layout.alloc("globals", 256);
        Barnes {
            bodies,
            threads,
            bodies_base: b.base(),
            tree_base: t.base(),
            globals_base: g.base(),
            shared_bytes: layout.total_bytes(),
        }
    }

    /// The paper's input: 8192 bodies.
    pub fn paper(threads: usize) -> Self {
        Barnes::new(8192, threads)
    }

    fn body_addr(&self, body: usize) -> u64 {
        self.bodies_base + body as u64 * BODY_BYTES
    }

    fn block_ops_for(&self, thread: usize) -> (u64, u64) {
        let own = block_range(self.bodies, self.threads, thread);
        (self.body_addr(own.start), own.len() as u64 * BODY_BYTES)
    }
}

impl Program for Barnes {
    fn name(&self) -> &str {
        "Barnes"
    }

    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn num_locks(&self) -> usize {
        LOCKS
    }

    fn default_iterations(&self) -> usize {
        15
    }

    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        let (own_addr, own_bytes) = self.block_ops_for(thread);
        let own = block_range(self.bodies, self.threads, thread);
        let mut ops = Vec::new();

        // Phase 1: tree build. Each thread inserts its bodies under a
        // per-subtree lock, reading and writing shared cell pages.
        ops.push(Op::read(own_addr, own_bytes));
        let lock = LockId((thread % LOCKS) as u16);
        ops.push(Op::Lock(lock));
        ops.push(Op::read(self.tree_base, TREE_BYTES));
        // Each thread dirties its slice of the cell pool.
        let slice = block_range(TREE_BYTES as usize, self.threads, thread);
        ops.push(Op::write(
            self.tree_base + slice.start as u64,
            slice.len() as u64,
        ));
        ops.push(Op::Unlock(lock));
        ops.push(Op::compute(own.len() as u64 * 9_000));
        ops.push(Op::Barrier);

        // Phase 2: force computation. Read the whole tree, the neighbouring
        // threads' bodies in full, and a deterministic sample of far body
        // pages (the tree-opening criterion admits a subset of far cells).
        ops.push(Op::read(self.tree_base, TREE_BYTES));
        for d in 1..=2usize {
            for dir in [-1i64, 1] {
                let nb = (thread as i64 + dir * d as i64).rem_euclid(self.threads as i64) as usize;
                if nb != thread {
                    let (a, l) = self.block_ops_for(nb);
                    ops.push(Op::read(a, l));
                }
            }
        }
        let body_pages = (self.bodies as u64 * BODY_BYTES).div_ceil(4096);
        let mut rng = DetRng::new(0xBA_u64.wrapping_mul(thread as u64 + 1));
        for page in 0..body_pages {
            if rng.next_below(256) < SAMPLE_DENSITY {
                ops.push(Op::read(self.bodies_base + page * 4096 + 64, 256));
            }
        }
        ops.push(Op::compute(own.len() as u64 * FORCE_NS_PER_BODY));
        ops.push(Op::write(own_addr, own_bytes));
        ops.push(Op::Barrier);

        // Phase 3: position update plus a lock-protected global reduction.
        ops.push(Op::read(own_addr, own_bytes));
        ops.push(Op::compute(own.len() as u64 * 4_000));
        ops.push(Op::write(own_addr, own_bytes));
        let glock = LockId(((thread + 7) % LOCKS) as u16);
        ops.push(Op::Lock(glock));
        ops.push(Op::read(self.globals_base, 64));
        ops.push(Op::write(self.globals_base, 64));
        ops.push(Op::Unlock(glock));
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::validate_iteration;
    use acorr_mem::pages_for;

    #[test]
    fn paper_input_matches_table1_pages() {
        let b = Barnes::paper(64);
        // Table 1: 251 pages. 8192 × 120 B = 240 pages + 10 tree + globals.
        assert_eq!(pages_for(b.shared_bytes()), 251);
    }

    #[test]
    fn scripts_validate() {
        for threads in [8, 32, 48, 64] {
            validate_iteration(&Barnes::paper(threads), 0).unwrap();
        }
    }

    #[test]
    fn sample_is_deterministic_per_thread() {
        let b = Barnes::paper(32);
        assert_eq!(b.script(5, 0), b.script(5, 9), "static across iterations");
        assert_ne!(b.script(5, 0), b.script(6, 0), "distinct across threads");
    }

    #[test]
    fn everyone_reads_the_tree() {
        let b = Barnes::paper(16);
        for t in 0..16 {
            let tree_reads = b
                .script(t, 0)
                .iter()
                .filter(|op| {
                    matches!(**op, Op::Read { addr, len }
                        if addr == b.tree_base && len == TREE_BYTES)
                })
                .count();
            assert_eq!(tree_reads, 2, "build + force phases");
        }
    }

    #[test]
    fn neighbors_wrap_cyclically() {
        let b = Barnes::paper(8);
        let script = b.script(0, 0);
        let (a7, l7) = b.block_ops_for(7);
        assert!(
            script
                .iter()
                .any(|op| matches!(*op, Op::Read { addr, len } if addr == a7 && len == l7)),
            "thread 0 reads thread 7's bodies via wraparound"
        );
    }

    #[test]
    fn accesses_stay_in_bounds() {
        let b = Barnes::paper(48);
        for t in 0..48 {
            for op in b.script(t, 0) {
                if let Op::Read { addr, len } | Op::Write { addr, len } = op {
                    assert!(addr + len <= b.shared_bytes());
                }
            }
        }
    }
}
