//! # acorr-apps — the application suite
//!
//! Deterministic access-pattern replicas of the paper's Table 1
//! applications, written against the `acorr-dsm` [`Program`] API:
//!
//! | Program | Input | Synchronization | Sharing pattern |
//! |---------|-------|-----------------|-----------------|
//! | [`Barnes`] | 8192 bodies | barrier, lock | diagonal + broad background |
//! | [`Fft`] (6/7/8) | 64³ … 64²×256 | barrier | input-dependent thread clusters |
//! | [`Lu`] (1k/2k) | 1024²/2048² | barrier | grid-row blocks, high sharing degree |
//! | [`Ocean`] | 258² grids ×24 | barrier, lock | fixed-count diagonal blocks + background |
//! | [`Spatial`] | 4096 molecules | barrier, lock | two phases with distinct groupings |
//! | [`Sor`] | 2048² | barrier | pure nearest-neighbor |
//! | [`Water`] | 512 molecules | barrier, lock | cyclic half-window (dips then rises) |
//! | [`Drift`] | dynamic ring (§7) | barrier, lock | partner offset jumps per phase |
//!
//! Each module's docs explain which paper observation its access pattern
//! reproduces and how. [`suite`] and [`by_name`] build the standard
//! configurations used by the benchmark harness. [`Racey`] is a
//! deliberately racy two-thread fixture for the schedule explorer; it is
//! not part of the suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barnes;
pub mod common;
pub mod drift;
pub mod fft;
pub mod lu;
pub mod ocean;
pub mod racey;
pub mod sor;
pub mod spatial;
pub mod water;

pub use barnes::Barnes;
pub use drift::Drift;
pub use fft::Fft;
pub use lu::Lu;
pub use ocean::Ocean;
pub use racey::Racey;
pub use sor::Sor;
pub use spatial::Spatial;
pub use water::Water;

use acorr_dsm::Program;

/// The application names of Table 1, in the paper's order.
pub const SUITE_NAMES: [&str; 10] = [
    "Barnes", "FFT6", "FFT7", "FFT8", "LU1k", "LU2k", "Ocean", "Spatial", "SOR", "Water",
];

/// The subset evaluated in Table 2 / Figure 1.
pub const TABLE2_NAMES: [&str; 8] = [
    "Barnes", "FFT7", "FFT8", "LU2k", "Ocean", "Spatial", "SOR", "Water",
];

/// Builds one paper-configured application by Table 1 name.
///
/// Returns `None` for unknown names.
///
/// ```
/// use acorr_apps::by_name;
/// use acorr_dsm::Program;
/// let sor = by_name("SOR", 64).unwrap();
/// assert_eq!(sor.num_threads(), 64);
/// assert!(by_name("NotAnApp", 64).is_none());
/// ```
pub fn by_name(name: &str, threads: usize) -> Option<Box<dyn Program>> {
    Some(match name {
        "Barnes" => Box::new(Barnes::paper(threads)),
        "FFT6" => Box::new(Fft::paper6(threads)),
        "FFT7" => Box::new(Fft::paper7(threads)),
        "FFT8" => Box::new(Fft::paper8(threads)),
        "LU1k" => Box::new(Lu::paper1k(threads)),
        "LU2k" => Box::new(Lu::paper2k(threads)),
        "Ocean" => Box::new(Ocean::paper(threads)),
        "Spatial" => Box::new(Spatial::paper(threads)),
        "SOR" => Box::new(Sor::paper(threads)),
        "Water" => Box::new(Water::paper(threads)),
        _ => return None,
    })
}

/// The full Table 1 suite at paper input sizes.
pub fn suite(threads: usize) -> Vec<Box<dyn Program>> {
    SUITE_NAMES
        .iter()
        .map(|n| by_name(n, threads).expect("suite names are known"))
        .collect()
}

/// Reduced-size variants of every application, for fast tests and
/// examples: same access-pattern structure, much smaller footprints.
pub fn mini_suite(threads: usize) -> Vec<Box<dyn Program>> {
    vec![
        Box::new(Barnes::new(1024, threads)),
        Box::new(Fft::new("FFT-mini", 16, 16, 16, threads)),
        Box::new(Lu::new("LU-mini", 256, threads)),
        Box::new(Ocean::new(64, threads)),
        Box::new(Spatial::new(threads)),
        Box::new(Sor::new(256, 256, threads)),
        Box::new(Water::new(128, threads)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::validate_iteration;

    #[test]
    fn suite_builds_all_ten() {
        let apps = suite(64);
        assert_eq!(apps.len(), 10);
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(names, SUITE_NAMES.to_vec());
    }

    #[test]
    fn every_suite_member_validates_at_paper_thread_counts() {
        for threads in [32, 48, 64] {
            for app in suite(threads) {
                validate_iteration(&app, 0)
                    .unwrap_or_else(|e| panic!("{} @ {threads}: {e}", app.name()));
                assert_eq!(app.num_threads(), threads);
            }
        }
    }

    #[test]
    fn mini_suite_validates() {
        for app in mini_suite(8) {
            validate_iteration(&app, 0).unwrap();
            validate_iteration(&app, 3).unwrap();
        }
    }

    #[test]
    fn table2_subset_is_contained_in_suite() {
        for name in TABLE2_NAMES {
            assert!(SUITE_NAMES.contains(&name));
            assert!(by_name(name, 16).is_some());
        }
    }
}
