//! Spatial — the SPLASH-2 water-spatial molecular dynamics kernel.
//!
//! 4096 molecules stored per 3D cell (an 8x8x8 cell grid, one page per
//! cell — Table 1's ≈569 pages including the cell metadata), with **two
//! force phases that partition the cells differently**: phase A slices the
//! cell grid along z (z-major order), phase B along x (x-major order). Each
//! phase reads the owned cells plus their 27-neighbourhoods and updates
//! neighbour cells under per-cell locks.
//!
//! The two orderings group threads differently, which is what the paper
//! sees in Table 3: *"Spatial's behavior is the result of phases with
//! distinct sharing patterns"*, with the block structure changing between
//! 32 and 64 threads and degrading at 48 (where the cell count does not
//! divide evenly).

use crate::common::block_range;
use acorr_dsm::{LockId, Op, Program};
use acorr_mem::SharedLayout;

/// Cells per axis.
const DIM: usize = 8;
const CELLS: usize = DIM * DIM * DIM;
/// One page per cell (8 molecules × 512 B).
const CELL_BYTES: u64 = 4096;
const LOCKS: usize = 64;
/// Calibrated toward the paper's ≈13.4 s 64-thread iteration.
const NS_PER_CELL_PAIR: u64 = 7_300_000;

/// Water-spatial over an 8x8x8 cell grid.
#[derive(Debug, Clone)]
pub struct Spatial {
    threads: usize,
    cells_base: u64,
    meta_base: u64,
    meta_bytes: u64,
    globals_base: u64,
    shared_bytes: u64,
}

impl Spatial {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or exceeds the cell count.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        assert!(threads <= CELLS, "more threads than cells");
        let mut layout = SharedLayout::new();
        let cells = layout.alloc("cells", CELLS as u64 * CELL_BYTES);
        let meta = layout.alloc("cell-metadata", 55 * 4096);
        let globals = layout.alloc("globals", 256);
        Spatial {
            threads,
            cells_base: cells.base(),
            meta_base: meta.base(),
            meta_bytes: meta.len(),
            globals_base: globals.base(),
            shared_bytes: layout.total_bytes(),
        }
    }

    /// The paper's input: 4096 molecules (8 per cell).
    pub fn paper(threads: usize) -> Self {
        Spatial::new(threads)
    }

    /// Linear cell index in z-major order (z slowest).
    fn z_major(x: usize, y: usize, z: usize) -> usize {
        (z * DIM + y) * DIM + x
    }

    /// Linear cell index in x-major order (x slowest).
    fn x_major(x: usize, y: usize, z: usize) -> usize {
        (x * DIM + y) * DIM + z
    }

    fn cell_addr(&self, cell: usize) -> u64 {
        self.cells_base + cell as u64 * CELL_BYTES
    }

    /// Force-phase ops for the cells owned under the given ordering.
    fn force_phase(&self, thread: usize, x_major_order: bool, ops: &mut Vec<Op>) {
        let owned = block_range(CELLS, self.threads, thread);
        let mut neighbor_cells = std::collections::BTreeSet::new();
        let mut owned_cells = Vec::new();
        for linear in owned.clone() {
            // Decode the linear index under the phase ordering.
            let (x, y, z) = if x_major_order {
                (linear / (DIM * DIM), (linear / DIM) % DIM, linear % DIM)
            } else {
                (linear % DIM, (linear / DIM) % DIM, linear / (DIM * DIM))
            };
            debug_assert_eq!(
                linear,
                if x_major_order {
                    Self::x_major(x, y, z)
                } else {
                    Self::z_major(x, y, z)
                },
                "decode must invert the phase ordering"
            );
            owned_cells.push(Self::z_major(x, y, z));
            for dx in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dz in -1i64..=1 {
                        let nx = x as i64 + dx;
                        let ny = y as i64 + dy;
                        let nz = z as i64 + dz;
                        if (0..DIM as i64).contains(&nx)
                            && (0..DIM as i64).contains(&ny)
                            && (0..DIM as i64).contains(&nz)
                        {
                            neighbor_cells.insert(Self::z_major(
                                nx as usize,
                                ny as usize,
                                nz as usize,
                            ));
                        }
                    }
                }
            }
        }
        // Read the neighbourhood (cells are stored in z-major order
        // regardless of the phase's ownership ordering).
        for &cell in &neighbor_cells {
            ops.push(Op::read(self.cell_addr(cell), CELL_BYTES));
        }
        // Update owned cells; only the region-boundary cells accumulate
        // into neighbours under per-cell locks (interior cells need none).
        for &cell in &owned_cells {
            ops.push(Op::write(self.cell_addr(cell), CELL_BYTES));
        }
        for &cell in [owned_cells.first(), owned_cells.last()]
            .into_iter()
            .flatten()
        {
            let lock = LockId((cell % LOCKS) as u16);
            ops.push(Op::Lock(lock));
            ops.push(Op::write(self.cell_addr(cell) + 256, 64));
            ops.push(Op::Unlock(lock));
        }
        ops.push(Op::compute(
            owned_cells.len() as u64 * 27 * NS_PER_CELL_PAIR / 2,
        ));
    }
}

impl Program for Spatial {
    fn name(&self) -> &str {
        "Spatial"
    }

    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn num_locks(&self) -> usize {
        LOCKS
    }

    fn default_iterations(&self) -> usize {
        10
    }

    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        let mut ops = Vec::new();
        // Everyone scans the cell metadata (lists, boundaries).
        ops.push(Op::read(self.meta_base, self.meta_bytes));

        // Phase A: z-major ownership.
        self.force_phase(thread, false, &mut ops);
        ops.push(Op::Barrier);

        // Phase B: x-major ownership — a different thread grouping.
        self.force_phase(thread, true, &mut ops);
        ops.push(Op::Barrier);

        // Global reduction under a lock.
        let lock = LockId((thread % LOCKS) as u16);
        ops.push(Op::Lock(lock));
        ops.push(Op::read(self.globals_base, 64));
        ops.push(Op::write(self.globals_base, 64));
        ops.push(Op::Unlock(lock));
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::validate_iteration;
    use acorr_mem::pages_for;

    #[test]
    fn paper_input_matches_table1_pages() {
        let s = Spatial::paper(64);
        // Table 1: 569 pages. 512 cell pages + 55 metadata + globals.
        assert_eq!(pages_for(s.shared_bytes()), 568);
    }

    #[test]
    fn scripts_validate() {
        for threads in [8, 32, 48, 64] {
            validate_iteration(&Spatial::paper(threads), 0).unwrap();
        }
    }

    #[test]
    fn orderings_are_bijections() {
        let mut seen_z = std::collections::HashSet::new();
        let mut seen_x = std::collections::HashSet::new();
        for x in 0..DIM {
            for y in 0..DIM {
                for z in 0..DIM {
                    seen_z.insert(Spatial::z_major(x, y, z));
                    seen_x.insert(Spatial::x_major(x, y, z));
                }
            }
        }
        assert_eq!(seen_z.len(), CELLS);
        assert_eq!(seen_x.len(), CELLS);
    }

    #[test]
    fn phases_have_distinct_footprints() {
        // The same thread reads different cell pages in phase A vs phase B
        // (the paper's "phases with distinct sharing patterns").
        let s = Spatial::paper(64);
        let script = s.script(17, 0);
        let barrier_pos = script
            .iter()
            .position(|op| matches!(op, Op::Barrier))
            .unwrap();
        let cell_reads = |ops: &[Op]| -> std::collections::BTreeSet<u64> {
            ops.iter()
                .filter_map(|op| match *op {
                    Op::Read { addr, len }
                        if len == CELL_BYTES
                            && addr >= s.cells_base
                            && addr < s.cells_base + CELLS as u64 * CELL_BYTES =>
                    {
                        Some(addr)
                    }
                    _ => None,
                })
                .collect()
        };
        let a = cell_reads(&script[..barrier_pos]);
        let b = cell_reads(&script[barrier_pos..]);
        assert!(!a.is_empty() && !b.is_empty());
        assert_ne!(a, b);
    }

    #[test]
    fn locks_balance_and_validate_under_contention() {
        let s = Spatial::paper(64);
        for t in [0, 31, 63] {
            let script = s.script(t, 0);
            let locks = script.iter().filter(|o| matches!(o, Op::Lock(_))).count();
            let unlocks = script.iter().filter(|o| matches!(o, Op::Unlock(_))).count();
            assert_eq!(locks, unlocks);
            assert!(locks > 2, "per-cell locks plus the reduction");
        }
    }

    #[test]
    fn accesses_stay_in_bounds() {
        for threads in [8, 48, 64] {
            let s = Spatial::paper(threads);
            for t in 0..threads {
                for op in s.script(t, 0) {
                    if let Op::Read { addr, len } | Op::Write { addr, len } = op {
                        assert!(addr + len <= s.shared_bytes());
                    }
                }
            }
        }
    }
}
