//! FFT — a blocked transpose-based FFT in the SPLASH-2 style.
//!
//! The data (complex `f32`, 8 bytes per element) lives in two arrays (source
//! and transpose target), each laid out as a `T x T` grid of
//! processor-blocks: block `(i, j)` holds the data thread `i` owns before
//! the transpose that thread `j` needs after it. The transpose phase has
//! thread `i` read column `i` — one block from every other thread's row.
//!
//! At element level that exchange is uniform all-to-all; the *correlation
//! map* structure of Table 4 comes purely from page granularity. A block of
//! `N/T²` elements occupies `N·8/T²` bytes, so with 64 threads:
//!
//! * 64³ input → 512-byte blocks, 8 per page → threads cluster in groups of
//!   8 (the paper's "eight eight-thread clusters");
//! * 64²×128 → 1 KiB blocks, 4 per page → groups of 4 ("32 disjoint
//!   four-thread blocks");
//! * 64²×256 → 2 KiB blocks → sharing approaches uniform all-to-all.
//!
//! At 48 threads the block size is not a power of two, blocks straddle page
//! boundaries irregularly, and the map shows the paper's "distinct
//! irregularities".

use acorr_dsm::{Op, Program};
use acorr_mem::SharedLayout;

const ELEM_BYTES: u64 = 8; // complex f32
/// Calibrated toward the paper's FFT6/7/8 iteration times (0.37/0.67/1.41 s
/// at 64 threads on 8 nodes).
const NS_PER_UNIT: u64 = 125;

/// Transpose-based FFT over `nx * ny * nz` complex elements.
#[derive(Debug, Clone)]
pub struct Fft {
    name: String,
    elems: u64,
    threads: usize,
    block_bytes: u64,
    src_base: u64,
    dst_base: u64,
    shared_bytes: u64,
}

impl Fft {
    /// Creates an FFT instance for an `nx * ny * nz` grid.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the thread count is zero.
    pub fn new(name: &str, nx: usize, ny: usize, nz: usize, threads: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0 && threads > 0, "degenerate FFT");
        let elems = (nx * ny * nz) as u64;
        let t = threads as u64;
        // Processor-block size, rounded up to whole elements.
        let block_bytes = (elems * ELEM_BYTES).div_ceil(t * t).div_ceil(ELEM_BYTES) * ELEM_BYTES;
        let array_bytes = block_bytes * t * t;
        let mut layout = SharedLayout::new();
        let src = layout.alloc("src", array_bytes);
        let dst = layout.alloc("dst", array_bytes);
        let _globals = layout.alloc("globals", 256);
        Fft {
            name: name.to_owned(),
            elems,
            threads,
            block_bytes,
            src_base: src.base(),
            dst_base: dst.base(),
            shared_bytes: layout.total_bytes(),
        }
    }

    /// The paper's `2^6 x 2^6 x 2^6` input (FFT6).
    pub fn paper6(threads: usize) -> Self {
        Fft::new("FFT6", 64, 64, 64, threads)
    }

    /// The paper's `2^6 x 2^6 x 2^7` input (FFT7).
    pub fn paper7(threads: usize) -> Self {
        Fft::new("FFT7", 64, 64, 128, threads)
    }

    /// The paper's `2^6 x 2^6 x 2^8` input (FFT8).
    pub fn paper8(threads: usize) -> Self {
        Fft::new("FFT8", 64, 64, 256, threads)
    }

    /// Bytes of one processor-block.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    fn block_addr(&self, base: u64, row: usize, col: usize) -> u64 {
        base + (row as u64 * self.threads as u64 + col as u64) * self.block_bytes
    }

    /// Per-thread, per-pass compute: a 1D FFT pass over the thread's slab.
    fn pass_ns(&self) -> u64 {
        let per_thread = self.elems / self.threads as u64;
        // ~5 n log2 n work units across three passes.
        let logn = 64 - u64::leading_zeros(self.elems.max(2) - 1) as u64;
        5 * per_thread * logn / 3 * NS_PER_UNIT
    }
}

impl Program for Fft {
    fn name(&self) -> &str {
        &self.name
    }

    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn default_iterations(&self) -> usize {
        15
    }

    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        let t = self.threads;
        let row_bytes = self.block_bytes * t as u64;
        let own_src = self.block_addr(self.src_base, thread, 0);
        let own_dst = self.block_addr(self.dst_base, thread, 0);
        // Phase 1: local FFT pass over the owned source row.
        let mut ops = vec![
            Op::read(own_src, row_bytes),
            Op::compute(self.pass_ns()),
            Op::write(own_src, row_bytes),
            Op::Barrier,
        ];

        // Phase 2: transpose — read column `thread` of the source (one
        // block from every row), write the owned destination row.
        for j in 0..t {
            ops.push(Op::read(
                self.block_addr(self.src_base, j, thread),
                self.block_bytes,
            ));
            ops.push(Op::write(
                self.block_addr(self.dst_base, thread, j),
                self.block_bytes,
            ));
        }
        ops.push(Op::compute(self.pass_ns() / 4));
        ops.push(Op::Barrier);

        // Phase 3: local FFT pass over the transposed row.
        ops.push(Op::read(own_dst, row_bytes));
        ops.push(Op::compute(self.pass_ns()));
        ops.push(Op::write(own_dst, row_bytes));
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::validate_iteration;
    use acorr_mem::{pages_for, PAGE_SIZE};

    #[test]
    fn block_sizes_follow_table4_mechanism() {
        // 64 threads: 64³ → 512 B blocks (8/page), ×2 z → 1 KiB (4/page),
        // ×4 z → 2 KiB (2/page).
        assert_eq!(Fft::paper6(64).block_bytes(), 512);
        assert_eq!(Fft::paper7(64).block_bytes(), 1024);
        assert_eq!(Fft::paper8(64).block_bytes(), 2048);
        assert_eq!(PAGE_SIZE as u64 / Fft::paper6(64).block_bytes(), 8);
    }

    #[test]
    fn page_counts_scale_like_table1() {
        let p6 = pages_for(Fft::paper6(64).shared_bytes());
        let p7 = pages_for(Fft::paper7(64).shared_bytes());
        let p8 = pages_for(Fft::paper8(64).shared_bytes());
        // Two arrays of 2/4/8 MiB: 1024/2048/4096 pages + globals. The
        // paper's counts (1796/3588/7172) double the same way.
        assert_eq!((p6, p7, p8), (1025, 2049, 4097));
        assert!(p7 > p6 && p8 > 2 * p7 - p6 - 10);
    }

    #[test]
    fn forty_eight_threads_are_irregular() {
        // Non-power-of-two thread counts give blocks that do not divide the
        // page size, so blocks straddle page boundaries irregularly (the
        // paper's 48-thread irregularity).
        let f = Fft::paper6(48);
        assert_ne!(PAGE_SIZE as u64 % f.block_bytes(), 0);
        assert_eq!(f.block_bytes() % ELEM_BYTES, 0, "whole elements");
    }

    #[test]
    fn scripts_validate() {
        for threads in [8, 32, 48, 64] {
            validate_iteration(&Fft::paper6(threads), 0).unwrap();
        }
    }

    #[test]
    fn transpose_reads_every_row_once() {
        let f = Fft::new("fft", 16, 16, 16, 8);
        let script = f.script(3, 0);
        let col_reads: Vec<u64> = script
            .iter()
            .filter_map(|op| match *op {
                Op::Read { addr, len } if len == f.block_bytes() => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(col_reads.len(), 8);
        // Block (j, 3) for every j.
        for (j, addr) in col_reads.iter().enumerate() {
            assert_eq!(*addr, f.block_addr(f.src_base, j, 3));
        }
    }

    #[test]
    fn accesses_stay_in_bounds() {
        for threads in [7, 48, 64] {
            let f = Fft::paper6(threads);
            for t in 0..threads {
                for op in f.script(t, 0) {
                    if let Op::Read { addr, len } | Op::Write { addr, len } = op {
                        assert!(addr + len <= f.shared_bytes());
                    }
                }
            }
        }
    }
}
