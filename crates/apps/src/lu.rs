//! LU — blocked dense LU factorization (SPLASH-2 contiguous-threads style).
//!
//! The `n x n` `f32` matrix is stored **row-major** (as the paper's page
//! counts imply: 1024² × 4 B = the 1032 pages of Table 1's LU1k) and
//! processed in `B x B` blocks owned by a 2D-scattered thread grid. One
//! program iteration is one outer elimination step `k`:
//!
//! 1. the owner of diagonal block `(k,k)` factorizes it;
//! 2. owners of perimeter blocks `(i,k)`/`(k,j)` update them against the
//!    diagonal block;
//! 3. owners of interior blocks `(i,j)` update them against their
//!    perimeter row and column blocks.
//!
//! Because the matrix is row-major, every block touches `B` row-segments
//! whose pages are shared with the other threads of the same grid row —
//! the origin of LU's blocked correlation maps (Table 3) and its high
//! sharing degree (Table 5: 7.8 with 8 threads per node).

use acorr_dsm::{Op, Program};
use acorr_mem::SharedLayout;

const ELEM_BYTES: u64 = 4; // f32
const BLOCK: usize = 32;
/// Calibrated toward the paper's LU1k/LU2k iteration times.
const NS_PER_FLOP: u64 = 22;

/// Blocked LU factorization of an `n x n` matrix.
#[derive(Debug, Clone)]
pub struct Lu {
    name: String,
    n: usize,
    nb: usize,
    threads: usize,
    grid_rows: usize,
    grid_cols: usize,
    base: u64,
    shared_bytes: u64,
}

impl Lu {
    /// Creates an LU instance for an `n x n` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a positive multiple of the 32-element block
    /// size, or if `threads` is zero.
    pub fn new(name: &str, n: usize, threads: usize) -> Self {
        assert!(
            n > 0 && n.is_multiple_of(BLOCK),
            "n must be a positive multiple of {BLOCK}"
        );
        assert!(threads > 0, "threads must be positive");
        let (grid_rows, grid_cols) = crate::common::thread_grid(threads);
        let mut layout = SharedLayout::new();
        let m = layout.alloc("matrix", n as u64 * n as u64 * ELEM_BYTES);
        let _globals = layout.alloc("globals", 512);
        Lu {
            name: name.to_owned(),
            n,
            nb: n / BLOCK,
            threads,
            grid_rows,
            grid_cols,
            base: m.base(),
            shared_bytes: layout.total_bytes(),
        }
    }

    /// The paper's 1024x1024 input (LU1k).
    pub fn paper1k(threads: usize) -> Self {
        Lu::new("LU1k", 1024, threads)
    }

    /// The paper's 2048x2048 input (LU2k).
    pub fn paper2k(threads: usize) -> Self {
        Lu::new("LU2k", 2048, threads)
    }

    /// The 2D-scatter owner of block `(bi, bj)`.
    fn owner(&self, bi: usize, bj: usize) -> usize {
        (bi % self.grid_rows) * self.grid_cols + (bj % self.grid_cols)
    }

    /// Emits the ops accessing block `(bi, bj)`: one op per matrix row
    /// segment (row-major layout).
    fn block_ops(&self, bi: usize, bj: usize, write: bool, ops: &mut Vec<Op>) {
        let row_bytes = self.n as u64 * ELEM_BYTES;
        let seg = BLOCK as u64 * ELEM_BYTES;
        for r in 0..BLOCK {
            let addr = self.base
                + (bi * BLOCK + r) as u64 * row_bytes
                + bj as u64 * BLOCK as u64 * ELEM_BYTES;
            if write {
                ops.push(Op::write(addr, seg));
            } else {
                ops.push(Op::read(addr, seg));
            }
        }
    }
}

impl Program for Lu {
    fn name(&self) -> &str {
        &self.name
    }

    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn default_iterations(&self) -> usize {
        self.nb - 1
    }

    fn script(&self, thread: usize, iteration: usize) -> Vec<Op> {
        let k = iteration % (self.nb - 1);
        let b3 = (BLOCK * BLOCK * BLOCK) as u64;
        let mut ops = Vec::new();

        // Phase 1: factorize the diagonal block.
        if self.owner(k, k) == thread {
            self.block_ops(k, k, false, &mut ops);
            ops.push(Op::compute(2 * b3 / 3 * NS_PER_FLOP));
            self.block_ops(k, k, true, &mut ops);
        }
        ops.push(Op::Barrier);

        // Phase 2: perimeter updates against the diagonal block.
        let mut did_perimeter = false;
        for i in (k + 1)..self.nb {
            if self.owner(i, k) == thread {
                if !did_perimeter {
                    self.block_ops(k, k, false, &mut ops);
                    did_perimeter = true;
                }
                self.block_ops(i, k, false, &mut ops);
                ops.push(Op::compute(b3 * NS_PER_FLOP));
                self.block_ops(i, k, true, &mut ops);
            }
            if self.owner(k, i) == thread {
                if !did_perimeter {
                    self.block_ops(k, k, false, &mut ops);
                    did_perimeter = true;
                }
                self.block_ops(k, i, false, &mut ops);
                ops.push(Op::compute(b3 * NS_PER_FLOP));
                self.block_ops(k, i, true, &mut ops);
            }
        }
        ops.push(Op::Barrier);

        // Phase 3: interior updates against perimeter row/column blocks.
        // Read each needed perimeter block once, then update owned blocks.
        let mut read_rows = std::collections::BTreeSet::new();
        let mut read_cols = std::collections::BTreeSet::new();
        for i in (k + 1)..self.nb {
            for j in (k + 1)..self.nb {
                if self.owner(i, j) == thread {
                    read_rows.insert(i);
                    read_cols.insert(j);
                }
            }
        }
        for &i in &read_rows {
            self.block_ops(i, k, false, &mut ops);
        }
        for &j in &read_cols {
            self.block_ops(k, j, false, &mut ops);
        }
        let mut interior = 0u64;
        for i in (k + 1)..self.nb {
            for j in (k + 1)..self.nb {
                if self.owner(i, j) == thread {
                    self.block_ops(i, j, false, &mut ops);
                    self.block_ops(i, j, true, &mut ops);
                    interior += 1;
                }
            }
        }
        if interior > 0 {
            ops.push(Op::compute(interior * 2 * b3 * NS_PER_FLOP));
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::validate_iteration;
    use acorr_mem::pages_for;

    #[test]
    fn paper_inputs_match_table1_pages() {
        // Table 1: LU1k 1032 pages, LU2k 4105 pages.
        assert_eq!(pages_for(Lu::paper1k(64).shared_bytes()), 1025);
        assert_eq!(pages_for(Lu::paper2k(64).shared_bytes()), 4097);
    }

    #[test]
    fn scripts_validate_across_iterations() {
        let lu = Lu::new("lu", 256, 16);
        for iter in [0, 1, 3, 6] {
            validate_iteration(&lu, iter).unwrap();
        }
    }

    #[test]
    fn ownership_is_a_2d_scatter() {
        let lu = Lu::paper2k(64);
        assert_eq!(lu.grid_rows, 8);
        assert_eq!(lu.grid_cols, 8);
        assert_eq!(lu.owner(0, 0), 0);
        assert_eq!(lu.owner(0, 8), 0, "wraps by grid cols");
        assert_eq!(lu.owner(1, 0), 8);
        // Every thread owns some interior block at k=0.
        let mut owners = std::collections::HashSet::new();
        for i in 1..lu.nb {
            for j in 1..lu.nb {
                owners.insert(lu.owner(i, j));
            }
        }
        assert_eq!(owners.len(), 64);
    }

    #[test]
    fn later_iterations_shrink_the_active_region() {
        let lu = Lu::new("lu", 256, 4);
        let early: usize = (0..4).map(|t| lu.script(t, 0).len()).sum();
        let late: usize = (0..4).map(|t| lu.script(t, 5).len()).sum();
        assert!(late < early);
    }

    #[test]
    fn iteration_index_wraps() {
        let lu = Lu::new("lu", 256, 4);
        // nb = 8, so iterations cycle with period 7.
        assert_eq!(lu.script(2, 0), lu.script(2, 7));
    }

    #[test]
    fn block_rows_hit_row_major_pages() {
        let lu = Lu::paper2k(64);
        let mut ops = Vec::new();
        lu.block_ops(0, 1, false, &mut ops);
        assert_eq!(ops.len(), BLOCK);
        // Consecutive rows are a full 8 KiB row apart.
        if let (Op::Read { addr: a0, .. }, Op::Read { addr: a1, .. }) = (ops[0], ops[1]) {
            assert_eq!(a1 - a0, 2048 * 4);
        } else {
            panic!("expected reads");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn rejects_unaligned_matrix() {
        Lu::new("lu", 100, 4);
    }
}
