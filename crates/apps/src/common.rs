//! Shared helpers for the application suite.

/// Balanced contiguous partition: the half-open item range owned by `part`
/// of `parts` over `total` items (remainders spread one-per-part, matching
/// `Mapping::stretch`).
///
/// # Panics
///
/// Panics if `parts` is zero or `part >= parts`.
pub fn block_range(total: usize, parts: usize, part: usize) -> std::ops::Range<usize> {
    assert!(parts > 0, "parts must be positive");
    assert!(part < parts, "part {part} out of {parts}");
    let start = part * total / parts;
    let end = (part + 1) * total / parts;
    start..end
}

/// A near-square factorization `rows x cols = parts` with `cols >= rows`
/// (SPLASH-2 codes put the longer side on columns, which is what gives
/// LU its 8-thread grid-row blocks at every thread count in Table 3).
/// Falls back to `1 x parts` for primes.
pub fn thread_grid(parts: usize) -> (usize, usize) {
    assert!(parts > 0, "parts must be positive");
    let mut best = (1, parts);
    let mut rows = 1;
    while rows * rows <= parts {
        if parts.is_multiple_of(rows) {
            best = (rows, parts / rows);
        }
        rows += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_tile_exactly() {
        for total in [7usize, 64, 100, 2048] {
            for parts in [1usize, 3, 8, 64] {
                let mut covered = 0;
                let mut prev_end = 0;
                for p in 0..parts {
                    let r = block_range(total, parts, p);
                    assert_eq!(r.start, prev_end, "contiguous");
                    covered += r.len();
                    prev_end = r.end;
                }
                assert_eq!(covered, total);
                assert_eq!(prev_end, total);
            }
        }
    }

    #[test]
    fn block_ranges_are_balanced() {
        for p in 0..3 {
            let len = block_range(10, 3, p).len();
            assert!((3..=4).contains(&len));
        }
    }

    #[test]
    fn grids_factor_correctly() {
        assert_eq!(thread_grid(64), (8, 8));
        assert_eq!(thread_grid(32), (4, 8));
        assert_eq!(thread_grid(48), (6, 8));
        assert_eq!(thread_grid(16), (4, 4));
        assert_eq!(thread_grid(7), (1, 7));
        assert_eq!(thread_grid(1), (1, 1));
        for n in 1..=64usize {
            let (r, c) = thread_grid(n);
            assert_eq!(r * c, n);
            assert!(c >= r);
        }
    }
}
