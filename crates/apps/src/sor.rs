//! SOR — red/black successive over-relaxation.
//!
//! The paper's simplest application (Table 1: 2048x2048 input, 4099 shared
//! pages, barrier-only synchronization). Threads own contiguous row blocks
//! of one `f32` grid and exchange only the boundary rows with their
//! neighbors, giving the pure nearest-neighbor correlation map of Table 3
//! and a sharing degree barely above 1 (Table 5: 1.081).

use crate::common::block_range;
use acorr_dsm::{Op, Program};
use acorr_mem::SharedLayout;

const ELEM_BYTES: u64 = 4; // f32
/// Calibrated so a 64-thread, 8-node run of the 2048x2048 input takes on
/// the order of the paper's 0.15 s per iteration.
const NS_PER_POINT: u64 = 140;

/// Red/black SOR over an `rows x cols` grid of `f32`.
#[derive(Debug, Clone)]
pub struct Sor {
    rows: usize,
    cols: usize,
    threads: usize,
    grid_base: u64,
    shared_bytes: u64,
}

impl Sor {
    /// Creates an instance with an explicit grid size.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the thread count is zero, or if there are
    /// more threads than rows.
    pub fn new(rows: usize, cols: usize, threads: usize) -> Self {
        assert!(rows > 0 && cols > 0 && threads > 0, "degenerate SOR");
        assert!(threads <= rows, "more threads than rows");
        let mut layout = SharedLayout::new();
        let grid = layout.alloc("grid", rows as u64 * cols as u64 * ELEM_BYTES);
        let _globals = layout.alloc("globals", 256);
        Sor {
            rows,
            cols,
            threads,
            grid_base: grid.base(),
            shared_bytes: layout.total_bytes(),
        }
    }

    /// The paper's input: a 2048x2048 grid.
    pub fn paper(threads: usize) -> Self {
        Sor::new(2048, 2048, threads)
    }

    fn row_bytes(&self) -> u64 {
        self.cols as u64 * ELEM_BYTES
    }

    fn row_addr(&self, row: usize) -> u64 {
        self.grid_base + row as u64 * self.row_bytes()
    }
}

impl Program for Sor {
    fn name(&self) -> &str {
        "SOR"
    }

    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn default_iterations(&self) -> usize {
        20
    }

    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        let rows = block_range(self.rows, self.threads, thread);
        let own_addr = self.row_addr(rows.start);
        let own_bytes = rows.len() as u64 * self.row_bytes();
        let points = rows.len() as u64 * self.cols as u64;
        let mut ops = Vec::new();
        // Two half-sweeps (red, black) separated by a barrier; the final
        // barrier is implicit.
        for phase in 0..2 {
            if rows.start > 0 {
                ops.push(Op::read(self.row_addr(rows.start - 1), self.row_bytes()));
            }
            if rows.end < self.rows {
                ops.push(Op::read(self.row_addr(rows.end), self.row_bytes()));
            }
            ops.push(Op::read(own_addr, own_bytes));
            ops.push(Op::compute(points * NS_PER_POINT / 2));
            ops.push(Op::write(own_addr, own_bytes));
            if phase == 0 {
                ops.push(Op::Barrier);
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::validate_iteration;
    use acorr_mem::pages_for;

    #[test]
    fn paper_input_matches_table1_pages() {
        let sor = Sor::paper(64);
        let pages = pages_for(sor.shared_bytes());
        // Table 1: 4099 shared pages; one 16 MiB grid plus a globals page.
        assert_eq!(pages, 4097);
        assert!((pages as i64 - 4099).abs() <= 4);
    }

    #[test]
    fn scripts_validate_for_all_thread_counts() {
        for threads in [8, 32, 48, 64] {
            let sor = Sor::new(256, 256, threads);
            validate_iteration(&sor, 0).unwrap();
        }
    }

    #[test]
    fn only_boundary_rows_are_read_from_neighbors() {
        let sor = Sor::new(64, 64, 8);
        let script = sor.script(3, 0);
        let reads: Vec<(u64, u64)> = script
            .iter()
            .filter_map(|op| match *op {
                Op::Read { addr, len } => Some((addr, len)),
                _ => None,
            })
            .collect();
        // Rows 24..32 owned; neighbor reads are rows 23 and 32 (one row
        // each), own read is the 8-row block — per phase.
        let row = 64 * 4;
        assert!(reads.contains(&((23 * row) as u64, row as u64)));
        assert!(reads.contains(&((32 * row) as u64, row as u64)));
        assert!(reads.contains(&((24 * row) as u64, (8 * row) as u64)));
    }

    #[test]
    fn edge_threads_skip_missing_neighbors() {
        let sor = Sor::new(64, 64, 8);
        let first = sor.script(0, 0);
        let last = sor.script(7, 0);
        let count_reads = |s: &[Op]| s.iter().filter(|op| matches!(op, Op::Read { .. })).count();
        let middle = sor.script(3, 0);
        assert_eq!(count_reads(&middle) - count_reads(&first), 2);
        assert_eq!(count_reads(&middle) - count_reads(&last), 2);
    }

    #[test]
    fn scripts_are_static_across_iterations() {
        let sor = Sor::new(128, 128, 4);
        assert_eq!(sor.script(1, 0), sor.script(1, 7));
    }

    #[test]
    #[should_panic(expected = "more threads than rows")]
    fn rejects_overdecomposition() {
        Sor::new(4, 64, 8);
    }
}
