//! Racey — a deliberately data-racy two-thread fixture.
//!
//! Not part of the paper's Table 1 suite (and deliberately excluded from
//! [`SUITE_NAMES`](crate::SUITE_NAMES)): this program exists to give the
//! schedule explorer a known needle to find. Both threads write the same
//! 64 bytes of page 0, and the lock *almost* orders the writes:
//!
//! * thread 0: `Write(0..64)`, then `Lock(0)` / `Unlock(0)`;
//! * thread 1: `Lock(0)` / `Unlock(0)`, then `Write(0..64)`.
//!
//! Under the engine's default FIFO schedule thread 0 runs first, so its
//! release happens-before thread 1's acquire and the two writes are
//! ordered — no race. A scheduler that dispatches thread 1 first breaks
//! the chain: thread 1's write precedes its *own* acquire-side history of
//! thread 0 entirely, thread 0's write precedes its release, and the two
//! writes become concurrent. One steered decision is enough, which makes
//! the shrunk counterexample (`s1:1`) a good end-to-end check of
//! exploration, happens-before detection and replay.
//!
//! Both threads must share a node for the dispatch order to be steerable,
//! so run it on a single-node cluster.

use acorr_dsm::{LockId, Op, Program};
use acorr_mem::PAGE_SIZE;

/// The seeded-race fixture (2 threads, 1 lock, 1 shared page).
#[derive(Debug, Clone, Copy, Default)]
pub struct Racey;

impl Program for Racey {
    fn name(&self) -> &str {
        "Racey"
    }

    fn shared_bytes(&self) -> u64 {
        PAGE_SIZE as u64
    }

    fn num_threads(&self) -> usize {
        2
    }

    fn num_locks(&self) -> usize {
        1
    }

    fn default_iterations(&self) -> usize {
        2
    }

    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        let lock = LockId(0);
        match thread {
            0 => vec![Op::write(0, 64), Op::Lock(lock), Op::Unlock(lock)],
            _ => vec![Op::Lock(lock), Op::Unlock(lock), Op::write(0, 64)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::validate_iteration;

    #[test]
    fn fixture_validates() {
        validate_iteration(&Racey, 0).unwrap();
        assert_eq!(Racey.num_threads(), 2);
        assert_eq!(Racey.num_locks(), 1);
    }

    #[test]
    fn writes_overlap_and_straddle_the_lock() {
        let t0 = Racey.script(0, 0);
        let t1 = Racey.script(1, 0);
        assert_eq!(t0[0], Op::write(0, 64));
        assert_eq!(t1[2], Op::write(0, 64));
        assert!(matches!(t0[1], Op::Lock(_)));
        assert!(matches!(t1[0], Op::Lock(_)));
    }
}
