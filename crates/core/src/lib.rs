//! # acorr — Active Correlation Tracking
//!
//! A full reproduction of *"Active Correlation Tracking"* (Thitikamol &
//! Keleher, ICDCS 1999) as a Rust library: a CVM-like software DSM with
//! per-node multithreading and thread migration, the active and passive
//! correlation-tracking mechanisms, correlation maps, cut costs, placement
//! heuristics, and the paper's application suite — all running on a
//! deterministic simulated cluster.
//!
//! This crate is the facade: it re-exports the layered API and provides the
//! [`experiment`] drivers that reproduce each of the paper's tables and
//! figures.
//!
//! ## Quick start
//!
//! ```
//! use acorr::apps::Sor;
//! use acorr::experiment::Workbench;
//! use acorr::place::min_cost;
//! use acorr::track::{cut_cost, CorrelationMatrix};
//!
//! # fn main() -> Result<(), acorr::dsm::DsmError> {
//! // A small SOR instance on a 4-node cluster with 16 threads.
//! let bench = Workbench::new(4, 16)?;
//! let truth = bench.ground_truth(|| Sor::new(256, 256, 16))?;
//!
//! // Thread correlations → cut costs → a better placement.
//! let corr = CorrelationMatrix::from_access(&truth.access);
//! let better = min_cost(&corr, &bench.cluster);
//! assert!(cut_cost(&corr, &better) <= cut_cost(&corr, &truth.mapping));
//! # Ok(())
//! # }
//! ```
//!
//! ## Layers
//!
//! * [`sim`] — simulated time, deterministic RNG, topology, cost models.
//! * [`mem`] — pages, protections, bitmaps, dirty ranges, access matrices.
//! * [`dsm`] — the DSM engine: LRC protocol, scheduler, migration, both
//!   tracking mechanisms.
//! * [`track`] — correlations, maps, cut costs, sharing degree, aging.
//! * [`place`] — stretch / random / min-cost / optimal placement.
//! * [`apps`] — the Table 1 application suite.
//! * [`obs`] — observability: event sinks (JSONL, Chrome/Perfetto trace),
//!   metrics time series and histograms, reproducible run manifests.
//! * [`sched`] — controllable schedules: replay tokens, random and
//!   preemption-bounded systematic exploration, shrinking.
//! * [`experiment`] — drivers for Tables 1-6 and Figures 1-3.
//! * [`explore`] — schedule-space exploration with happens-before race
//!   detection and differential protocol checking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod explore;
pub mod serve;

/// The application suite (re-export of `acorr-apps`).
pub mod apps {
    pub use acorr_apps::*;
}

/// The DSM engine (re-export of `acorr-dsm`).
pub mod dsm {
    pub use acorr_dsm::*;
}

/// Memory substrate (re-export of `acorr-mem`).
pub mod mem {
    pub use acorr_mem::*;
}

/// Observability: sinks, metrics, manifests (re-export of `acorr-obs`).
pub mod obs {
    pub use acorr_obs::*;
}

/// Placement heuristics (re-export of `acorr-place`).
pub mod place {
    pub use acorr_place::*;
}

/// Controllable schedules and exploration (re-export of `acorr-sched`).
pub mod sched {
    pub use acorr_sched::*;
}

/// Simulation substrate (re-export of `acorr-sim`).
pub mod sim {
    pub use acorr_sim::*;
}

/// Correlation analysis (re-export of `acorr-track`).
pub mod track {
    pub use acorr_track::*;
}

pub use experiment::{
    mapping_digest, node_count_study, scale_placement_study, AdaptiveStudy, ConformanceRun,
    CutCostSample, CutCostStudy, GroundTruth, HeuristicRow, NodeCountRow, ObservedRun,
    OnDemandStudy, PassiveStudy, PhaseScan, ScalePlacement, TrackingOverheadRow, Workbench,
};
pub use explore::{ExploreFailure, ExploreOptions, ExploreReport, FailureKind};
pub use serve::{ServeDecision, ServeOptions, ServeReport};
