//! Schedule-space exploration: the driver tying `acorr-sched` to the
//! engine and its checkers.
//!
//! [`Workbench::explore_run`] runs one application under many thread
//! interleavings and checks every run three ways:
//!
//! 1. **Happens-before races** — the vector-clock detector records the
//!    races of each run; the *default* schedule's race set is the
//!    per-protocol baseline (the paper's applications are structurally
//!    racy by design, e.g. Water's multi-writer windows), and any race
//!    *not* in the baseline is a schedule-dependent bug.
//! 2. **Differential protocol checking** — every run's per-barrier
//!    program-visible memory digests must equal the multi-writer default
//!    baseline's. Since both the multi-writer and single-writer protocol
//!    are checked against the same anchor, MW and SW agree at every
//!    barrier of every schedule transitively.
//! 3. **Oracle cross-checks** — the coherence oracle shadows every run
//!    (violations fail the schedule), and every page the oracle marked
//!    *hazy* must carry a detector write-write race: the two mechanisms
//!    must agree on where unordered writes live.
//!
//! On failure the schedule is concretized (the failing run's decision log
//! replayed as an explicit prefix), shrunk to a minimal prefix with
//! [`acorr_sched::shrink`], and reported as a replay token that
//! `acorr explore --replay TOKEN` (or [`ExploreOptions::replay`])
//! reproduces byte-for-byte.
//!
//! With `budget: 1` only the default schedule runs, and its multi-writer
//! measurement is bit-identical to
//! [`Workbench::heuristic_comparison`]'s row for the same parameters —
//! steering with all-default choices is the unsteered engine.

use crate::experiment::{HeuristicRow, Workbench};
use acorr_dsm::{Dsm, DsmError, InjectedBug, Program, WriteMode};
use acorr_mem::{PageId, Race, RaceReport};
use acorr_place::{place, Strategy};
use acorr_sched::{shrink_pair, ExploreMode, Explorer, Schedule, ScheduleDriver};
use acorr_sim::{DecisionRecord, DetRng, Mapping, SimDuration};
use acorr_track::cut_cost;
use std::collections::BTreeSet;
use std::fmt;

/// What [`Workbench::explore_run`] should do.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Placement strategy for the explored runs (the mapping is computed
    /// once, from the unsteered ground truth, exactly as
    /// [`Workbench::heuristic_comparison`] does for its first strategy).
    pub strategy: Strategy,
    /// Measured iterations per run (after one warm-up iteration).
    pub iterations: usize,
    /// Maximum schedules to try, including the default schedule. Each
    /// schedule runs twice: once multi-writer, once single-writer.
    pub budget: usize,
    /// How schedules beyond the default are generated.
    pub mode: ExploreMode,
    /// Delta interval of the single-writer runs.
    pub sw_delta: SimDuration,
    /// Replay exactly this schedule instead of exploring (the budget and
    /// mode are ignored; the default-schedule baseline still runs first).
    pub replay: Option<Schedule>,
    /// Protocol bug to inject into every explored run (the adversarial
    /// fixture: the model checker must *find* the counterexample the bug
    /// plants). `None` checks the real protocol.
    pub inject: Option<InjectedBug>,
    /// Worker threads for the explored schedules (`0` = all the host
    /// offers, `1` = sequential). Schedules are drained from the explorer
    /// in waves and run on [`acorr_sim::pool::par_map_indexed`]; results
    /// are judged in wave order, so the report — schedules run, first
    /// failure, shrunk token — is bit-identical at any job count. With an
    /// observer attached the runs stay sequential regardless (sinks
    /// stream to external backends).
    pub jobs: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            strategy: Strategy::MinCost,
            iterations: 2,
            budget: 20,
            mode: ExploreMode::Random { seed: 0xACE5 },
            sw_delta: SimDuration::from_micros(200),
            replay: None,
            inject: None,
            jobs: 1,
        }
    }
}

/// The kind of check a schedule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The coherence oracle flagged a violation during the run.
    OracleViolation,
    /// The run produced a happens-before race absent from the default
    /// schedule's baseline race set for the same protocol.
    NewRace,
    /// A per-barrier program-visible memory digest differed from the
    /// multi-writer default baseline.
    Divergence,
    /// The oracle marked a page hazy but the detector recorded no
    /// write-write race on it (the two mechanisms disagree).
    HazyUncovered,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureKind::OracleViolation => write!(f, "oracle violation"),
            FailureKind::NewRace => write!(f, "new race"),
            FailureKind::Divergence => write!(f, "visible-memory divergence"),
            FailureKind::HazyUncovered => write!(f, "hazy page without write-write race"),
        }
    }
}

/// A failing schedule, shrunk and ready to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreFailure {
    /// Replay token of the (shrunk) failing schedule.
    pub token: String,
    /// Which check failed.
    pub kind: FailureKind,
    /// Protocol under which the check failed.
    pub write_mode: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl fmt::Display for ExploreFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} under {} at schedule {}: {}",
            self.kind, self.write_mode, self.token, self.detail
        )
    }
}

/// Outcome of a schedule-space exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// Application name.
    pub app: String,
    /// Schedules evaluated (each under both protocols), incl. the default.
    pub schedules_run: usize,
    /// Decision points the default multi-writer run consulted.
    pub decision_points: usize,
    /// The default schedule's multi-writer measurement — bit-identical to
    /// [`Workbench::heuristic_comparison`]'s row for the same strategy.
    pub baseline: HeuristicRow,
    /// Distinct baseline races under (multi-writer, single-writer); these
    /// are the program's structural races, present in every schedule.
    pub baseline_races: (usize, usize),
    /// The first failing schedule found, if any, shrunk to a minimal
    /// replay token.
    pub failure: Option<ExploreFailure>,
    /// Model-check mode: distinct state keys observed (0 in other modes).
    /// Runs whose state was already known are pruned — they expand no
    /// further deviations.
    pub distinct_states: usize,
}

impl fmt::Display for ExploreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} schedule(s), {} decision point(s) in the default run",
            self.app, self.schedules_run, self.decision_points
        )?;
        writeln!(
            f,
            "baseline races: {} multi-writer, {} single-writer (structural)",
            self.baseline_races.0, self.baseline_races.1
        )?;
        if self.distinct_states > 0 {
            writeln!(
                f,
                "distinct states: {} (state-hash pruning)",
                self.distinct_states
            )?;
        }
        match &self.failure {
            None => write!(f, "no new races, no divergences"),
            Some(fail) => write!(f, "FAILED: {fail}"),
        }
    }
}

/// One protocol's run of one schedule.
struct ProtoRun {
    stats_row: Option<HeuristicRow>,
    races: BTreeSet<Race>,
    report: RaceReport,
    digests: Vec<u64>,
    hazy: Vec<PageId>,
    log: Vec<DecisionRecord>,
    fault_log: Vec<DecisionRecord>,
    state_key: u64,
    violation: Option<String>,
}

const MW: &str = "multi-writer";
const SW: &str = "single-writer";

/// FNV-1a fold of one `u64` into a running hash.
fn mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// The model checker's pruning key for one schedule's (MW, SW) run pair.
/// Each run's key already folds its per-barrier `VisibleImage` digest
/// stream with the *structure* (alternatives columns) of its decision
/// logs; chosen columns are deliberately excluded so distinct decision
/// paths that converge to the same memory state and expose the same
/// downstream decision structure collapse into one state.
fn pair_state_key(mw: &ProtoRun, sw: &ProtoRun) -> u64 {
    mix(mix(0xCBF2_9CE4_8422_2325, mw.state_key), sw.state_key)
}

/// Applies every check to a schedule's two runs against the default
/// baselines. Returns the first failure as (kind, protocol, detail).
fn judge(
    mw: &ProtoRun,
    sw: &ProtoRun,
    base_mw: &ProtoRun,
    base_sw: &ProtoRun,
) -> Option<(FailureKind, &'static str, String)> {
    for (run, base, mode) in [(mw, base_mw, MW), (sw, base_sw, SW)] {
        if let Some(v) = &run.violation {
            return Some((FailureKind::OracleViolation, mode, v.clone()));
        }
        // A race is *new* when the default schedule produced no race at
        // all on the same page. Novelty is judged per page, not per
        // thread pair or kind: inside a structurally racy page (a
        // multi-writer window, an unsynchronized producer/consumer
        // overlap) steering dispatch and lock-grant order legitimately
        // permutes which threads collide and how — but no schedule can
        // make a race-free page racy.
        let known: BTreeSet<PageId> = base.races.iter().map(|r| r.page).collect();
        if let Some(race) = run.races.iter().find(|r| !known.contains(&r.page)) {
            return Some((
                FailureKind::NewRace,
                mode,
                format!("{race} (the default schedule has no race on {})", race.page),
            ));
        }
        // Every schedule's digests must match the MW default baseline:
        // non-sensitive bytes are single-writer-per-interval with pure
        // write tokens, so they are schedule- and protocol-invariant.
        if run.digests != base_mw.digests {
            let barrier = run
                .digests
                .iter()
                .zip(&base_mw.digests)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| run.digests.len().min(base_mw.digests.len()));
            return Some((
                FailureKind::Divergence,
                mode,
                format!(
                    "visible-memory digest differs from the multi-writer default \
                     baseline first at barrier {barrier} \
                     ({} vs {} barriers total)",
                    run.digests.len(),
                    base_mw.digests.len()
                ),
            ));
        }
    }
    // Hazy/race agreement is only meaningful where hazy bytes exist: the
    // multi-writer protocol's unordered concurrent diffs.
    for page in &mw.hazy {
        if !mw.report.has_ww_on(*page) {
            return Some((
                FailureKind::HazyUncovered,
                MW,
                format!("oracle marked {page} hazy but no write-write race was detected on it"),
            ));
        }
    }
    None
}

impl Workbench {
    /// Explores the schedule space of `factory`'s application, checking
    /// every run for new happens-before races, visible-memory divergence
    /// against the multi-writer default baseline, and oracle agreement
    /// (see the [module docs](crate::explore)).
    ///
    /// # Errors
    ///
    /// Propagates engine errors other than oracle violations (those are a
    /// per-schedule failure signal, reported in the returned
    /// [`ExploreReport`], not an `Err`).
    ///
    /// # Panics
    ///
    /// Panics if `options.budget` is zero.
    pub fn explore_run<P, F>(
        &self,
        factory: F,
        options: &ExploreOptions,
    ) -> Result<ExploreReport, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        assert!(options.budget > 0, "budget must be at least 1");
        let truth = self.ground_truth(&factory)?;
        // Same recipe as heuristic_comparison's first strategy, so the
        // baseline row is bit-identical to its row.
        let mut rng = DetRng::new(self.seed).fork(0x6E1);
        let mapping = place(options.strategy, &truth.corr, &self.cluster, &mut rng);
        let cut = cut_cost(&truth.corr, &mapping);

        let default = Schedule::default_order();
        let base_mw = self.steered_run(&factory, &mapping, &default, MW, options)?;
        let base_sw = self.steered_run(&factory, &mapping, &default, SW, options)?;
        let baseline = match &base_mw.stats_row {
            Some(row) => HeuristicRow {
                app: truth.app.clone(),
                strategy: options.strategy,
                cut_cost: cut,
                ..row.clone()
            },
            None => HeuristicRow {
                app: truth.app.clone(),
                strategy: options.strategy,
                time: SimDuration::from_nanos(0),
                remote_misses: 0,
                total_mbytes: 0.0,
                diff_mbytes: 0.0,
                cut_cost: cut,
            },
        };
        let mut report = ExploreReport {
            app: truth.app.clone(),
            schedules_run: 1,
            decision_points: base_mw.log.len(),
            baseline,
            baseline_races: (base_mw.races.len(), base_sw.races.len()),
            failure: None,
            distinct_states: 0,
        };

        // The default schedule itself must pass the absolute checks
        // (oracle, digest agreement, hazy coverage).
        if let Some(fail) = judge(&base_mw, &base_sw, &base_mw, &base_sw) {
            report.failure = Some(self.shrunk(
                &factory, &mapping, options, &base_mw, &base_sw, &base_mw, &base_sw, fail,
            )?);
            return Ok(report);
        }

        if let Some(replay) = &options.replay {
            let mw = self.steered_run(&factory, &mapping, replay, MW, options)?;
            let sw = self.steered_run(&factory, &mapping, replay, SW, options)?;
            report.schedules_run += 1;
            // A replay reports what it found verbatim — no shrinking; the
            // token the caller passed in is already the counterexample.
            report.failure =
                judge(&mw, &sw, &base_mw, &base_sw).map(|(kind, mode, detail)| ExploreFailure {
                    token: replay.token(),
                    kind,
                    write_mode: mode,
                    detail,
                });
            return Ok(report);
        }

        // Schedules are drained from the explorer in waves of up to `jobs`
        // and run on the deterministic pool. The wave sequence visits
        // exactly the serial schedule order: draining never outruns the
        // frontier (a short wave just ends early), and children observed
        // while replaying a wave's logs land *behind* every entry the wave
        // already drained — the same relative order the serial loop
        // produces. Results are observed and judged in wave index order, so
        // the first failure (and with it `schedules_run` and the shrunk
        // token) is bit-identical at any job count. A wave may run a few
        // schedules past a failure; those runs are pure and discarded.
        let jobs = if self.observer.is_some() {
            1 // sinks stream to external backends; keep runs sequential
        } else {
            acorr_sim::pool::resolve_threads(options.jobs)
        };
        let model_check = matches!(options.mode, ExploreMode::ModelCheck { .. });
        let mut explorer = Explorer::new(options.mode, options.budget);
        let first = explorer
            .next_schedule()
            .expect("budget >= 1 yields the default schedule");
        debug_assert!(first.is_default());
        if model_check {
            explorer.observe_model(
                &base_mw.log,
                &base_mw.fault_log,
                pair_state_key(&base_mw, &base_sw),
            );
        } else {
            explorer.observe(&base_mw.log);
        }
        loop {
            let mut wave = Vec::new();
            while wave.len() < jobs.max(1) {
                match explorer.next_schedule() {
                    Some(schedule) => wave.push(schedule),
                    None => break,
                }
            }
            if wave.is_empty() {
                report.distinct_states = explorer.distinct_states();
                return Ok(report);
            }
            let runs = acorr_sim::pool::par_map_indexed(jobs, wave, |_, schedule| {
                let mw = self.steered_run(&factory, &mapping, &schedule, MW, options)?;
                let sw = self.steered_run(&factory, &mapping, &schedule, SW, options)?;
                Ok::<_, DsmError>((mw, sw))
            });
            for run in runs {
                let (mw, sw) = run?;
                report.schedules_run += 1;
                if model_check {
                    explorer.observe_model(&mw.log, &mw.fault_log, pair_state_key(&mw, &sw));
                } else {
                    explorer.observe(&mw.log);
                }
                if let Some(fail) = judge(&mw, &sw, &base_mw, &base_sw) {
                    report.distinct_states = explorer.distinct_states();
                    report.failure = Some(self.shrunk(
                        &factory, &mapping, options, &base_mw, &base_sw, &mw, &sw, fail,
                    )?);
                    return Ok(report);
                }
            }
        }
    }

    /// Runs one (schedule, protocol) instance with the oracle, the race
    /// detector and the visible image attached, collecting everything the
    /// checks need. Oracle violations are captured, not propagated.
    fn steered_run<P, F>(
        &self,
        factory: &F,
        mapping: &Mapping,
        schedule: &Schedule,
        write_mode: &'static str,
        options: &ExploreOptions,
    ) -> Result<ProtoRun, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        let mut config = self.config.clone();
        config.write_mode = if write_mode == MW {
            WriteMode::MultiWriter
        } else {
            WriteMode::SingleWriter {
                delta: options.sw_delta,
            }
        };
        if let Some(bug) = options.inject {
            config = config.with_injected_bug(bug);
        }
        let mut dsm = Dsm::new(config, factory(), mapping.clone())?;
        if let Some(obs) = &self.observer {
            let (sink, _handle) = acorr_obs::observer(obs, self.cluster.num_nodes());
            dsm.attach_sink(sink);
        }
        let (driver, log) = ScheduleDriver::new(schedule);
        let fault_log = driver.fault_log();
        dsm.set_schedule_policy(Box::new(driver));
        dsm.enable_oracle();
        dsm.enable_race_detection();
        dsm.enable_visible_image();
        let outcome = dsm
            .run_iterations(1) // cold-start warm-up
            .and_then(|_| dsm.run_iterations(options.iterations));
        let (stats_row, violation) = match outcome {
            Ok(stats) => (
                Some(HeuristicRow {
                    app: String::new(),
                    strategy: options.strategy,
                    time: stats.elapsed,
                    remote_misses: stats.remote_misses,
                    total_mbytes: stats.total_mbytes(),
                    diff_mbytes: stats.diff_mbytes(),
                    cut_cost: 0,
                }),
                None,
            ),
            Err(DsmError::OracleViolation { iteration, detail }) => {
                (None, Some(format!("iteration {iteration}: {detail}")))
            }
            Err(e) => return Err(e),
        };
        let race = dsm.race_report().expect("race detection was enabled");
        let visible = dsm.visible_image().expect("visible image was enabled");
        let log = log.records();
        let fault_log = fault_log.records();
        // Per-run pruning key: the digest stream plus the decision
        // *structure* of both logs (see `pair_state_key`).
        let mut state_key = mix(0xCBF2_9CE4_8422_2325, visible.state_key());
        for r in log.iter().chain(&fault_log) {
            state_key = mix(state_key, u64::from(r.alternatives));
        }
        Ok(ProtoRun {
            stats_row,
            races: race.races.iter().copied().collect(),
            report: race,
            digests: visible.digests().to_vec(),
            hazy: dsm.oracle_hazy_pages().expect("oracle was enabled"),
            log,
            fault_log,
            state_key,
            violation,
        })
    }

    /// Concretizes a failing schedule from its decision logs, shrinks it
    /// to a minimal prefix and renders the replay token. Shrinking
    /// re-runs both protocols per candidate; a candidate "fails" when
    /// *any* check fails, so the result stays a genuine counterexample
    /// throughout.
    #[allow(clippy::too_many_arguments)]
    fn shrunk<P, F>(
        &self,
        factory: &F,
        mapping: &Mapping,
        options: &ExploreOptions,
        base_mw: &ProtoRun,
        base_sw: &ProtoRun,
        mw: &ProtoRun,
        sw: &ProtoRun,
        fail: (FailureKind, &'static str, String),
    ) -> Result<ExploreFailure, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        let choices =
            |log: &[DecisionRecord]| -> Vec<u32> { log.iter().map(|r| r.chosen).collect() };
        // Concretize from the failing protocol's logs: a prescribed
        // (schedule, fault) prefix pair of its own recorded choices
        // reproduces that run — and therefore its failure — exactly.
        let failing = if fail.1 == SW { sw } else { mw };
        let primary = choices(&failing.log);
        let primary_faults = choices(&failing.fault_log);
        let mut error: Option<DsmError> = None;
        let (min_sched, min_faults) = shrink_pair(&primary, &primary_faults, |prefix, faults| {
            if error.is_some() {
                return false;
            }
            let schedule = Schedule::prescribed(prefix.to_vec()).with_faults(faults.to_vec());
            let m = match self.steered_run(factory, mapping, &schedule, MW, options) {
                Ok(m) => m,
                Err(e) => {
                    error = Some(e);
                    return false;
                }
            };
            let s = match self.steered_run(factory, mapping, &schedule, SW, options) {
                Ok(s) => s,
                Err(e) => {
                    error = Some(e);
                    return false;
                }
            };
            judge(&m, &s, base_mw, base_sw).is_some()
        });
        if let Some(e) = error {
            return Err(e);
        }
        // Re-judge the minimal schedule so the reported kind and detail
        // describe the schedule the token actually names.
        let schedule = Schedule::prescribed(min_sched).with_faults(min_faults);
        let m = self.steered_run(factory, mapping, &schedule, MW, options)?;
        let s = self.steered_run(factory, mapping, &schedule, SW, options)?;
        let (kind, mode, detail) = judge(&m, &s, base_mw, base_sw).unwrap_or(fail);
        Ok(ExploreFailure {
            token: schedule.token(),
            kind,
            write_mode: mode,
            detail,
        })
    }
}
