//! The online placement service (`acorr serve`).
//!
//! This closes ROADMAP item 1: the paper's tracking, detection and
//! placement machinery runs *while the workload runs*. A deterministic
//! traffic driver ([`TrafficDriver`]) streams per-step sharing edges
//! into windowed correlation tracking; when the [`PhaseDetector`]
//! fires, the service recomputes placement (incremental Kernighan-Lin
//! refinement at small scale, the multilevel partitioner at large),
//! gates re-mapping on the predicted cut-cost improvement strictly
//! exceeding a [`MigrationCostModel`] charge, and realizes accepted
//! plans under a selectable [`MigrationPolicy`].
//!
//! Every decision — phase shift, accept/reject with its costs, the
//! migrations applied — lands on the decision timeline (and, when an
//! observer is attached, in the obs sinks as Perfetto marks on the
//! decision lane). The loop is a pure function of `(seed, scenario,
//! jobs)`: traffic generation is the only parallel stage and it is
//! order-collected, so the timeline and final mapping are bit-identical
//! at any worker count.
//!
//! [`Workbench::serve_app`] runs the same decision core against a live
//! DSM engine instead of synthetic traffic, re-mapping threads through
//! [`Dsm::migrate_to`](acorr_dsm::Dsm::migrate_to) mid-run.

use crate::experiment::{mapping_digest, Workbench};
use acorr_dsm::trace::Event;
use acorr_dsm::{DsmError, Program};
use acorr_obs::{bytes_digest, ObsHandle, Observation, PhaseDetector};
use acorr_place::{
    multilevel_place, plan_migration, refine_kl, MigrationCostModel, MigrationPolicy,
};
use acorr_sim::{ClusterConfig, Mapping, Scenario, SimTime, TrafficConfig, TrafficDriver};
use acorr_track::{cut_cost, CorrelationMatrix, CorrelationStore, SparseCorrelation};
use std::fmt;

/// Knobs of one service run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOptions {
    /// The traffic script (ignored by [`Workbench::serve_app`]).
    pub scenario: Scenario,
    /// Steps (traffic steps or tracked engine iterations) to serve.
    pub steps: usize,
    /// Tenants sharing the thread range (traffic mode only).
    pub tenants: usize,
    /// Detector window length, in steps.
    pub window: usize,
    /// Traffic generation/cycle period, in steps (traffic mode only).
    pub period: u64,
    /// How accepted candidates become thread movement.
    pub policy: MigrationPolicy,
    /// The re-mapping gate.
    pub cost_model: MigrationCostModel,
    /// Thread count above which candidates come from the multilevel
    /// partitioner instead of incremental Kernighan-Lin refinement.
    pub multilevel_above: usize,
    /// Swap budget per decision for the interchange policy.
    pub max_swaps: usize,
}

impl ServeOptions {
    /// Defaults tuned for the paper-scale cluster (8×64): 48 steps of
    /// four tenants, window 2, period 12, greedy policy, the default
    /// cost model.
    pub fn new(scenario: Scenario) -> ServeOptions {
        ServeOptions {
            scenario,
            steps: 48,
            tenants: 4,
            window: 2,
            period: 12,
            policy: MigrationPolicy::Greedy,
            cost_model: MigrationCostModel::default(),
            multilevel_above: 512,
            max_swaps: 8,
        }
    }

    /// Replaces the step count.
    #[must_use]
    pub fn with_steps(mut self, steps: usize) -> ServeOptions {
        self.steps = steps;
        self
    }

    /// Replaces the migration policy.
    #[must_use]
    pub fn with_policy(mut self, policy: MigrationPolicy) -> ServeOptions {
        self.policy = policy;
        self
    }

    /// Replaces the migration cost model.
    #[must_use]
    pub fn with_cost_model(mut self, cost_model: MigrationCostModel) -> ServeOptions {
        self.cost_model = cost_model;
        self
    }
}

/// One entry of the decision timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeDecision {
    /// The detector fired: the sharing structure shifted.
    Shift {
        /// Step whose observation closed the firing window.
        step: u64,
        /// Detector window ordinal that fired.
        window: u64,
        /// Divergence, parts per million.
        delta_ppm: u64,
    },
    /// A re-mapping verdict taken right after a shift.
    Remap {
        /// Step the verdict was taken at.
        step: u64,
        /// Whether the plan beat the cost gate and was applied.
        accepted: bool,
        /// Threads the plan moves.
        moves: u64,
        /// Cut cost of the incumbent mapping on the firing window.
        cut_before: u64,
        /// Predicted cut cost of the planned mapping.
        cut_after: u64,
        /// Migration cost charged by the model.
        cost: u64,
    },
}

impl fmt::Display for ServeDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServeDecision::Shift {
                step,
                window,
                delta_ppm,
            } => write!(f, "shift step={step} window={window} delta_ppm={delta_ppm}"),
            ServeDecision::Remap {
                step,
                accepted,
                moves,
                cut_before,
                cut_after,
                cost,
            } => write!(
                f,
                "remap step={step} decision={} moves={moves} cut_before={cut_before} \
                 cut_after={cut_after} cost={cost}",
                if accepted { "accept" } else { "reject" }
            ),
        }
    }
}

/// What one service run did, with the full decision timeline.
#[derive(Debug)]
pub struct ServeReport {
    /// Scenario name (traffic mode) or `"<app> (engine)"`.
    pub label: String,
    /// Policy the run migrated under.
    pub policy: MigrationPolicy,
    /// Steps served.
    pub steps: usize,
    /// Detector window length.
    pub window: usize,
    /// Every decision, in step order.
    pub timeline: Vec<ServeDecision>,
    /// Phase shifts detected.
    pub shifts: usize,
    /// Re-mappings accepted.
    pub accepted: usize,
    /// Re-mappings rejected by the cost gate.
    pub rejected: usize,
    /// Total threads moved across accepted re-mappings.
    pub migrated: u64,
    /// Cut cost summed over all steps under the served (re-mapped)
    /// placement.
    pub served_cut: u64,
    /// Cut cost summed over the same steps under the never-re-mapped
    /// initial placement — the baseline an accepted re-map must beat.
    pub static_cut: u64,
    /// The mapping the service ended on.
    pub final_mapping: Mapping,
    /// Collected artifacts when the workbench had an observer attached.
    pub observation: Option<Observation>,
}

impl ServeReport {
    /// The timeline as stable text: one decision per line.
    pub fn timeline_text(&self) -> String {
        let mut text = String::new();
        for decision in &self.timeline {
            text.push_str(&decision.to_string());
            text.push('\n');
        }
        text
    }

    /// FNV-1a digest of [`ServeReport::timeline_text`] — the pinned
    /// value CI smoke greps.
    pub fn timeline_digest(&self) -> String {
        bytes_digest(self.timeline_text().as_bytes())
    }

    /// Digest of the final mapping.
    pub fn final_mapping_digest(&self) -> String {
        mapping_digest(&self.final_mapping)
    }

    /// The golden-snapshot text: header counters, digests, then the
    /// full timeline.
    pub fn snapshot(&self) -> String {
        format!(
            "scenario={} steps={} window={} policy={}\n\
             shifts={} accepted={} rejected={} migrated={}\n\
             served_cut={} static_cut={}\n\
             final_mapping={}\n\
             {}",
            self.label,
            self.steps,
            self.window,
            self.policy,
            self.shifts,
            self.accepted,
            self.rejected,
            self.migrated,
            self.served_cut,
            self.static_cut,
            self.final_mapping_digest(),
            self.timeline_text(),
        )
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve {}: policy {}, {} step(s), window {}",
            self.label, self.policy, self.steps, self.window
        )?;
        writeln!(
            f,
            "shifts {}, remaps accepted {}, rejected {}, threads moved {}",
            self.shifts, self.accepted, self.rejected, self.migrated
        )?;
        write!(
            f,
            "cut served {} vs never-remap {}",
            self.served_cut, self.static_cut
        )
    }
}

/// One evaluated re-mapping opportunity.
struct RemapVerdict {
    planned: Mapping,
    moves: usize,
    cut_before: u64,
    cut_after: u64,
    cost: u64,
    accepted: bool,
}

/// The decision core shared by both service modes: recompute a
/// candidate on the firing window's correlation, plan its realization
/// under the policy, and gate on predicted improvement vs. cost.
fn evaluate_remap<C: CorrelationStore>(
    options: &ServeOptions,
    cluster: &ClusterConfig,
    corr: &C,
    current: &Mapping,
) -> RemapVerdict {
    let candidate = if cluster.num_threads() <= options.multilevel_above {
        refine_kl(corr, current.clone())
    } else {
        multilevel_place(corr, cluster)
    };
    let planned = plan_migration(options.policy, corr, current, &candidate, options.max_swaps);
    let moves = planned.moves_from(current);
    let cut_before = cut_cost(corr, current);
    let cut_after = cut_cost(corr, &planned);
    let gain = cut_before.saturating_sub(cut_after);
    let cost = options.cost_model.migration_cost(moves);
    let accepted = moves > 0 && options.cost_model.accepts(gain, moves);
    RemapVerdict {
        planned,
        moves,
        cut_before,
        cut_after,
        cost,
        accepted,
    }
}

impl RemapVerdict {
    fn decision(&self, step: u64) -> ServeDecision {
        ServeDecision::Remap {
            step,
            accepted: self.accepted,
            moves: self.moves as u64,
            cut_before: self.cut_before,
            cut_after: self.cut_after,
            cost: self.cost,
        }
    }

    fn event(&self, step: u64) -> Event {
        let (moves, cut_before, cut_after, cost) = (
            self.moves as u64,
            self.cut_before,
            self.cut_after,
            self.cost,
        );
        if self.accepted {
            Event::RemapAccepted {
                step,
                moves,
                cut_before,
                cut_after,
                cost,
            }
        } else {
            Event::RemapRejected {
                step,
                moves,
                cut_before,
                cut_after,
                cost,
            }
        }
    }
}

impl Workbench {
    /// Runs the online placement service against synthetic traffic: the
    /// workbench's seed feeds the driver, its worker count generates
    /// tenant edges in parallel, and the full decision timeline plus
    /// final mapping are bit-identical for every worker count.
    pub fn serve_traffic(&self, options: &ServeOptions) -> ServeReport {
        let threads = self.cluster.num_threads();
        let traffic = TrafficDriver::new(
            TrafficConfig::new(threads, options.tenants, options.scenario, self.seed)
                .with_period(options.period),
        );
        // Stand-alone handle: the serve loop is the event source, there
        // is no engine to attach the sink half to.
        let handle = self.observer.as_ref().map(|config| {
            let (_sink, handle) = acorr_obs::observer(config, self.cluster.num_nodes());
            handle
        });
        let initial = Mapping::stretch(&self.cluster);
        let mut current = initial.clone();
        let mut detector = PhaseDetector::<SparseCorrelation>::new(threads, options.window);
        let mut report = ReportBuilder::new(options);
        for step in 0..options.steps as u64 {
            let edges = traffic.step_edges(step, self.threads);
            let corr = SparseCorrelation::from_edges(threads, edges);
            // Cut is charged before the step's verdict applies, so an
            // accepted re-map pays off from the next step on.
            report.served_cut += cut_cost(&corr, &current);
            report.static_cut += cut_cost(&corr, &initial);
            let at = SimTime::from_nanos(100_000 * (step + 1));
            let Some(mark) = detector.observe(&corr) else {
                continue;
            };
            report.shift(step, mark, at, handle.as_ref());
            let verdict = evaluate_remap(options, &self.cluster, &corr, &current);
            report.remap(step, &verdict, at, handle.as_ref(), &current);
            if verdict.accepted {
                current = verdict.planned;
            }
        }
        report.finish(options.scenario.to_string(), current, handle)
    }

    /// Runs the service against a live DSM engine: each step is one
    /// tracked iteration, and accepted re-mappings go through
    /// [`Dsm::migrate_to`](acorr_dsm::Dsm::migrate_to) mid-run.
    /// Traffic-only options (`scenario`, `tenants`, `period`) are
    /// ignored.
    ///
    /// # Errors
    ///
    /// Propagates engine construction, execution and migration errors.
    pub fn serve_app<P, F>(
        &self,
        factory: F,
        options: &ServeOptions,
    ) -> Result<ServeReport, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        let threads = self.cluster.num_threads();
        let initial = Mapping::stretch(&self.cluster);
        let mut dsm = self.dsm(factory(), initial.clone())?;
        let handle = self.observer.as_ref().map(|config| {
            let (sink, handle) = acorr_obs::observer(config, self.cluster.num_nodes());
            dsm.attach_sink(sink);
            handle
        });
        if self.observer.as_ref().is_some_and(|c| c.spans) {
            dsm.enable_span_profiling();
        }
        let label = format!("{} (engine)", dsm.program().name());
        let mut current = initial.clone();
        let mut detector = PhaseDetector::<CorrelationMatrix>::new(threads, options.window);
        let mut report = ReportBuilder::new(options);
        for step in 0..options.steps as u64 {
            let (_stats, access) = dsm.run_tracked_iteration()?;
            let corr = CorrelationMatrix::from_access(&access);
            report.served_cut += cut_cost(&corr, &current);
            report.static_cut += cut_cost(&corr, &initial);
            let at = dsm.now();
            let Some(mark) = detector.observe(&corr) else {
                continue;
            };
            report.shift(step, mark, at, handle.as_ref());
            let verdict = evaluate_remap(options, &self.cluster, &corr, &current);
            report.remap(step, &verdict, at, handle.as_ref(), &current);
            if verdict.accepted {
                // The live re-mapping hook: the engine invalidates and
                // re-homes under the new mapping and keeps running.
                dsm.migrate_to(verdict.planned.clone())?;
                current = verdict.planned;
            }
        }
        Ok(report.finish(label, current, handle))
    }
}

/// Accumulates timeline entries, counters and obs events for a run.
struct ReportBuilder {
    steps: usize,
    window: usize,
    policy: MigrationPolicy,
    timeline: Vec<ServeDecision>,
    shifts: usize,
    accepted: usize,
    rejected: usize,
    migrated: u64,
    served_cut: u64,
    static_cut: u64,
}

impl ReportBuilder {
    fn new(options: &ServeOptions) -> ReportBuilder {
        ReportBuilder {
            steps: options.steps,
            window: options.window,
            policy: options.policy,
            timeline: Vec::new(),
            shifts: 0,
            accepted: 0,
            rejected: 0,
            migrated: 0,
            served_cut: 0,
            static_cut: 0,
        }
    }

    fn shift(
        &mut self,
        step: u64,
        mark: acorr_obs::PhaseShiftMark,
        at: SimTime,
        handle: Option<&ObsHandle>,
    ) {
        self.shifts += 1;
        self.timeline.push(ServeDecision::Shift {
            step,
            window: mark.window,
            delta_ppm: mark.delta_ppm,
        });
        if let Some(h) = handle {
            h.record_event(
                at,
                &Event::PhaseShift {
                    window: mark.window,
                    delta_ppm: mark.delta_ppm,
                },
            );
        }
    }

    fn remap(
        &mut self,
        step: u64,
        verdict: &RemapVerdict,
        at: SimTime,
        handle: Option<&ObsHandle>,
        current: &Mapping,
    ) {
        self.timeline.push(verdict.decision(step));
        if let Some(h) = handle {
            h.record_event(at, &verdict.event(step));
        }
        if verdict.accepted {
            self.accepted += 1;
            self.migrated += verdict.moves as u64;
            if let Some(h) = handle {
                for t in 0..current.num_threads() {
                    let to = verdict.planned.node_of(t);
                    if to != current.node_of(t) {
                        h.record_event(at, &Event::Migration { thread: t, to });
                    }
                }
            }
        } else {
            self.rejected += 1;
        }
    }

    fn finish(
        self,
        label: String,
        final_mapping: Mapping,
        handle: Option<ObsHandle>,
    ) -> ServeReport {
        ServeReport {
            label,
            policy: self.policy,
            steps: self.steps,
            window: self.window,
            timeline: self.timeline,
            shifts: self.shifts,
            accepted: self.accepted,
            rejected: self.rejected,
            migrated: self.migrated,
            served_cut: self.served_cut,
            static_cut: self.static_cut,
            final_mapping,
            observation: handle.map(|h| h.finish()),
        }
    }
}
