//! Experiment drivers for the paper's tables and figures.
//!
//! Each driver encapsulates one measurement methodology from the paper:
//!
//! * [`Workbench::ground_truth`] — one active-tracking phase (§4.2),
//!   yielding the exact per-thread access bitmaps every analysis builds on.
//! * [`Workbench::tracking_overhead`] — Table 5: iteration time with
//!   tracking off and on, fault counts, sharing degree.
//! * [`Workbench::cutcost_study`] — Table 2 / Figure 1: run many random
//!   configurations, regress remote misses against cut cost.
//! * [`Workbench::heuristic_comparison`] — Table 6: full runs under
//!   different placement strategies.
//! * [`Workbench::passive_study`] — Figure 2: passive tracking with
//!   migration rounds, measuring information completeness per round.

use acorr_dsm::{Dsm, DsmConfig, DsmError, IterStats, OracleReport, Program};
use acorr_mem::AccessMatrix;
use acorr_obs::{ObsConfig, Observation};
use acorr_place::{min_cost, place, Strategy};
use acorr_sim::{
    linear_fit, par_map_indexed, par_map_range, ClusterConfig, DetRng, FaultPlan, LinearFit,
    Mapping, SimDuration,
};
use acorr_track::{cut_cost, has_shifted, sharing_degree, AgedCorrelation, CorrelationMatrix};
use std::fmt;

/// A configured experiment environment: cluster shape + DSM cost models.
#[derive(Debug, Clone)]
pub struct Workbench {
    /// The cluster (nodes, threads).
    pub cluster: ClusterConfig,
    /// DSM configuration used for every instance the workbench builds.
    pub config: DsmConfig,
    /// Root seed for randomized methodology (forked per use).
    pub seed: u64,
    /// Worker threads for the randomized drivers (1 = sequential). Every
    /// sample forks its own RNG stream from `seed` up-front and results are
    /// collected in index order, so output is bit-identical at any worker
    /// count (see [`acorr_sim::pool`]).
    pub threads: usize,
    /// Observability backends to attach to every DSM instance the
    /// workbench builds (`None` = no instrumentation). Sinks are pure
    /// observers, so every statistic and table the drivers produce is
    /// bit-identical with this set or not.
    pub observer: Option<ObsConfig>,
}

impl Workbench {
    /// A workbench over `nodes` nodes and `threads` threads with default
    /// cost models (the paper's environment is `Workbench::new(8, 64)`).
    ///
    /// # Errors
    ///
    /// Propagates topology validation.
    pub fn new(nodes: usize, threads: usize) -> Result<Self, DsmError> {
        let cluster = ClusterConfig::new(nodes, threads)?;
        Ok(Workbench {
            cluster,
            config: DsmConfig::new(cluster),
            seed: 0x000A_C044,
            threads: 1,
            observer: None,
        })
    }

    /// Replaces the root seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count for the randomized drivers (`0` means
    /// the host's available parallelism, `1` exact sequential execution —
    /// results are bit-identical either way).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = acorr_sim::resolve_threads(threads);
        self
    }

    /// Replaces the DSM configuration (cluster is kept in sync).
    #[must_use]
    pub fn with_config(mut self, mut config: DsmConfig) -> Self {
        config.cluster = self.cluster;
        self.config = config;
        self
    }

    /// Replaces the network fault plan every DSM instance runs under.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Enables observability: every DSM instance the workbench builds gets
    /// the configured sinks attached. Collection is per-run — use
    /// [`Workbench::observed_heuristic_run`] (or attach a sink by hand via
    /// `Dsm::attach_sink`) when the artifacts themselves are wanted; the
    /// drivers discard them but still exercise the full sink path, which
    /// is what the purity tests rely on.
    #[must_use]
    pub fn with_observer(mut self, observer: ObsConfig) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Builds a DSM instance for `program` under `mapping`, attaching the
    /// workbench's observer sinks when configured.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn dsm<P: Program>(&self, program: P, mapping: Mapping) -> Result<Dsm<P>, DsmError> {
        let mut dsm = Dsm::new(self.config.clone(), program, mapping)?;
        if let Some(config) = &self.observer {
            let (sink, _handle) = acorr_obs::observer(config, self.cluster.num_nodes());
            dsm.attach_sink(sink);
            if config.spans {
                dsm.enable_span_profiling();
            }
        }
        Ok(dsm)
    }

    /// Runs `program` for `iterations` under the stretch placement with the
    /// coherence oracle shadowing every protocol action (and whatever fault
    /// plan the workbench carries), returning the aggregate statistics and
    /// the oracle's checking summary.
    ///
    /// # Errors
    ///
    /// Propagates engine errors; an oracle violation surfaces as
    /// [`DsmError::OracleViolation`].
    pub fn conformance_run<P: Program>(
        &self,
        program: P,
        iterations: usize,
    ) -> Result<ConformanceRun, DsmError> {
        let mut dsm = self.dsm(program, Mapping::stretch(&self.cluster))?;
        dsm.enable_oracle();
        let stats = dsm.run_iterations(iterations)?;
        let report = dsm.oracle_report().expect("oracle was enabled");
        Ok(ConformanceRun {
            app: dsm.program().name().to_owned(),
            stats,
            report,
        })
    }

    /// Warm-up iterations run before any measurement (cold misses and GC
    /// phase-in settle).
    const WARMUP: usize = 2;

    /// Measures the exact access information of one actively tracked
    /// iteration under the stretch placement.
    ///
    /// Tracking-off and tracking-on times are measured on *twin instances*
    /// at the **same iteration index** after identical warm-up, so protocol
    /// state (caches, pending diffs, GC schedule) is identical and the
    /// difference is attributable to the tracking mechanism alone. (With a
    /// single instance, periodic GC makes adjacent iterations incomparable.)
    ///
    /// The twins are fully independent DSM instances, so with `threads >= 2`
    /// they run on two pool workers; the result is bit-identical to the
    /// sequential order.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn ground_truth<P, F>(&self, factory: F) -> Result<GroundTruth, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        enum Twin {
            Off(Box<IterStats>),
            On(Box<(IterStats, AccessMatrix, String)>),
        }
        let mapping = Mapping::stretch(&self.cluster);
        let mut twins = par_map_range(self.threads.min(2), 2, |which| -> Result<Twin, DsmError> {
            if which == 0 {
                // Twin A: tracking off at the measured iteration.
                let mut off_dsm = self.dsm(factory(), mapping.clone())?;
                off_dsm.run_iterations(Self::WARMUP)?;
                Ok(Twin::Off(Box::new(off_dsm.run_iterations(1)?)))
            } else {
                // Twin B: tracking on at the same iteration.
                let mut on_dsm = self.dsm(factory(), mapping.clone())?;
                on_dsm.run_iterations(Self::WARMUP)?;
                let (tracked, access) = on_dsm.run_tracked_iteration()?;
                let name = on_dsm.program().name().to_owned();
                Ok(Twin::On(Box::new((tracked, access, name))))
            }
        })
        .into_iter();
        let baseline = match twins.next().expect("two twins")? {
            Twin::Off(stats) => *stats,
            Twin::On(_) => unreachable!("index 0 is the tracking-off twin"),
        };
        let (tracked, access, name) = match twins.next().expect("two twins")? {
            Twin::On(boxed) => *boxed,
            Twin::Off(_) => unreachable!("index 1 is the tracking-on twin"),
        };
        let corr = CorrelationMatrix::from_access(&access);
        Ok(GroundTruth {
            app: name,
            access,
            corr,
            mapping,
            baseline,
            tracked,
        })
    }

    /// Table 5 methodology: the tracked-iteration overhead of one
    /// application.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn tracking_overhead<P, F>(&self, factory: F) -> Result<TrackingOverheadRow, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        let truth = self.ground_truth(&factory)?;
        let off = truth.baseline.elapsed;
        let on = truth.tracked.elapsed;
        let slowdown_pct = if off.is_zero() {
            0.0
        } else {
            (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0
        };
        let degree = sharing_degree(&truth.access, &truth.mapping);
        Ok(TrackingOverheadRow {
            app: truth.app,
            time_off: off,
            time_on: on,
            slowdown_pct,
            tracking_faults: truth.tracked.tracking_faults,
            coherence_faults: truth.tracked.coherence_faults,
            sharing_degree: degree,
        })
    }

    /// Table 2 / Figure 1 methodology: collect ground-truth correlations,
    /// generate `samples` random configurations (≥2 threads per node, not
    /// necessarily balanced), run each and record (cut cost, remote misses),
    /// then fit the least-squares line.
    ///
    /// Each sample runs `measure_iters` measured iterations after one
    /// cold-start warm-up.
    ///
    /// Samples are independent by construction — sample `s` draws only from
    /// the RNG stream forked as `rng.fork(s)` — so they fan out across the
    /// workbench's worker threads and are collected in index order; the
    /// study (samples, fit, CSV) is bit-identical at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn cutcost_study<P, F>(
        &self,
        factory: F,
        samples: usize,
        measure_iters: usize,
    ) -> Result<CutCostStudy, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        let truth = self.ground_truth(&factory)?;
        let rng = DetRng::new(self.seed).fork(0x7AB2);
        let points: Vec<CutCostSample> = par_map_range(
            self.threads,
            samples,
            |s| -> Result<CutCostSample, DsmError> {
                let mapping = Mapping::random_min_two(&self.cluster, &mut rng.fork(s as u64));
                let cut = cut_cost(&truth.corr, &mapping);
                let mut dsm = self.dsm(factory(), mapping)?;
                dsm.run_iterations(1)?; // cold-start warm-up
                let stats = dsm.run_iterations(measure_iters)?;
                Ok(CutCostSample {
                    cut_cost: cut,
                    remote_misses: stats.remote_misses,
                })
            },
        )
        .into_iter()
        .collect::<Result<_, _>>()?;
        let xs: Vec<f64> = points.iter().map(|p| p.cut_cost as f64).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.remote_misses as f64).collect();
        let fit = linear_fit(&xs, &ys);
        Ok(CutCostStudy {
            app: truth.app,
            samples: points,
            fit,
        })
    }

    /// Table 6 methodology: run the application to completion under each
    /// strategy and report time, misses, traffic and cut cost.
    ///
    /// Strategies are evaluated on independent DSM instances with
    /// per-strategy forked RNG streams, so they fan out across the
    /// workbench's worker threads; rows come back in strategy order.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn heuristic_comparison<P, F>(
        &self,
        factory: F,
        strategies: &[Strategy],
        iterations: usize,
    ) -> Result<Vec<HeuristicRow>, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        let truth = self.ground_truth(&factory)?;
        par_map_indexed(
            self.threads,
            strategies.to_vec(),
            |i, strategy| -> Result<HeuristicRow, DsmError> {
                let mut rng = DetRng::new(self.seed).fork(0x6E1 + i as u64);
                let mapping = place(strategy, &truth.corr, &self.cluster, &mut rng);
                let cut = cut_cost(&truth.corr, &mapping);
                let mut dsm = self.dsm(factory(), mapping)?;
                dsm.run_iterations(1)?; // cold-start warm-up
                let stats = dsm.run_iterations(iterations)?;
                Ok(HeuristicRow {
                    app: truth.app.clone(),
                    strategy,
                    time: stats.elapsed,
                    remote_misses: stats.remote_misses,
                    total_mbytes: stats.total_mbytes(),
                    diff_mbytes: stats.diff_mbytes(),
                    cut_cost: cut,
                })
            },
        )
        .into_iter()
        .collect()
    }

    /// Runs one application to completion under a single placement
    /// strategy with the workbench's observer sinks attached and
    /// **collected**: returns the Table 6 row plus the rendered
    /// observability artifacts (`None` when no observer is configured).
    ///
    /// The measured run replicates [`Workbench::heuristic_comparison`]
    /// with `&[strategy]` *exactly* — same ground-truth phase, same forked
    /// RNG stream (`0x6E1 + 0`), same single warm-up iteration — so the
    /// returned row is bit-identical to that driver's first row. This is
    /// the property the manifest replay path (`acorr report`) leans on:
    /// re-running from a manifest's parameters reproduces the digest.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn observed_heuristic_run<P, F>(
        &self,
        factory: F,
        strategy: Strategy,
        iterations: usize,
    ) -> Result<ObservedRun, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        let truth = self.ground_truth(&factory)?;
        let mut rng = DetRng::new(self.seed).fork(0x6E1);
        let mapping = place(strategy, &truth.corr, &self.cluster, &mut rng);
        let cut = cut_cost(&truth.corr, &mapping);
        let mut dsm = self.dsm(factory(), mapping)?;
        let handle = self.observer.as_ref().map(|config| {
            let (sink, handle) = acorr_obs::observer(config, self.cluster.num_nodes());
            dsm.attach_sink(sink);
            handle
        });
        if self.observer.as_ref().is_some_and(|c| c.spans) {
            dsm.enable_span_profiling();
        }
        dsm.run_iterations(1)?; // cold-start warm-up
        let stats = dsm.run_iterations(iterations)?;
        let row = HeuristicRow {
            app: truth.app,
            strategy,
            time: stats.elapsed,
            remote_misses: stats.remote_misses,
            total_mbytes: stats.total_mbytes(),
            diff_mbytes: stats.diff_mbytes(),
            cut_cost: cut,
        };
        Ok(ObservedRun {
            row,
            stats,
            observation: handle.map(|h| h.finish()),
        })
    }

    /// Phase-change scan: runs `iterations` actively tracked iterations
    /// under the stretch placement, feeding each iteration's correlation
    /// matrix into a windowed [`acorr_obs::PhaseDetector`] (window length
    /// in iterations). Every detected shift is recorded — and, when an
    /// observer is configured, injected into the run's artifacts as an
    /// `Event::PhaseShift` at the current simulated time, so the trace
    /// timeline shows the re-mapping trigger ROADMAP item 2 needs.
    ///
    /// Detection is derived purely from observations; simulated time and
    /// statistics are bit-identical with detection on or off.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn phase_scan<P, F>(
        &self,
        factory: F,
        iterations: usize,
        window: usize,
    ) -> Result<PhaseScan, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        let mut dsm = self.dsm(factory(), Mapping::stretch(&self.cluster))?;
        let handle = self.observer.as_ref().map(|config| {
            let (sink, handle) = acorr_obs::observer(config, self.cluster.num_nodes());
            dsm.attach_sink(sink);
            handle
        });
        if self.observer.as_ref().is_some_and(|c| c.spans) {
            dsm.enable_span_profiling();
        }
        let mut detector = acorr_obs::PhaseDetector::new(self.cluster.num_threads(), window);
        let mut stats = IterStats::new();
        for _ in 0..iterations {
            let (iter_stats, access) = dsm.run_tracked_iteration()?;
            stats += iter_stats;
            let round = CorrelationMatrix::from_access(&access);
            if let Some(mark) = detector.observe(&round) {
                if let Some(h) = &handle {
                    h.record_event(
                        dsm.now(),
                        &acorr_dsm::trace::Event::PhaseShift {
                            window: mark.window,
                            delta_ppm: mark.delta_ppm,
                        },
                    );
                }
            }
        }
        if let Some(mark) = detector.flush() {
            if let Some(h) = &handle {
                h.record_event(
                    dsm.now(),
                    &acorr_dsm::trace::Event::PhaseShift {
                        window: mark.window,
                        delta_ppm: mark.delta_ppm,
                    },
                );
            }
        }
        Ok(PhaseScan {
            app: dsm.program().name().to_owned(),
            shifts: detector.shifts().to_vec(),
            stats,
            observation: handle.map(|h| h.finish()),
        })
    }

    /// Figure 2 methodology: passive tracking with migration rounds. Each
    /// round runs one iteration observing only remote faults, accumulates
    /// the observations, re-places with min-cost on the partial
    /// correlations, and migrates. Completeness is measured against the
    /// active-tracking ground truth.
    ///
    /// The migration rounds themselves form a dependency chain (each round
    /// observes the mapping the previous round migrated to), so only the
    /// ground-truth phase parallelizes here; per-application fan-out lives
    /// in the callers (e.g. the `figure2` binary).
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn passive_study<P, F>(&self, factory: F, rounds: usize) -> Result<PassiveStudy, DsmError>
    where
        P: Program,
        F: Fn() -> P + Sync,
    {
        let truth = self.ground_truth(&factory)?;
        let mut dsm = self.dsm(factory(), Mapping::stretch(&self.cluster))?;
        let mut accumulated = AccessMatrix::new(self.cluster.num_threads(), dsm.num_pages());
        let mut completeness = Vec::with_capacity(rounds);
        let mut moves = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            dsm.enable_passive_tracking();
            dsm.run_iterations(1)?;
            let obs = dsm
                .take_passive_observations()
                .expect("passive tracking was enabled");
            accumulated.merge(&obs);
            completeness.push(accumulated.completeness_vs(&truth.access));
            // Re-place on what has been learned so far and migrate.
            let partial = CorrelationMatrix::from_access(&accumulated);
            let next = min_cost(&partial, &self.cluster);
            let report = dsm.migrate_to(next)?;
            moves.push(report.moved);
        }
        Ok(PassiveStudy {
            app: truth.app,
            completeness,
            moves,
        })
    }

    /// §7 methodology (future work, implemented): a dynamic application run
    /// under three policies over `total_iterations`:
    ///
    /// 1. static stretch;
    /// 2. one tracked iteration up front, min-cost placement, no further
    ///    adaptation;
    /// 3. a tracked iteration every `retrack_every` iterations, folded into
    ///    an exponentially aged correlation accumulator (`decay`), followed
    ///    by min-cost re-placement and migration.
    ///
    /// All tracking and migration costs are charged inside the reported
    /// statistics, so the comparison is end-to-end fair.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    ///
    /// # Panics
    ///
    /// Panics if `retrack_every` is zero.
    pub fn adaptive_study<P, F>(
        &self,
        factory: F,
        total_iterations: usize,
        retrack_every: usize,
        decay: f64,
    ) -> Result<AdaptiveStudy, DsmError>
    where
        P: Program,
        F: Fn() -> P,
    {
        assert!(retrack_every >= 2, "retrack_every must be at least 2");
        let threads = self.cluster.num_threads();
        let stretch = Mapping::stretch(&self.cluster);

        // Policy 1: static stretch.
        let mut static_dsm = self.dsm(factory(), stretch.clone())?;
        let static_stats = static_dsm.run_iterations(total_iterations)?;
        let app = static_dsm.program().name().to_owned();

        // Policy 2: track once, place, never adapt.
        let mut once_dsm = self.dsm(factory(), stretch.clone())?;
        let (mut track_once_stats, access) = once_dsm.run_tracked_iteration()?;
        let corr = CorrelationMatrix::from_access(&access);
        once_dsm.migrate_to(min_cost(&corr, &self.cluster))?;
        track_once_stats += once_dsm.run_iterations(total_iterations - 1)?;

        // Policy 3: periodic re-tracking with aged correlations.
        let mut adaptive_dsm = self.dsm(factory(), stretch)?;
        let mut aged = AgedCorrelation::new(threads, decay);
        let mut adaptive_stats = IterStats::new();
        let mut migrations = 0;
        let mut done = 0;
        while done < total_iterations {
            // Let one ordinary iteration re-cache first (latency hiding
            // on), so the pinned tracking iteration is not also paying
            // serialized cold misses.
            adaptive_stats += adaptive_dsm.run_iterations(1)?;
            done += 1;
            if done >= total_iterations {
                break;
            }
            let (tracked, access) = adaptive_dsm.run_tracked_iteration()?;
            adaptive_stats += tracked;
            done += 1;
            aged.observe(&CorrelationMatrix::from_access(&access));
            let target = min_cost(&aged.snapshot(), &self.cluster);
            migrations += adaptive_dsm.migrate_to(target)?.moved;
            let rest = (retrack_every - 2).min(total_iterations - done);
            adaptive_stats += adaptive_dsm.run_iterations(rest)?;
            done += rest;
        }
        Ok(AdaptiveStudy {
            app,
            static_stats,
            track_once_stats,
            adaptive_stats,
            adaptive_migrations: migrations,
        })
    }

    /// Compares two answers to §7's "when should we re-track?":
    ///
    /// * **scheduled** — an active tracking phase (plus re-placement) every
    ///   `check_every` iterations, unconditionally;
    /// * **drift-triggered** — run each window with cheap passive tracking
    ///   on; re-track actively only when the passive correlation snapshot
    ///   diverges from the previous window's by more than `threshold`
    ///   (normalized L1, see
    ///   [`correlation_delta`](acorr_track::correlation_delta)).
    ///
    /// Passive snapshots are biased (first local toucher only), but
    /// *consistently* biased, so window-over-window divergence is a clean
    /// phase-change signal.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    ///
    /// # Panics
    ///
    /// Panics if `check_every < 2`.
    pub fn on_demand_study<P, F>(
        &self,
        factory: F,
        total_iterations: usize,
        check_every: usize,
        threshold: f64,
        decay: f64,
    ) -> Result<OnDemandStudy, DsmError>
    where
        P: Program,
        F: Fn() -> P,
    {
        assert!(check_every >= 2, "check_every must be at least 2");
        // Policy A: scheduled (reuses the adaptive_study loop).
        let scheduled_full = self.adaptive_study(&factory, total_iterations, check_every, decay)?;
        let scheduled_tracks = total_iterations.div_ceil(check_every);

        // Policy B: drift-triggered. One tracked placement up front, then
        // passive windows; migration changes which threads fault, so the
        // first window after each migration only calibrates a new baseline.
        let mut dsm = self.dsm(factory(), Mapping::stretch(&self.cluster))?;
        let mut aged = AgedCorrelation::new(self.cluster.num_threads(), decay);
        let mut stats = IterStats::new();
        let mut tracks = 0usize;
        let mut done = 0usize;
        {
            let (tracked, access) = dsm.run_tracked_iteration()?;
            stats += tracked;
            done += 1;
            tracks += 1;
            aged.observe(&CorrelationMatrix::from_access(&access));
            dsm.migrate_to(min_cost(&aged.snapshot(), &self.cluster))?;
        }
        let mut previous_passive: Option<CorrelationMatrix> = None;
        while done < total_iterations {
            let window = check_every.min(total_iterations - done);
            dsm.enable_passive_tracking();
            stats += dsm.run_iterations(window)?;
            done += window;
            let observed = dsm
                .take_passive_observations()
                .expect("passive tracking was enabled");
            let passive_corr = CorrelationMatrix::from_access(&observed);
            let shifted = match &previous_passive {
                None => false, // baseline calibration window
                Some(prev) => has_shifted(prev, &passive_corr, threshold),
            };
            if shifted && done < total_iterations {
                let (tracked, access) = dsm.run_tracked_iteration()?;
                stats += tracked;
                done += 1;
                tracks += 1;
                aged.observe(&CorrelationMatrix::from_access(&access));
                let target = min_cost(&aged.snapshot(), &self.cluster);
                dsm.migrate_to(target)?;
                previous_passive = None; // recalibrate under the new mapping
            } else {
                previous_passive = Some(passive_corr);
            }
        }
        Ok(OnDemandStudy {
            app: dsm.program().name().to_owned(),
            scheduled: scheduled_full.adaptive_stats,
            scheduled_tracks,
            on_demand: stats,
            on_demand_tracks: tracks,
        })
    }
}

/// Outcome of comparing scheduled re-tracking against drift-triggered
/// re-tracking (see [`Workbench::on_demand_study`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OnDemandStudy {
    /// Application name.
    pub app: String,
    /// Re-track on a fixed schedule.
    pub scheduled: IterStats,
    /// Tracked iterations spent by the scheduled policy.
    pub scheduled_tracks: usize,
    /// Re-track only when passive observations drift.
    pub on_demand: IterStats,
    /// Tracked iterations spent by the on-demand policy.
    pub on_demand_tracks: usize,
}

impl fmt::Display for OnDemandStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.app)?;
        writeln!(
            f,
            "  scheduled re-tracking : {:>8} misses, {} ({} tracked iterations)",
            self.scheduled.remote_misses, self.scheduled.elapsed, self.scheduled_tracks
        )?;
        write!(
            f,
            "  drift-triggered       : {:>8} misses, {} ({} tracked iterations)",
            self.on_demand.remote_misses, self.on_demand.elapsed, self.on_demand_tracks
        )
    }
}

/// Outcome of the adaptive-migration study (§7's future work): the same
/// dynamic application run under three policies.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveStudy {
    /// Application name.
    pub app: String,
    /// Never adapt: static stretch placement.
    pub static_stats: IterStats,
    /// Track once at the start, place with min-cost, never adapt again.
    pub track_once_stats: IterStats,
    /// Re-track periodically, age the correlations, re-place and migrate.
    pub adaptive_stats: IterStats,
    /// Threads migrated by the adaptive policy over the whole run.
    pub adaptive_migrations: usize,
}

impl fmt::Display for AdaptiveStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.app)?;
        writeln!(
            f,
            "  static stretch : {:>8} misses, {}",
            self.static_stats.remote_misses, self.static_stats.elapsed
        )?;
        writeln!(
            f,
            "  track-once     : {:>8} misses, {}",
            self.track_once_stats.remote_misses, self.track_once_stats.elapsed
        )?;
        write!(
            f,
            "  adaptive       : {:>8} misses, {} ({} migrations)",
            self.adaptive_stats.remote_misses,
            self.adaptive_stats.elapsed,
            self.adaptive_migrations
        )
    }
}

/// One row of a node-count study (§3's four-node vs eight-node
/// discussion).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeCountRow {
    /// Nodes in the configuration.
    pub nodes: usize,
    /// Total simulated run time.
    pub time: SimDuration,
    /// Remote misses over the measured iterations.
    pub remote_misses: u64,
    /// Data traffic in megabytes.
    pub total_mbytes: f64,
    /// Cut cost of the stretch mapping at this node count.
    pub cut_cost: u64,
}

impl fmt::Display for NodeCountRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes: {:>8.2}s, {:>8} misses, {:>7.1} MB, cut {:>8}",
            self.nodes,
            self.time.as_secs_f64(),
            self.remote_misses,
            self.total_mbytes,
            self.cut_cost
        )
    }
}

/// §3 methodology: run the same application (fixed thread count, stretch
/// placement) on different node counts, reporting the communication and
/// time of each. The paper uses this on 32-thread LU2k to show that the
/// eight-node configuration communicates so much more than the four-node
/// one that it can end up slower on some clusters.
///
/// Standalone function (not a [`Workbench`] method) because it varies the
/// cluster itself. Node counts are independent runs, so they fan out over
/// `jobs` pool workers (`0` = available parallelism, `1` = sequential);
/// rows come back in `node_counts` order either way.
///
/// # Errors
///
/// Propagates engine errors.
pub fn node_count_study<P, F>(
    factory: F,
    threads: usize,
    node_counts: &[usize],
    iterations: usize,
    jobs: usize,
) -> Result<Vec<NodeCountRow>, DsmError>
where
    P: Program,
    F: Fn() -> P + Sync,
{
    par_map_indexed(
        acorr_sim::resolve_threads(jobs),
        node_counts.to_vec(),
        |_, nodes| -> Result<NodeCountRow, DsmError> {
            let bench = Workbench::new(nodes, threads)?;
            let truth = bench.ground_truth(&factory)?;
            let mapping = Mapping::stretch(&bench.cluster);
            let cut = cut_cost(&truth.corr, &mapping);
            let mut dsm = bench.dsm(factory(), mapping)?;
            dsm.run_iterations(1)?; // cold-start warm-up
            let stats = dsm.run_iterations(iterations)?;
            Ok(NodeCountRow {
                nodes,
                time: stats.elapsed,
                remote_misses: stats.remote_misses,
                total_mbytes: stats.total_mbytes(),
                cut_cost: cut,
            })
        },
    )
    .into_iter()
    .collect()
}

/// Outcome of a conformance run: aggregate statistics plus the oracle's
/// checking summary (see [`Workbench::conformance_run`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceRun {
    /// Application name.
    pub app: String,
    /// Aggregate statistics over the checked iterations.
    pub stats: IterStats,
    /// What the oracle checked (violations abort the run instead).
    pub report: OracleReport,
}

impl fmt::Display for ConformanceRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {} | oracle: {} barriers, {} releases, {} fetches, {:.1} MB compared, {} hazy",
            self.app,
            self.stats,
            self.report.barriers_checked,
            self.report.lock_releases_checked,
            self.report.fetches_checked,
            self.report.bytes_compared as f64 / 1e6,
            self.report.hazy_bytes,
        )
    }
}

/// Exact access information from one active-tracking phase, plus the
/// baseline and tracked iteration statistics.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Application name.
    pub app: String,
    /// Per-thread access bitmaps (the tracking phase's direct output).
    pub access: AccessMatrix,
    /// Thread correlations derived from `access`.
    pub corr: CorrelationMatrix,
    /// The placement used while tracking (stretch).
    pub mapping: Mapping,
    /// Statistics of the untracked baseline iteration.
    pub baseline: IterStats,
    /// Statistics of the tracked iteration.
    pub tracked: IterStats,
}

/// One row of Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackingOverheadRow {
    /// Application name.
    pub app: String,
    /// Iteration time with tracking off.
    pub time_off: SimDuration,
    /// Iteration time with tracking on.
    pub time_on: SimDuration,
    /// Percent slowdown from off to on.
    pub slowdown_pct: f64,
    /// Correlation faults during the tracked iteration.
    pub tracking_faults: u64,
    /// Coherence faults during the tracked iteration.
    pub coherence_faults: u64,
    /// Sharing degree (Table 5's last column).
    pub sharing_degree: f64,
}

impl fmt::Display for TrackingOverheadRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} off {:>9.3}s on {:>9.3}s (+{:.2}%) tracking {:>7} coherence {:>7} degree {:.3}",
            self.app,
            self.time_off.as_secs_f64(),
            self.time_on.as_secs_f64(),
            self.slowdown_pct,
            self.tracking_faults,
            self.coherence_faults,
            self.sharing_degree,
        )
    }
}

/// One (configuration, outcome) point of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutCostSample {
    /// Cut cost of the random configuration.
    pub cut_cost: u64,
    /// Remote misses measured under it.
    pub remote_misses: u64,
}

/// Table 2 row plus the Figure 1 scatter data behind it.
#[derive(Debug, Clone)]
pub struct CutCostStudy {
    /// Application name.
    pub app: String,
    /// The per-configuration samples.
    pub samples: Vec<CutCostSample>,
    /// Least-squares fit of misses against cut cost (`None` if degenerate).
    pub fit: Option<LinearFit>,
}

impl CutCostStudy {
    /// Serializes the scatter as `cut_cost,remote_misses` CSV (Figure 1).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cut_cost,remote_misses\n");
        for s in &self.samples {
            out.push_str(&format!("{},{}\n", s.cut_cost, s.remote_misses));
        }
        out
    }
}

/// One row of Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct HeuristicRow {
    /// Application name.
    pub app: String,
    /// The placement strategy used.
    pub strategy: Strategy,
    /// Total simulated run time.
    pub time: SimDuration,
    /// Remote misses over the run.
    pub remote_misses: u64,
    /// Total data traffic in megabytes.
    pub total_mbytes: f64,
    /// Diff traffic in megabytes.
    pub diff_mbytes: f64,
    /// Cut cost of the placement.
    pub cut_cost: u64,
}

impl fmt::Display for HeuristicRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:<10} {:>9.2}s {:>9} misses {:>8.1} MB {:>8.1} MB diff cut {:>8}",
            self.app,
            self.strategy.to_string(),
            self.time.as_secs_f64(),
            self.remote_misses,
            self.total_mbytes,
            self.diff_mbytes,
            self.cut_cost,
        )
    }
}

/// Outcome of [`Workbench::observed_heuristic_run`]: the Table 6 row, the
/// complete measured statistics (the manifest digest's preimage), and the
/// rendered observability artifacts when an observer was configured.
#[derive(Debug)]
pub struct ObservedRun {
    /// The Table 6 row, bit-identical to
    /// [`Workbench::heuristic_comparison`]'s first row for the same
    /// parameters.
    pub row: HeuristicRow,
    /// Aggregate statistics over the measured iterations (excluding the
    /// warm-up iteration).
    pub stats: IterStats,
    /// Rendered artifacts (`None` without [`Workbench::with_observer`]).
    pub observation: Option<Observation>,
}

/// One phase-change scan: detected correlation shifts plus the run's
/// statistics and artifacts.
#[derive(Debug)]
pub struct PhaseScan {
    /// Application name.
    pub app: String,
    /// Detected phase shifts, in firing order (window ordinals are
    /// 0-based window indices of `iterations / window` tumbling windows).
    pub shifts: Vec<acorr_obs::phases::PhaseShiftMark>,
    /// Aggregate statistics over the scanned iterations.
    pub stats: IterStats,
    /// Rendered artifacts (`None` without [`Workbench::with_observer`]).
    pub observation: Option<Observation>,
}

/// Figure 2 data: information completeness per passive migration round.
#[derive(Debug, Clone, PartialEq)]
pub struct PassiveStudy {
    /// Application name.
    pub app: String,
    /// Fraction of the complete sharing information gathered after each
    /// round (cumulative).
    pub completeness: Vec<f64>,
    /// Threads migrated after each round (the ping-pong signal).
    pub moves: Vec<usize>,
}

/// One production-scale placement run: synthetic workload statistics,
/// wall-clock timings and a reproducibility digest (see
/// [`scale_placement_study`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePlacement {
    /// Threads placed.
    pub threads: usize,
    /// Nodes placed onto.
    pub nodes: usize,
    /// Affinity edges per thread requested of the generator.
    pub degree: usize,
    /// Generator seed.
    pub seed: u64,
    /// Distinct nonzero thread pairs in the generated store.
    pub edges: usize,
    /// Wall-clock time to generate the synthetic store.
    pub gen_ms: f64,
    /// Wall-clock time of the multilevel placement itself.
    pub place_ms: f64,
    /// Cut cost of the multilevel mapping (ordered-pair convention).
    pub cut: u64,
    /// Cut cost of the stretch baseline on the same store.
    pub stretch_cut: u64,
    /// `fnv1a:` digest over the assignment (`u16` little-endian node ids in
    /// thread order) — bit-identical runs agree on this string.
    pub digest: String,
}

impl fmt::Display for ScalePlacement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} threads x {} nodes: {} edges, gen {:.0} ms, place {:.0} ms, \
             cut {} (stretch {}), digest {}",
            self.threads,
            self.nodes,
            self.edges,
            self.gen_ms,
            self.place_ms,
            self.cut,
            self.stretch_cut,
            self.digest
        )
    }
}

/// FNV-1a digest of a mapping's assignment: node ids in thread order as
/// little-endian `u16` bytes. The machine-independent fingerprint the scale
/// benches and CI pin.
pub fn mapping_digest(mapping: &Mapping) -> String {
    let mut bytes = Vec::with_capacity(mapping.num_threads() * 2);
    for t in 0..mapping.num_threads() {
        bytes.extend_from_slice(&mapping.node_of(t).0.to_le_bytes());
    }
    acorr_obs::bytes_digest(&bytes)
}

/// ROADMAP scale point: place `threads` synthetic threads (power-law
/// affinity, ~`degree` edges each, seeded by `seed`) on `nodes` nodes with
/// the multilevel partitioner and report timings, cut costs and the
/// assignment digest.
///
/// Standalone function (not a [`Workbench`] method) because its thread
/// counts are far beyond what the DSM engine simulates. `jobs` parallelises
/// only the synthetic generation (`0` = available cores); the placement is
/// sequential and the entire result is bit-identical for every `jobs`
/// value.
///
/// # Errors
///
/// Propagates topology validation (`nodes == 0`, `threads < nodes`, node
/// ids overflowing `u16`).
pub fn scale_placement_study(
    threads: usize,
    nodes: usize,
    degree: usize,
    seed: u64,
    jobs: usize,
) -> Result<ScalePlacement, DsmError> {
    use acorr_place::{multilevel_place, power_law_affinity};
    use acorr_track::SparseCorrelation;

    let cluster = ClusterConfig::new(nodes, threads)?;
    let start = std::time::Instant::now();
    let corr: SparseCorrelation = power_law_affinity(threads, degree, seed, jobs);
    let gen_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = std::time::Instant::now();
    let mapping = multilevel_place(&corr, &cluster);
    let place_ms = start.elapsed().as_secs_f64() * 1e3;
    Ok(ScalePlacement {
        threads,
        nodes,
        degree,
        seed,
        edges: corr.edge_count(),
        gen_ms,
        place_ms,
        cut: cut_cost(&corr, &mapping),
        stretch_cut: cut_cost(&corr, &Mapping::stretch(&cluster)),
        digest: mapping_digest(&mapping),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_apps::{Sor, Water};

    fn bench() -> Workbench {
        Workbench::new(2, 8).unwrap()
    }

    #[test]
    fn ground_truth_has_complete_access_info() {
        let truth = bench().ground_truth(|| Sor::new(64, 64, 8)).unwrap();
        // Every thread touches its own rows at minimum.
        for t in 0..8 {
            assert!(truth.access.pages_touched(t) > 0, "thread {t}");
        }
        assert!(truth.tracked.tracking_faults >= truth.access.total_observations() as u64);
        assert_eq!(truth.corr.num_threads(), 8);
    }

    #[test]
    fn tracking_overhead_is_positive() {
        let row = bench().tracking_overhead(|| Sor::new(64, 64, 8)).unwrap();
        assert!(row.slowdown_pct > 0.0, "{row}");
        assert!(row.time_on > row.time_off);
        assert!(row.sharing_degree >= 1.0);
    }

    #[test]
    fn cutcost_study_produces_fit_and_samples() {
        let study = bench()
            .cutcost_study(|| Sor::new(64, 64, 8), 12, 1)
            .unwrap();
        assert_eq!(study.samples.len(), 12);
        let fit = study.fit.expect("non-degenerate");
        assert!(fit.r > 0.0, "misses grow with cut cost: {fit}");
        let csv = study.to_csv();
        assert!(csv.lines().count() == 13);
    }

    #[test]
    fn heuristic_comparison_favors_min_cost_on_sor() {
        let rows = bench()
            .heuristic_comparison(
                || Sor::new(64, 64, 8),
                &[Strategy::MinCost, Strategy::RandomBalanced],
                3,
            )
            .unwrap();
        assert_eq!(rows.len(), 2);
        let (mc, ran) = (&rows[0], &rows[1]);
        assert!(mc.cut_cost <= ran.cut_cost);
        assert!(mc.remote_misses <= ran.remote_misses, "{mc}\n{ran}");
    }

    #[test]
    fn passive_study_is_monotone_and_incomplete() {
        let study = bench().passive_study(|| Water::new(64, 8), 5).unwrap();
        assert_eq!(study.completeness.len(), 5);
        for w in study.completeness.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "cumulative: {:?}", study.completeness);
        }
        // Passive tracking cannot see node-0-local silent sharers in one
        // round; it starts below 100%.
        assert!(study.completeness[0] < 1.0);
        assert_eq!(study.moves.len(), 5);
    }

    #[test]
    fn workbench_is_deterministic() {
        let a = bench().cutcost_study(|| Water::new(64, 8), 5, 1).unwrap();
        let b = bench().cutcost_study(|| Water::new(64, 8), 5, 1).unwrap();
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn parallel_studies_are_bit_identical_to_sequential() {
        let seq = bench()
            .with_threads(1)
            .cutcost_study(|| Water::new(64, 8), 8, 1)
            .unwrap();
        let par = bench()
            .with_threads(4)
            .cutcost_study(|| Water::new(64, 8), 8, 1)
            .unwrap();
        assert_eq!(seq.samples, par.samples);
        assert_eq!(seq.to_csv(), par.to_csv());
        let strategies = [Strategy::MinCost, Strategy::RandomBalanced];
        let rows_seq = bench()
            .with_threads(1)
            .heuristic_comparison(|| Sor::new(64, 64, 8), &strategies, 2)
            .unwrap();
        let rows_par = bench()
            .with_threads(3)
            .heuristic_comparison(|| Sor::new(64, 64, 8), &strategies, 2)
            .unwrap();
        assert_eq!(rows_seq, rows_par);
    }

    #[test]
    fn conformance_run_is_clean_and_faults_slow_it_down() {
        let clean = bench().conformance_run(Sor::new(64, 64, 8), 3).unwrap();
        assert_eq!(clean.report.violations, 0);
        assert!(clean.report.barriers_checked >= 3);
        assert_eq!(clean.stats.retries, 0);
        let faulty = bench()
            .with_faults(FaultPlan::heavy(17))
            .conformance_run(Sor::new(64, 64, 8), 3)
            .unwrap();
        assert_eq!(faulty.report.violations, 0);
        assert!(faulty.stats.retries > 0, "heavy plan must drop something");
        assert!(faulty.stats.elapsed > clean.stats.elapsed);
        // The paper-reproduction counters are unchanged by faults.
        assert_eq!(faulty.stats.remote_misses, clean.stats.remote_misses);
        assert_eq!(
            faulty.stats.net.total_bytes(),
            clean.stats.net.total_bytes()
        );
        assert!(clean.to_string().contains("oracle"));
    }

    #[test]
    fn faulty_workbench_studies_are_deterministic() {
        let make = || {
            bench()
                .with_faults(FaultPlan::moderate(5))
                .cutcost_study(|| Water::new(64, 8), 4, 1)
                .unwrap()
        };
        let (a, b) = (make(), make());
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn observer_is_a_pure_observer_for_studies() {
        let plain = bench().cutcost_study(|| Water::new(64, 8), 4, 1).unwrap();
        let observed = bench()
            .with_observer(acorr_obs::ObsConfig::all())
            .cutcost_study(|| Water::new(64, 8), 4, 1)
            .unwrap();
        assert_eq!(plain.samples, observed.samples);
    }

    #[test]
    fn observed_run_matches_heuristic_comparison_row() {
        let rows = bench()
            .heuristic_comparison(|| Sor::new(64, 64, 8), &[Strategy::MinCost], 2)
            .unwrap();
        let run = bench()
            .with_observer(acorr_obs::ObsConfig::all())
            .observed_heuristic_run(|| Sor::new(64, 64, 8), Strategy::MinCost, 2)
            .unwrap();
        assert_eq!(run.row, rows[0]);
        assert_eq!(run.stats.remote_misses, rows[0].remote_misses);
        let obs = run.observation.expect("observer configured");
        assert!(obs.events_jsonl.is_some_and(|j| !j.is_empty()));
        assert!(obs.metrics_csv.is_some_and(|c| c.lines().count() > 1));
        // Without an observer there is nothing to collect, but the row
        // and stats are unchanged.
        let plain = bench()
            .observed_heuristic_run(|| Sor::new(64, 64, 8), Strategy::MinCost, 2)
            .unwrap();
        assert_eq!(plain.row, rows[0]);
        assert_eq!(plain.stats, run.stats);
        assert!(plain.observation.is_none());
    }

    #[test]
    fn node_count_study_parallel_matches_sequential() {
        let app = || Sor::new(64, 64, 8);
        let seq = node_count_study(app, 8, &[2, 4], 2, 1).unwrap();
        let par = node_count_study(app, 8, &[2, 4], 2, 4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn scale_placement_study_is_jobs_invariant() {
        let seq = scale_placement_study(2000, 10, 6, 42, 1).unwrap();
        let par = scale_placement_study(2000, 10, 6, 42, 8).unwrap();
        assert_eq!(seq.digest, par.digest, "jobs must not change the mapping");
        assert_eq!(seq.cut, par.cut);
        assert_eq!(seq.edges, par.edges);
        assert!(
            seq.cut < seq.stretch_cut,
            "multilevel {} must beat stretch {} on community structure",
            seq.cut,
            seq.stretch_cut
        );
        assert!(seq.digest.starts_with("fnv1a:"));
    }

    #[test]
    fn scale_placement_study_rejects_bad_topology() {
        assert!(scale_placement_study(4, 8, 4, 1, 1).is_err());
    }

    #[test]
    fn phase_scan_flags_drift_shift_within_one_window() {
        use acorr_apps::Drift;
        // Drift's partner offset jumps every `period` iterations; with a
        // detector window of 2 the first post-shift window is ordinal 2
        // (iterations 4-5), so the acceptance bound "within one window of
        // ground truth" allows windows 2 or 3.
        let scan = bench()
            .with_observer(acorr_obs::ObsConfig::all())
            .phase_scan(|| Drift::new(256, 8, 4), 12, 2)
            .unwrap();
        assert_eq!(scan.app, "Drift");
        let first = scan.shifts.first().expect("drift shift detected");
        assert!(
            (2..=3).contains(&first.window),
            "fired at window {} (boundary window is 2)",
            first.window
        );
        // The detected shift lands on the Perfetto control lane and in the
        // structured log.
        let obs = scan.observation.expect("observer configured");
        let trace = obs.chrome_trace.expect("chrome sink on");
        assert!(trace.contains("\"phase_shift\""), "trace: {trace}");
        let jsonl = obs.events_jsonl.expect("jsonl sink on");
        assert!(jsonl.contains("\"phase_shift\""));
        // Span profiling rode along: the engine bracketed its phases.
        assert!(jsonl.contains("\"span_begin\""));
    }

    #[test]
    fn phase_scan_without_shift_stays_quiet_and_deterministic() {
        let run = || bench().phase_scan(|| Sor::new(64, 64, 8), 8, 2).unwrap();
        let (a, b) = (run(), run());
        assert!(
            a.shifts.is_empty(),
            "static SOR must not fire: {:?}",
            a.shifts
        );
        assert_eq!(a.shifts, b.shifts);
        assert_eq!(a.stats, b.stats);
        assert!(a.observation.is_none(), "no observer configured");
    }
}
