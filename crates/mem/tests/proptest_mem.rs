//! Property tests for address arithmetic and access matrices.

// Property tests require the external `proptest` crate, which the
// offline default build cannot fetch; see the crate Cargo.toml.
#![cfg(feature = "proptest")]

use acorr_mem::{pages_for, span_pages, AccessMatrix, PageId, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// span_pages partitions a byte range exactly: spans are contiguous,
    /// page-ordered, cover every byte once, and agree with a naive loop.
    #[test]
    fn span_pages_partitions_exactly(addr in 0u64..1_000_000, len in 0u64..100_000) {
        let spans: Vec<_> = span_pages(addr, len).collect();
        let total: u64 = spans.iter().map(|s| s.len() as u64).sum();
        prop_assert_eq!(total, len);
        let mut cursor = addr;
        for s in &spans {
            prop_assert_eq!(s.page.base_addr() + s.start as u64, cursor);
            prop_assert!(s.end as usize <= PAGE_SIZE);
            prop_assert!(s.start < s.end);
            cursor = s.page.base_addr() + s.end as u64;
        }
        if len > 0 {
            prop_assert_eq!(cursor, addr + len);
            // Page count matches the arithmetic bound.
            let first = addr / PAGE_SIZE as u64;
            let last = (addr + len - 1) / PAGE_SIZE as u64;
            prop_assert_eq!(spans.len() as u64, last - first + 1);
        }
    }

    /// pages_for is the exact inverse bound of page packing.
    #[test]
    fn pages_for_is_tight(bytes in 0u64..10_000_000) {
        let pages = pages_for(bytes);
        prop_assert!(pages * (PAGE_SIZE as u64) >= bytes);
        if pages > 0 {
            prop_assert!((pages - 1) * (PAGE_SIZE as u64) < bytes);
        }
    }

    /// AccessMatrix CSV round-trips arbitrary observation sets.
    #[test]
    fn access_matrix_csv_round_trips(
        obs in proptest::collection::hash_set((0usize..6, 0u32..64), 0..80)
    ) {
        let mut m = AccessMatrix::new(6, 64);
        for &(t, p) in &obs {
            m.record(t, PageId(p));
        }
        let back = AccessMatrix::from_csv(&m.to_csv()).expect("round trip");
        prop_assert_eq!(back, m);
    }

    /// Completeness is monotone under merging and capped at 1.
    #[test]
    fn completeness_is_monotone(
        truth_obs in proptest::collection::hash_set((0usize..4, 0u32..32), 1..60),
        partial_obs in proptest::collection::vec((0usize..4, 0u32..32), 0..60),
    ) {
        let mut truth = AccessMatrix::new(4, 32);
        for &(t, p) in &truth_obs {
            truth.record(t, PageId(p));
        }
        let mut acc = AccessMatrix::new(4, 32);
        let mut last = acc.completeness_vs(&truth);
        for &(t, p) in &partial_obs {
            acc.record(t, PageId(p));
            let now = acc.completeness_vs(&truth);
            prop_assert!(now >= last - 1e-12);
            prop_assert!(now <= 1.0 + 1e-12);
            last = now;
        }
        acc.merge(&truth);
        prop_assert!((acc.completeness_vs(&truth) - 1.0).abs() < 1e-12);
    }
}
