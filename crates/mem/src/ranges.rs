//! Dirty-range sets and the word-chunked dirty mask.
//!
//! CVM's multi-writer protocol compares a dirty page against its *twin* to
//! produce a *diff* — the set of modified words. The simulation does not
//! hold page contents, so it records the byte ranges a node wrote within
//! one page instead; the total length of the merged ranges is the diff
//! size, which prices both diff creation and the "Diff Mbytes" traffic of
//! Table 6.
//!
//! Two representations share that contract:
//!
//! * [`RangeSet`] — sorted disjoint `(start, end)` pairs. Inserts are
//!   `O(log n)` searches plus `Vec` shifts; this is the byte-wise
//!   *reference* the equivalence tests pin against.
//! * [`DirtyMask`] — one bit per page byte, packed into 64 `u64` words.
//!   Inserting a span is a handful of word-masked ORs, the diff length is
//!   64 popcounts, and the fragment count is a rising-edge scan — the
//!   engine's hot path. Both report **byte-identical** lengths and
//!   fragment counts for the same inserts, so swapping them changes no
//!   golden table.

use crate::page::PAGE_SIZE;
use std::fmt;

/// A set of disjoint, sorted, half-open byte ranges within one page.
///
/// Inserting overlapping or adjacent ranges merges them, mirroring how a
/// word-level diff would coalesce.
///
/// ```
/// use acorr_mem::RangeSet;
/// let mut set = RangeSet::new();
/// set.insert(0, 8);
/// set.insert(16, 24);
/// set.insert(8, 16); // bridges the gap
/// assert_eq!(set.total_len(), 24);
/// assert_eq!(set.iter().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeSet {
    // Sorted, non-overlapping, non-adjacent (start, end) pairs.
    ranges: Vec<(u16, u16)>,
}

impl RangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// Inserts `[start, end)`, merging with overlapping or adjacent ranges.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn insert(&mut self, start: u16, end: u16) {
        assert!(start <= end, "inverted range {start}..{end}");
        if start == end {
            return;
        }
        // Find the insertion window: all ranges overlapping or adjacent to
        // [start, end).
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.ranges.insert(lo, (start, end));
            return;
        }
        let new_start = start.min(self.ranges[lo].0);
        let new_end = end.max(self.ranges[hi - 1].1);
        self.ranges.drain(lo..hi);
        self.ranges.insert(lo, (new_start, new_end));
    }

    /// Total bytes covered.
    pub fn total_len(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| (e - s) as u64).sum()
    }

    /// Number of disjoint ranges.
    pub fn fragment_count(&self) -> usize {
        self.ranges.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether byte `b` is covered.
    pub fn contains(&self, b: u16) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if b < s {
                    std::cmp::Ordering::Greater
                } else if b >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Removes every range.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// Iterates over the disjoint `(start, end)` ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        self.ranges.iter().copied()
    }
}

impl fmt::Display for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (s, e)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}..{e}")?;
        }
        write!(f, "]")
    }
}

/// Words in a page-wide byte mask (`PAGE_SIZE / 64`).
const MASK_WORDS: usize = PAGE_SIZE / 64;

/// A page-wide dirty-byte mask: one bit per byte, packed into `u64` words.
///
/// The drop-in fast path for [`RangeSet`] on the engine's twin/diff hot
/// loop. [`DirtyMask::total_len`] and [`DirtyMask::fragment_count`] are
/// byte-exact matches for the range set's answers on the same inserts —
/// the diff-size formula (`dirty_len + 8 * fragments + 16`) is golden-table
/// load-bearing, so the representations must never diverge.
///
/// ```
/// use acorr_mem::DirtyMask;
/// let mut m = DirtyMask::new();
/// m.insert(0, 8);
/// m.insert(16, 24);
/// m.insert(8, 16); // bridges the gap
/// assert_eq!(m.total_len(), 24);
/// assert_eq!(m.fragment_count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DirtyMask {
    words: [u64; MASK_WORDS],
}

impl Default for DirtyMask {
    fn default() -> Self {
        DirtyMask {
            words: [0; MASK_WORDS],
        }
    }
}

impl DirtyMask {
    /// Creates an all-clean mask.
    pub fn new() -> Self {
        DirtyMask::default()
    }

    /// Marks `[start, end)` dirty via word-masked ORs.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > PAGE_SIZE`.
    pub fn insert(&mut self, start: u16, end: u16) {
        assert!(start <= end, "inverted range {start}..{end}");
        assert!(
            end as usize <= PAGE_SIZE,
            "range end {end} beyond page size {PAGE_SIZE}"
        );
        if start == end {
            return;
        }
        let (start, last) = (start as usize, end as usize - 1);
        let (ws, we) = (start / 64, last / 64);
        let lo_mask = !0u64 << (start % 64);
        let hi_mask = !0u64 >> (63 - last % 64);
        if ws == we {
            self.words[ws] |= lo_mask & hi_mask;
            return;
        }
        self.words[ws] |= lo_mask;
        for w in &mut self.words[ws + 1..we] {
            *w = !0;
        }
        self.words[we] |= hi_mask;
    }

    /// Total dirty bytes (64 popcounts).
    pub fn total_len(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Number of disjoint dirty runs: rising edges of the bit stream,
    /// carrying the previous word's top bit across word boundaries.
    pub fn fragment_count(&self) -> usize {
        let mut carry = 0u64;
        let mut rises = 0usize;
        for &w in &self.words {
            rises += (w & !((w << 1) | carry)).count_ones() as usize;
            carry = w >> 63;
        }
        rises
    }

    /// True when no byte is dirty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether byte `b` is dirty.
    ///
    /// # Panics
    ///
    /// Panics if `b >= PAGE_SIZE`.
    pub fn contains(&self, b: u16) -> bool {
        assert!((b as usize) < PAGE_SIZE, "byte {b} beyond page size");
        self.words[b as usize / 64] >> (b % 64) & 1 != 0
    }

    /// Resets to all-clean (a word fill, the per-interval reset).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over the disjoint dirty `(start, end)` runs, ascending —
    /// the same sequence [`RangeSet::iter`] yields for equivalent inserts.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        let mut b = 0usize;
        std::iter::from_fn(move || {
            while b < PAGE_SIZE && !self.bit(b) {
                b += 1;
            }
            if b >= PAGE_SIZE {
                return None;
            }
            let start = b;
            while b < PAGE_SIZE && self.bit(b) {
                b += 1;
            }
            Some((start as u16, b as u16))
        })
    }

    fn bit(&self, b: usize) -> bool {
        self.words[b / 64] >> (b % 64) & 1 != 0
    }
}

impl fmt::Debug for DirtyMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DirtyMask{self}")
    }
}

impl fmt::Display for DirtyMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (s, e)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}..{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_inserts_stay_disjoint() {
        let mut s = RangeSet::new();
        s.insert(100, 200);
        s.insert(0, 50);
        s.insert(300, 400);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![(0, 50), (100, 200), (300, 400)]
        );
        assert_eq!(s.total_len(), 50 + 100 + 100);
        assert_eq!(s.fragment_count(), 3);
    }

    #[test]
    fn overlapping_inserts_merge() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(15, 30);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(10, 30)]);
        s.insert(0, 100);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 100)]);
    }

    #[test]
    fn adjacent_inserts_coalesce() {
        let mut s = RangeSet::new();
        s.insert(0, 8);
        s.insert(8, 16);
        assert_eq!(s.fragment_count(), 1);
        assert_eq!(s.total_len(), 16);
    }

    #[test]
    fn bridging_insert_merges_many() {
        let mut s = RangeSet::new();
        for i in 0..10 {
            s.insert(i * 20, i * 20 + 4);
        }
        assert_eq!(s.fragment_count(), 10);
        s.insert(0, 200);
        assert_eq!(s.fragment_count(), 1);
        assert_eq!(s.total_len(), 200);
    }

    #[test]
    fn empty_and_zero_length() {
        let mut s = RangeSet::new();
        assert!(s.is_empty());
        s.insert(5, 5);
        assert!(s.is_empty());
        assert_eq!(s.total_len(), 0);
    }

    #[test]
    fn contains_checks_membership() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(40, 50);
        assert!(s.contains(10));
        assert!(s.contains(19));
        assert!(!s.contains(20));
        assert!(!s.contains(30));
        assert!(s.contains(45));
        assert!(!s.contains(0));
    }

    #[test]
    fn clear_resets() {
        let mut s = RangeSet::new();
        s.insert(0, 4096);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn idempotent_reinsert() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(10, 20);
        assert_eq!(s.total_len(), 10);
        assert_eq!(s.fragment_count(), 1);
    }

    #[test]
    #[should_panic(expected = "inverted range")]
    fn inverted_range_panics() {
        RangeSet::new().insert(10, 5);
    }

    #[test]
    fn display_lists_ranges() {
        let mut s = RangeSet::new();
        s.insert(1, 3);
        s.insert(7, 9);
        assert_eq!(s.to_string(), "[1..3 7..9]");
    }

    /// Asserts the mask and the byte-wise reference agree on every
    /// observable after the same inserts.
    fn assert_equivalent(ops: &[(u16, u16)]) {
        let mut set = RangeSet::new();
        let mut mask = DirtyMask::new();
        for &(s, e) in ops {
            set.insert(s, e);
            mask.insert(s, e);
        }
        assert_eq!(mask.total_len(), set.total_len(), "len after {ops:?}");
        assert_eq!(
            mask.fragment_count(),
            set.fragment_count(),
            "fragments after {ops:?}"
        );
        assert_eq!(mask.is_empty(), set.is_empty());
        assert_eq!(
            mask.iter().collect::<Vec<_>>(),
            set.iter().collect::<Vec<_>>(),
            "runs after {ops:?}"
        );
        for b in 0..PAGE_SIZE as u16 {
            assert_eq!(mask.contains(b), set.contains(b), "byte {b} after {ops:?}");
        }
    }

    #[test]
    fn mask_matches_reference_on_adversarial_spans() {
        // Unaligned starts/ends, word-boundary crossings, single bytes,
        // trailing partial words, and the full page.
        let cases: &[&[(u16, u16)]] = &[
            &[(0, 1)],
            &[(63, 65)],
            &[(1, 63)],
            &[(0, 64), (64, 128)],
            &[(7, 9), (9, 11)],
            &[(4090, 4096)],
            &[(4095, 4096)],
            &[(4032, 4090), (4090, 4096)],
            &[(0, 4096)],
            &[(1, 4095)],
            &[(100, 200), (150, 300), (0, 101)],
            &[(64, 128), (0, 64)],
            &[(127, 129), (191, 193), (128, 192)],
            &[(5, 5), (4096, 4096)],
        ];
        for ops in cases {
            assert_equivalent(ops);
        }
    }

    #[test]
    fn mask_matches_reference_on_random_spans() {
        // Deterministic xorshift stream: no external dependencies, same
        // spans every run.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let mut ops = Vec::new();
            for _ in 0..(next() % 12 + 1) {
                let a = (next() % 4097) as u16;
                let b = (next() % 4097) as u16;
                ops.push((a.min(b), a.max(b)));
            }
            assert_equivalent(&ops);
        }
    }

    #[test]
    fn mask_clear_and_reinsert() {
        let mut m = DirtyMask::new();
        m.insert(0, 4096);
        assert_eq!(m.total_len(), 4096);
        assert_eq!(m.fragment_count(), 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.fragment_count(), 0);
        m.insert(10, 20);
        m.insert(10, 20);
        assert_eq!(m.total_len(), 10);
        assert_eq!(m.to_string(), "[10..20]");
    }

    #[test]
    #[should_panic(expected = "inverted range")]
    fn mask_inverted_range_panics() {
        DirtyMask::new().insert(10, 5);
    }

    #[test]
    #[should_panic(expected = "beyond page size")]
    fn mask_out_of_page_panics() {
        DirtyMask::new().insert(4090, 4097);
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn reference_cover(ops: &[(u16, u16)]) -> Vec<bool> {
        let mut cover = vec![false; 4096];
        for &(s, e) in ops {
            for item in cover.iter_mut().take(e as usize).skip(s as usize) {
                *item = true;
            }
        }
        cover
    }

    proptest! {
        /// After arbitrary inserts, the set covers exactly the union of the
        /// inserted ranges and its invariants (sorted, disjoint,
        /// non-adjacent) hold.
        #[test]
        fn matches_boolean_reference(
            raw in proptest::collection::vec((0u16..4096, 0u16..4096), 0..40)
        ) {
            let ops: Vec<(u16, u16)> = raw
                .into_iter()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            let mut set = RangeSet::new();
            for &(s, e) in &ops {
                set.insert(s, e);
            }
            let cover = reference_cover(&ops);
            let expected_len: u64 = cover.iter().filter(|&&c| c).count() as u64;
            prop_assert_eq!(set.total_len(), expected_len);
            for b in 0..4096u16 {
                prop_assert_eq!(set.contains(b), cover[b as usize], "byte {}", b);
            }
            // Structural invariants.
            let rs: Vec<(u16, u16)> = set.iter().collect();
            for w in rs.windows(2) {
                prop_assert!(w[0].1 < w[1].0, "ranges {:?} not disjoint/sorted", rs);
            }
            for &(s, e) in &rs {
                prop_assert!(s < e);
            }
        }

        /// The word-chunked mask is observationally identical to the
        /// byte-wise reference on arbitrary insert sequences.
        #[test]
        fn mask_equivalent_to_range_set(
            raw in proptest::collection::vec((0u16..4096, 0u16..4096), 0..40)
        ) {
            let mut set = RangeSet::new();
            let mut mask = DirtyMask::new();
            for (a, b) in raw {
                let (s, e) = (a.min(b), a.max(b));
                set.insert(s, e);
                mask.insert(s, e);
            }
            prop_assert_eq!(mask.total_len(), set.total_len());
            prop_assert_eq!(mask.fragment_count(), set.fragment_count());
            prop_assert_eq!(
                mask.iter().collect::<Vec<_>>(),
                set.iter().collect::<Vec<_>>()
            );
        }
    }
}
