//! Dirty-range sets.
//!
//! CVM's multi-writer protocol compares a dirty page against its *twin* to
//! produce a *diff* — the set of modified words. The simulation does not
//! hold page contents, so [`RangeSet`] records the byte ranges a node wrote
//! within one page instead; the total length of the merged ranges is the
//! diff size, which prices both diff creation and the "Diff Mbytes" traffic
//! of Table 6.

use std::fmt;

/// A set of disjoint, sorted, half-open byte ranges within one page.
///
/// Inserting overlapping or adjacent ranges merges them, mirroring how a
/// word-level diff would coalesce.
///
/// ```
/// use acorr_mem::RangeSet;
/// let mut set = RangeSet::new();
/// set.insert(0, 8);
/// set.insert(16, 24);
/// set.insert(8, 16); // bridges the gap
/// assert_eq!(set.total_len(), 24);
/// assert_eq!(set.iter().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeSet {
    // Sorted, non-overlapping, non-adjacent (start, end) pairs.
    ranges: Vec<(u16, u16)>,
}

impl RangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// Inserts `[start, end)`, merging with overlapping or adjacent ranges.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn insert(&mut self, start: u16, end: u16) {
        assert!(start <= end, "inverted range {start}..{end}");
        if start == end {
            return;
        }
        // Find the insertion window: all ranges overlapping or adjacent to
        // [start, end).
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let hi = self.ranges.partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.ranges.insert(lo, (start, end));
            return;
        }
        let new_start = start.min(self.ranges[lo].0);
        let new_end = end.max(self.ranges[hi - 1].1);
        self.ranges.drain(lo..hi);
        self.ranges.insert(lo, (new_start, new_end));
    }

    /// Total bytes covered.
    pub fn total_len(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| (e - s) as u64).sum()
    }

    /// Number of disjoint ranges.
    pub fn fragment_count(&self) -> usize {
        self.ranges.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether byte `b` is covered.
    pub fn contains(&self, b: u16) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if b < s {
                    std::cmp::Ordering::Greater
                } else if b >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Removes every range.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// Iterates over the disjoint `(start, end)` ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u16)> + '_ {
        self.ranges.iter().copied()
    }
}

impl fmt::Display for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (s, e)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}..{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_inserts_stay_disjoint() {
        let mut s = RangeSet::new();
        s.insert(100, 200);
        s.insert(0, 50);
        s.insert(300, 400);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![(0, 50), (100, 200), (300, 400)]
        );
        assert_eq!(s.total_len(), 50 + 100 + 100);
        assert_eq!(s.fragment_count(), 3);
    }

    #[test]
    fn overlapping_inserts_merge() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(15, 30);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(10, 30)]);
        s.insert(0, 100);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![(0, 100)]);
    }

    #[test]
    fn adjacent_inserts_coalesce() {
        let mut s = RangeSet::new();
        s.insert(0, 8);
        s.insert(8, 16);
        assert_eq!(s.fragment_count(), 1);
        assert_eq!(s.total_len(), 16);
    }

    #[test]
    fn bridging_insert_merges_many() {
        let mut s = RangeSet::new();
        for i in 0..10 {
            s.insert(i * 20, i * 20 + 4);
        }
        assert_eq!(s.fragment_count(), 10);
        s.insert(0, 200);
        assert_eq!(s.fragment_count(), 1);
        assert_eq!(s.total_len(), 200);
    }

    #[test]
    fn empty_and_zero_length() {
        let mut s = RangeSet::new();
        assert!(s.is_empty());
        s.insert(5, 5);
        assert!(s.is_empty());
        assert_eq!(s.total_len(), 0);
    }

    #[test]
    fn contains_checks_membership() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(40, 50);
        assert!(s.contains(10));
        assert!(s.contains(19));
        assert!(!s.contains(20));
        assert!(!s.contains(30));
        assert!(s.contains(45));
        assert!(!s.contains(0));
    }

    #[test]
    fn clear_resets() {
        let mut s = RangeSet::new();
        s.insert(0, 4096);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn idempotent_reinsert() {
        let mut s = RangeSet::new();
        s.insert(10, 20);
        s.insert(10, 20);
        assert_eq!(s.total_len(), 10);
        assert_eq!(s.fragment_count(), 1);
    }

    #[test]
    #[should_panic(expected = "inverted range")]
    fn inverted_range_panics() {
        RangeSet::new().insert(10, 5);
    }

    #[test]
    fn display_lists_ranges() {
        let mut s = RangeSet::new();
        s.insert(1, 3);
        s.insert(7, 9);
        assert_eq!(s.to_string(), "[1..3 7..9]");
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn reference_cover(ops: &[(u16, u16)]) -> Vec<bool> {
        let mut cover = vec![false; 4096];
        for &(s, e) in ops {
            for item in cover.iter_mut().take(e as usize).skip(s as usize) {
                *item = true;
            }
        }
        cover
    }

    proptest! {
        /// After arbitrary inserts, the set covers exactly the union of the
        /// inserted ranges and its invariants (sorted, disjoint,
        /// non-adjacent) hold.
        #[test]
        fn matches_boolean_reference(
            raw in proptest::collection::vec((0u16..4096, 0u16..4096), 0..40)
        ) {
            let ops: Vec<(u16, u16)> = raw
                .into_iter()
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            let mut set = RangeSet::new();
            for &(s, e) in &ops {
                set.insert(s, e);
            }
            let cover = reference_cover(&ops);
            let expected_len: u64 = cover.iter().filter(|&&c| c).count() as u64;
            prop_assert_eq!(set.total_len(), expected_len);
            for b in 0..4096u16 {
                prop_assert_eq!(set.contains(b), cover[b as usize], "byte {}", b);
            }
            // Structural invariants.
            let rs: Vec<(u16, u16)> = set.iter().collect();
            for w in rs.windows(2) {
                prop_assert!(w[0].1 < w[1].0, "ranges {:?} not disjoint/sorted", rs);
            }
            for &(s, e) in &rs {
                prop_assert!(s < e);
            }
        }
    }
}
