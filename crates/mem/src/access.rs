//! Access matrices.
//!
//! The output of a tracking phase (§4.2): for every thread, the set of
//! shared pages it touched during the tracked interval. The [`AccessMatrix`]
//! is the ground-truth object from which thread correlations, correlation
//! maps, cut costs and sharing degrees are all derived.

use crate::bitset::FixedBitset;
use crate::page::PageId;
use std::fmt;

/// Per-thread page-access bitmaps for one tracked interval.
///
/// ```
/// use acorr_mem::{AccessMatrix, PageId};
/// let mut m = AccessMatrix::new(3, 16);
/// m.record(0, PageId(2));
/// m.record(1, PageId(2));
/// m.record(1, PageId(3));
/// assert_eq!(m.shared_pages(0, 1), 1);
/// assert_eq!(m.pages_touched(1), 2);
/// assert_eq!(m.distinct_pages(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessMatrix {
    threads: usize,
    pages: usize,
    bitmaps: Vec<FixedBitset>,
}

impl AccessMatrix {
    /// Creates an empty matrix for `threads` threads over `pages` pages.
    pub fn new(threads: usize, pages: usize) -> Self {
        AccessMatrix {
            threads,
            pages,
            bitmaps: (0..threads).map(|_| FixedBitset::new(pages)).collect(),
        }
    }

    /// Number of threads covered.
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Number of pages covered.
    pub fn num_pages(&self) -> usize {
        self.pages
    }

    /// Records that `thread` accessed `page`. Returns whether the
    /// observation was new.
    ///
    /// # Panics
    ///
    /// Panics if `thread` or `page` is out of range.
    pub fn record(&mut self, thread: usize, page: PageId) -> bool {
        self.bitmaps[thread].insert(page.idx())
    }

    /// Whether `thread` was observed accessing `page`.
    pub fn observed(&self, thread: usize, page: PageId) -> bool {
        self.bitmaps[thread].contains(page.idx())
    }

    /// The access bitmap of one thread.
    pub fn bitmap(&self, thread: usize) -> &FixedBitset {
        &self.bitmaps[thread]
    }

    /// Number of pages `thread` touched.
    pub fn pages_touched(&self, thread: usize) -> usize {
        self.bitmaps[thread].count()
    }

    /// Total observations across all threads (Σ per-thread page counts).
    pub fn total_observations(&self) -> usize {
        self.bitmaps.iter().map(|b| b.count()).sum()
    }

    /// Number of distinct pages touched by *any* thread.
    pub fn distinct_pages(&self) -> usize {
        let mut union = FixedBitset::new(self.pages);
        for b in &self.bitmaps {
            union.union_with(b);
        }
        union.count()
    }

    /// The thread correlation of §1: pages shared in common by the pair.
    pub fn shared_pages(&self, a: usize, b: usize) -> usize {
        self.bitmaps[a].intersection_count(&self.bitmaps[b])
    }

    /// Merges another matrix's observations into this one (used to
    /// accumulate passive observations across rounds).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &AccessMatrix) {
        assert_eq!(self.threads, other.threads, "thread counts differ");
        assert_eq!(self.pages, other.pages, "page counts differ");
        for (mine, theirs) in self.bitmaps.iter_mut().zip(&other.bitmaps) {
            mine.union_with(theirs);
        }
    }

    /// Fraction of `truth`'s observations also present here — the paper's
    /// Figure 2 "percentage of complete sharing information".
    ///
    /// Returns 1.0 when the ground truth is empty.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn completeness_vs(&self, truth: &AccessMatrix) -> f64 {
        assert_eq!(self.threads, truth.threads, "thread counts differ");
        assert_eq!(self.pages, truth.pages, "page counts differ");
        let total = truth.total_observations();
        if total == 0 {
            return 1.0;
        }
        let found: usize = self
            .bitmaps
            .iter()
            .zip(&truth.bitmaps)
            .map(|(mine, t)| mine.intersection_count(t))
            .sum();
        found as f64 / total as f64
    }
}

impl AccessMatrix {
    /// Serializes the matrix as sparse CSV: one `thread,page` line per
    /// observation, preceded by a `threads,pages` header line.
    pub fn to_csv(&self) -> String {
        let mut out = format!("{},{}\n", self.threads, self.pages);
        for t in 0..self.threads {
            for p in self.bitmaps[t].iter_ones() {
                out.push_str(&format!("{t},{p}\n"));
            }
        }
        out
    }

    /// Parses the sparse CSV produced by [`AccessMatrix::to_csv`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line or
    /// out-of-range observation.
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let mut lines = csv.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("missing header line")?;
        let (t, p) = header
            .split_once(',')
            .ok_or_else(|| format!("bad header {header}"))?;
        let threads: usize = t.trim().parse().map_err(|e| format!("threads: {e}"))?;
        let pages: usize = p.trim().parse().map_err(|e| format!("pages: {e}"))?;
        let mut m = AccessMatrix::new(threads, pages);
        for (i, line) in lines.enumerate() {
            let (t, p) = line
                .split_once(',')
                .ok_or_else(|| format!("line {}: bad row {line}", i + 2))?;
            let t: usize = t
                .trim()
                .parse()
                .map_err(|e| format!("line {}: {e}", i + 2))?;
            let p: u32 = p
                .trim()
                .parse()
                .map_err(|e| format!("line {}: {e}", i + 2))?;
            if t >= threads || p as usize >= pages {
                return Err(format!("line {}: ({t},{p}) out of range", i + 2));
            }
            m.record(t, PageId(p));
        }
        Ok(m)
    }
}

impl fmt::Display for AccessMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access matrix: {} threads x {} pages, {} observations over {} distinct pages",
            self.threads,
            self.pages,
            self.total_observations(),
            self.distinct_pages()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccessMatrix {
        let mut m = AccessMatrix::new(3, 8);
        // t0: {0,1}, t1: {1,2}, t2: {2,3}
        m.record(0, PageId(0));
        m.record(0, PageId(1));
        m.record(1, PageId(1));
        m.record(1, PageId(2));
        m.record(2, PageId(2));
        m.record(2, PageId(3));
        m
    }

    #[test]
    fn record_and_observe() {
        let mut m = AccessMatrix::new(2, 4);
        assert!(m.record(0, PageId(3)));
        assert!(!m.record(0, PageId(3)), "duplicate is not new");
        assert!(m.observed(0, PageId(3)));
        assert!(!m.observed(1, PageId(3)));
    }

    #[test]
    fn correlations_match_hand_count() {
        let m = sample();
        assert_eq!(m.shared_pages(0, 1), 1);
        assert_eq!(m.shared_pages(1, 2), 1);
        assert_eq!(m.shared_pages(0, 2), 0);
        assert_eq!(m.shared_pages(0, 0), 2, "self-correlation = own count");
    }

    #[test]
    fn totals() {
        let m = sample();
        assert_eq!(m.total_observations(), 6);
        assert_eq!(m.distinct_pages(), 4);
        assert_eq!(m.pages_touched(1), 2);
        assert_eq!(m.num_threads(), 3);
        assert_eq!(m.num_pages(), 8);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = AccessMatrix::new(2, 4);
        a.record(0, PageId(0));
        let mut b = AccessMatrix::new(2, 4);
        b.record(0, PageId(1));
        b.record(1, PageId(2));
        a.merge(&b);
        assert!(a.observed(0, PageId(0)));
        assert!(a.observed(0, PageId(1)));
        assert!(a.observed(1, PageId(2)));
        assert_eq!(a.total_observations(), 3);
    }

    #[test]
    fn completeness_fractions() {
        let truth = sample();
        let mut partial = AccessMatrix::new(3, 8);
        assert_eq!(partial.completeness_vs(&truth), 0.0);
        partial.record(0, PageId(0));
        partial.record(0, PageId(1));
        partial.record(1, PageId(1));
        assert!((partial.completeness_vs(&truth) - 0.5).abs() < 1e-12);
        partial.merge(&truth);
        assert_eq!(partial.completeness_vs(&truth), 1.0);
        // Extra observations beyond the truth do not inflate the score.
        partial.record(2, PageId(7));
        assert_eq!(partial.completeness_vs(&truth), 1.0);
    }

    #[test]
    fn csv_round_trips() {
        let m = sample();
        let csv = m.to_csv();
        assert!(csv.starts_with("3,8\n"));
        let back = AccessMatrix::from_csv(&csv).unwrap();
        assert_eq!(back, m);
        // Empty matrix round-trips too.
        let empty = AccessMatrix::new(2, 4);
        assert_eq!(AccessMatrix::from_csv(&empty.to_csv()).unwrap(), empty);
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(AccessMatrix::from_csv("").is_err(), "no header");
        assert!(AccessMatrix::from_csv("2\n").is_err(), "bad header");
        assert!(AccessMatrix::from_csv("2,4\n1;2\n").is_err(), "bad row");
        assert!(AccessMatrix::from_csv("2,4\n5,0\n").is_err(), "thread oob");
        assert!(AccessMatrix::from_csv("2,4\n0,9\n").is_err(), "page oob");
    }

    #[test]
    fn completeness_of_empty_truth_is_one() {
        let truth = AccessMatrix::new(2, 4);
        let obs = AccessMatrix::new(2, 4);
        assert_eq!(obs.completeness_vs(&truth), 1.0);
    }

    #[test]
    #[should_panic(expected = "thread counts differ")]
    fn merge_shape_mismatch_panics() {
        AccessMatrix::new(2, 4).merge(&AccessMatrix::new(3, 4));
    }

    #[test]
    fn display_summarizes() {
        let m = sample();
        let s = m.to_string();
        assert!(s.contains("3 threads"));
        assert!(s.contains("6 observations"));
    }
}
