//! Vector clocks and a happens-before race detector over page accesses.
//!
//! The DSM engine forwards every completed shared-memory access (the same
//! per-page spans that drive the protocol) plus every synchronization event
//! (lock acquire/release, global barrier) into an [`HbRaceDetector`]. The
//! detector maintains one [`VectorClock`] per thread and per lock and flags
//! *conflicting concurrent accesses*: two accesses to overlapping bytes of
//! the same page, at least one a write, with neither ordered before the
//! other by the program's synchronization.
//!
//! Two properties shape the implementation:
//!
//! * Barriers are **global** joins: everything before a barrier
//!   happens-before everything after it, so per-page access histories are
//!   cleared at each barrier — memory use is bounded by one barrier
//!   interval, and every conflict check only scans the current interval.
//! * Each access record stores the **epoch** `(thread, clock-component)` of
//!   the accessor, the FastTrack-style compression: record `r` by thread
//!   `u` happens-before the current access by `t` iff
//!   `clock_of(t)[u] >= r.clock`.
//!
//! Detected races are deduplicated by `(page, thread pair, kind)`, so a
//! structurally racy program (the paper's Water deliberately merges
//! unordered same-page writes) reports a stable set rather than one
//! finding per access. Every distinct race is recorded: truncating here
//! would make the reported set depend on detection order, which the
//! schedule explorer compares across runs.

use crate::page::{PageId, PageSpan};
use std::collections::HashSet;

/// A classic vector clock: one logical-clock component per thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    c: Vec<u64>,
}

impl VectorClock {
    /// The zero clock over `threads` components.
    pub fn new(threads: usize) -> Self {
        VectorClock {
            c: vec![0; threads],
        }
    }

    /// This clock's component for `thread`.
    pub fn get(&self, thread: usize) -> u64 {
        self.c[thread]
    }

    /// Increments `thread`'s own component (a local step).
    pub fn tick(&mut self, thread: usize) {
        self.c[thread] += 1;
    }

    /// Pointwise maximum with `other` (a join on message receipt).
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.c.iter_mut().zip(&other.c) {
            *a = (*a).max(*b);
        }
    }

    /// Whether every component of `self` is ≤ the matching component of
    /// `other` — i.e. `self` happens-before-or-equals `other`.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.c.iter().zip(&other.c).all(|(a, b)| a <= b)
    }
}

/// The flavor of a conflicting concurrent access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RaceKind {
    /// Two concurrent writes overlapped.
    WriteWrite,
    /// A concurrent read and write overlapped (either order).
    ReadWrite,
}

impl std::fmt::Display for RaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write-write"),
            RaceKind::ReadWrite => write!(f, "read-write"),
        }
    }
}

/// One detected race, identified by page, unordered thread pair, and kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Race {
    /// Page on which the accesses overlapped.
    pub page: PageId,
    /// Smaller global thread index of the pair.
    pub first: usize,
    /// Larger global thread index of the pair.
    pub second: usize,
    /// Conflict flavor.
    pub kind: RaceKind,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} race on {} between t{} and t{}",
            self.kind, self.page, self.first, self.second
        )
    }
}

/// Summary of a detector's findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RaceReport {
    /// All distinct races, sorted.
    pub races: Vec<Race>,
    /// Total distinct races observed (equals `races.len()`).
    pub distinct: usize,
    /// Accesses checked.
    pub accesses: u64,
    /// Barriers processed (history epochs).
    pub barriers: u64,
}

impl RaceReport {
    /// Distinct write-write races (the kind release consistency leaves
    /// unordered and the conformance oracle masks as *hazy*).
    pub fn write_write(&self) -> impl Iterator<Item = &Race> {
        self.races.iter().filter(|r| r.kind == RaceKind::WriteWrite)
    }

    /// Whether a write-write race was recorded on `page`.
    pub fn has_ww_on(&self, page: PageId) -> bool {
        self.write_write().any(|r| r.page == page)
    }
}

/// One completed access in the current barrier interval.
#[derive(Debug, Clone, Copy)]
struct AccessRec {
    thread: u32,
    /// The accessor's own clock component at access time (its epoch).
    clock: u64,
    write: bool,
    start: u16,
    end: u16,
}

/// Happens-before race detector over per-page byte spans.
#[derive(Debug)]
pub struct HbRaceDetector {
    threads: Vec<VectorClock>,
    locks: Vec<VectorClock>,
    /// Per-page access history of the current barrier interval.
    history: Vec<Vec<AccessRec>>,
    seen: HashSet<Race>,
    report: RaceReport,
}

impl HbRaceDetector {
    /// Creates a detector for `threads` threads, `locks` locks and `pages`
    /// pages.
    pub fn new(threads: usize, locks: usize, pages: usize) -> Self {
        let mut tclocks = Vec::with_capacity(threads);
        for t in 0..threads {
            let mut c = VectorClock::new(threads);
            c.tick(t); // distinguish epoch 0 from "never accessed"
            tclocks.push(c);
        }
        HbRaceDetector {
            threads: tclocks,
            locks: (0..locks).map(|_| VectorClock::new(threads)).collect(),
            history: (0..pages).map(|_| Vec::new()).collect(),
            seen: HashSet::new(),
            report: RaceReport::default(),
        }
    }

    /// The findings so far. Races come back sorted for deterministic
    /// reporting independent of detection order.
    pub fn report(&self) -> RaceReport {
        let mut r = self.report.clone();
        r.races.sort_unstable();
        r
    }

    fn record_race(&mut self, race: Race) {
        if self.seen.insert(race) {
            self.report.distinct += 1;
            self.report.races.push(race);
        }
    }

    /// A thread completed an access to `span`. `write` distinguishes loads
    /// from stores. Zero-length spans leave no trace.
    pub fn on_access(&mut self, thread: usize, span: PageSpan, write: bool) {
        if span.start == span.end {
            return;
        }
        self.report.accesses += 1;
        let me = &self.threads[thread];
        let mut found: Vec<Race> = Vec::new();
        let history = &self.history[span.page.idx()];
        for rec in history {
            let other = rec.thread as usize;
            if other == thread || (!write && !rec.write) {
                continue;
            }
            if rec.end <= span.start || span.end <= rec.start {
                continue; // disjoint bytes
            }
            // `rec` happens-before the current access iff the accessor has
            // seen the recorder's epoch. (The current access can never
            // happen-before `rec`: `rec` was completed earlier in a run
            // whose observation order respects causality.)
            if me.get(other) >= rec.clock {
                continue;
            }
            let kind = if write && rec.write {
                RaceKind::WriteWrite
            } else {
                RaceKind::ReadWrite
            };
            found.push(Race {
                page: span.page,
                first: thread.min(other),
                second: thread.max(other),
                kind,
            });
        }
        for race in found {
            self.record_race(race);
        }
        // Coalesce with an identical trailing record (common for a thread
        // streaming through a page in same-epoch span chunks).
        let epoch = self.threads[thread].get(thread);
        let history = &mut self.history[span.page.idx()];
        if let Some(last) = history.last_mut() {
            if last.thread as usize == thread
                && last.clock == epoch
                && last.write == write
                && span.start <= last.end
                && last.start <= span.end
            {
                last.start = last.start.min(span.start);
                last.end = last.end.max(span.end);
                return;
            }
        }
        history.push(AccessRec {
            thread: thread as u32,
            clock: epoch,
            write,
            start: span.start,
            end: span.end,
        });
    }

    /// A thread was granted `lock`: it inherits everything the previous
    /// holder released (acquire edge).
    pub fn on_lock_acquire(&mut self, thread: usize, lock: usize) {
        let l = self.locks[lock].clone();
        self.threads[thread].join(&l);
    }

    /// A thread released `lock`: its history-to-date transfers to the next
    /// acquirer (release edge), and the thread starts a fresh epoch.
    pub fn on_lock_release(&mut self, thread: usize, lock: usize) {
        self.locks[lock].join(&self.threads[thread]);
        self.threads[thread].tick(thread);
    }

    /// A global barrier released: everyone joins with everyone, all lock
    /// clocks are absorbed, per-page histories reset, and every thread
    /// starts a fresh epoch.
    pub fn on_barrier(&mut self) {
        self.report.barriers += 1;
        let n = self.threads.first().map_or(0, |c| c.c.len());
        let mut all = VectorClock::new(n);
        for c in &self.threads {
            all.join(c);
        }
        for c in &self.locks {
            all.join(c);
        }
        for (t, c) in self.threads.iter_mut().enumerate() {
            *c = all.clone();
            c.tick(t);
        }
        for c in &mut self.locks {
            *c = all.clone();
        }
        for h in &mut self.history {
            h.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(page: u32, start: u16, end: u16) -> PageSpan {
        PageSpan {
            page: PageId(page),
            start,
            end,
        }
    }

    #[test]
    fn clock_ordering() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        assert!(!a.le(&b) && b.le(&a));
        b.tick(1);
        assert!(!a.le(&b) && !b.le(&a)); // concurrent
        b.join(&a);
        assert!(a.le(&b));
    }

    #[test]
    fn unsynchronized_overlapping_writes_race() {
        let mut d = HbRaceDetector::new(2, 0, 1);
        d.on_access(0, span(0, 0, 64), true);
        d.on_access(1, span(0, 32, 96), true);
        let r = d.report();
        assert_eq!(r.distinct, 1);
        assert_eq!(
            r.races[0],
            Race {
                page: PageId(0),
                first: 0,
                second: 1,
                kind: RaceKind::WriteWrite
            }
        );
        assert!(r.has_ww_on(PageId(0)));
    }

    #[test]
    fn disjoint_bytes_and_read_read_do_not_race() {
        let mut d = HbRaceDetector::new(2, 0, 1);
        d.on_access(0, span(0, 0, 32), true);
        d.on_access(1, span(0, 32, 64), true); // disjoint
        d.on_access(0, span(0, 100, 200), false);
        d.on_access(1, span(0, 150, 250), false); // read-read
        assert_eq!(d.report().distinct, 0);
    }

    #[test]
    fn lock_ordering_suppresses_the_race() {
        let mut d = HbRaceDetector::new(2, 1, 1);
        // t0 writes, then releases; t1 acquires, then writes: ordered.
        d.on_access(0, span(0, 0, 8), true);
        d.on_lock_acquire(0, 0);
        d.on_lock_release(0, 0);
        d.on_lock_acquire(1, 0);
        d.on_lock_release(1, 0);
        d.on_access(1, span(0, 0, 8), true);
        assert_eq!(d.report().distinct, 0, "{:?}", d.report().races);
    }

    #[test]
    fn write_before_own_acquire_still_races() {
        let mut d = HbRaceDetector::new(2, 1, 1);
        // t1 locks/unlocks first, then writes; t0 writes *before* its own
        // acquire — the lock edge does not cover t0's write.
        d.on_lock_acquire(1, 0);
        d.on_lock_release(1, 0);
        d.on_access(1, span(0, 0, 8), true);
        d.on_access(0, span(0, 0, 8), true);
        d.on_lock_acquire(0, 0);
        d.on_lock_release(0, 0);
        assert_eq!(d.report().distinct, 1);
    }

    #[test]
    fn barrier_orders_everything_and_clears_history() {
        let mut d = HbRaceDetector::new(2, 0, 1);
        d.on_access(0, span(0, 0, 8), true);
        d.on_barrier();
        d.on_access(1, span(0, 0, 8), true);
        let r = d.report();
        assert_eq!(r.distinct, 0);
        assert_eq!(r.barriers, 1);
    }

    #[test]
    fn read_write_overlap_is_flagged_in_both_orders() {
        let mut d = HbRaceDetector::new(2, 0, 2);
        d.on_access(0, span(0, 0, 8), false);
        d.on_access(1, span(0, 0, 8), true); // write after read
        d.on_access(0, span(1, 0, 8), true);
        d.on_access(1, span(1, 0, 8), false); // read after write
        let r = d.report();
        assert_eq!(r.distinct, 2);
        assert!(r.races.iter().all(|x| x.kind == RaceKind::ReadWrite));
    }

    #[test]
    fn duplicate_pairs_dedup_and_coalesce() {
        let mut d = HbRaceDetector::new(2, 0, 1);
        for chunk in 0..8 {
            d.on_access(0, span(0, chunk * 8, chunk * 8 + 8), true);
        }
        // Same-epoch adjacent spans coalesced into one record.
        assert_eq!(d.history[0].len(), 1);
        for chunk in 0..8 {
            d.on_access(1, span(0, chunk * 8, chunk * 8 + 8), true);
        }
        assert_eq!(d.report().distinct, 1);
    }
}
