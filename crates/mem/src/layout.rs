//! Shared-segment layout.
//!
//! Applications allocate their shared data structures (matrices, particle
//! arrays, grids…) out of a single flat DSM address space, page-aligned so
//! that distinct structures never false-share a page at the allocator level
//! (CVM allocates shared data the same way). [`SharedLayout`] is a bump
//! allocator that records every segment for later inspection.

use crate::page::{pages_for, PAGE_SIZE};
use std::fmt;

/// One named, page-aligned allocation in the shared address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    name: String,
    base: u64,
    len: u64,
}

impl Segment {
    /// The segment's name (for reports and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First byte address.
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes as requested (the allocator reserves whole pages).
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment is zero-length.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of byte `offset` within the segment.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= len` (debug builds only for speed).
    #[inline]
    pub fn addr(&self, offset: u64) -> u64 {
        debug_assert!(offset < self.len.max(1), "offset {offset} beyond segment");
        self.base + offset
    }

    /// Number of pages the segment occupies.
    pub const fn pages(&self) -> u64 {
        pages_for(self.len)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {:#x} ({} B, {} pages)",
            self.name,
            self.base,
            self.len,
            self.pages()
        )
    }
}

/// A page-aligned bump allocator over the shared address space.
///
/// ```
/// use acorr_mem::SharedLayout;
/// let mut layout = SharedLayout::new();
/// let grid = layout.alloc("grid", 10_000);
/// let work = layout.alloc("work", 100);
/// assert_eq!(grid.base() % 4096, 0);
/// assert_eq!(work.base(), 3 * 4096); // grid took 3 pages
/// assert_eq!(layout.total_pages(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedLayout {
    next: u64,
    segments: Vec<Segment>,
}

impl SharedLayout {
    /// Creates an empty layout starting at address 0.
    pub fn new() -> Self {
        SharedLayout::default()
    }

    /// Allocates `bytes` bytes, page-aligned, under `name`.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> Segment {
        let seg = Segment {
            name: name.to_owned(),
            base: self.next,
            len: bytes,
        };
        self.next += pages_for(bytes) * PAGE_SIZE as u64;
        self.segments.push(seg.clone());
        seg
    }

    /// Total pages reserved so far.
    pub fn total_pages(&self) -> u64 {
        self.next / PAGE_SIZE as u64
    }

    /// Total bytes reserved (whole pages).
    pub fn total_bytes(&self) -> u64 {
        self.next
    }

    /// The segments allocated so far, in allocation order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }
}

impl fmt::Display for SharedLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "shared layout: {} pages", self.total_pages())?;
        for seg in &self.segments {
            writeln!(f, "  {seg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let mut l = SharedLayout::new();
        let a = l.alloc("a", 1);
        let b = l.alloc("b", 4096);
        let c = l.alloc("c", 4097);
        assert_eq!(a.base(), 0);
        assert_eq!(b.base(), 4096);
        assert_eq!(c.base(), 8192);
        assert_eq!(l.total_pages(), 1 + 1 + 2);
        assert_eq!(l.total_bytes(), 4 * 4096);
    }

    #[test]
    fn zero_length_segment_takes_no_pages() {
        let mut l = SharedLayout::new();
        let z = l.alloc("z", 0);
        let a = l.alloc("a", 8);
        assert!(z.is_empty());
        assert_eq!(z.pages(), 0);
        assert_eq!(a.base(), 0);
    }

    #[test]
    fn segment_addressing() {
        let mut l = SharedLayout::new();
        let _pad = l.alloc("pad", 4096);
        let seg = l.alloc("data", 100);
        assert_eq!(seg.addr(0), 4096);
        assert_eq!(seg.addr(99), 4195);
        assert_eq!(seg.len(), 100);
        assert_eq!(seg.name(), "data");
    }

    #[test]
    fn segments_are_recorded() {
        let mut l = SharedLayout::new();
        l.alloc("x", 10);
        l.alloc("y", 20);
        let names: Vec<&str> = l.segments().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn display_summarizes() {
        let mut l = SharedLayout::new();
        l.alloc("grid", 10_000);
        let txt = l.to_string();
        assert!(txt.contains("3 pages"));
        assert!(txt.contains("grid"));
    }
}
