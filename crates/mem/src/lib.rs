//! # acorr-mem — memory substrate
//!
//! The paper's mechanism lives entirely at page granularity: CVM traps
//! accesses with virtual-memory protections and reasons about which 4 KiB
//! pages each thread touches. This crate provides those building blocks,
//! independent of any protocol:
//!
//! * [`page`] — page size/ids and address arithmetic, including splitting a
//!   byte range into per-page subranges.
//! * [`prot`] — protection states and access kinds, with the
//!   permission-check predicate that classifies faults.
//! * [`bitset`] — fixed-width bitsets; one per thread serves as the paper's
//!   *access bitmap*.
//! * [`ranges`] — merged dirty-range sets within a page, the representation
//!   behind multi-writer *diffs*: the byte-wise [`RangeSet`] reference and
//!   the word-chunked [`DirtyMask`] hot path, byte-identical by
//!   construction.
//! * [`arena`] — a bump arena for per-interval protocol records, reset once
//!   per barrier interval.
//! * [`layout`] — a page-aligned bump allocator laying out an application's
//!   shared segments.
//! * [`access`] — the [`AccessMatrix`]: per-thread page-access bitmaps, the
//!   direct output of a tracking phase and the input to correlation
//!   analysis.
//! * [`vclock`] — vector clocks and a happens-before race detector
//!   ([`HbRaceDetector`]) over the same page accesses.
//! * [`visible`] — the protocol-independent program-visible memory model
//!   ([`VisibleImage`]) behind differential MW-vs-SW checking.
//!
//! ```
//! use acorr_mem::{AccessMatrix, PageId, PAGE_SIZE};
//! let mut m = AccessMatrix::new(2, 4);
//! m.record(0, PageId(1));
//! m.record(1, PageId(1));
//! assert_eq!(m.shared_pages(0, 1), 1);
//! assert_eq!(PAGE_SIZE, 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod arena;
pub mod bitset;
pub mod layout;
pub mod page;
pub mod prot;
pub mod ranges;
pub mod vclock;
pub mod visible;

pub use access::AccessMatrix;
pub use arena::{Arena, ArenaRange};
pub use bitset::FixedBitset;
pub use layout::{Segment, SharedLayout};
pub use page::{page_of, pages_for, span_pages, PageId, PageSpan, PageTable, PAGE_SIZE};
pub use prot::{AccessKind, Protection};
pub use ranges::{DirtyMask, RangeSet};
pub use vclock::{HbRaceDetector, Race, RaceKind, RaceReport, VectorClock};
pub use visible::{write_token, VisibleImage};
