//! Program-visible memory image for differential protocol checking.
//!
//! The multi-writer and single-writer protocols move bytes very differently
//! (twins/diffs vs whole-page ownership), but for a *correct* engine the
//! memory the program observes must be the same. [`VisibleImage`] is the
//! protocol-independent model of that memory: every completed application
//! write deposits a deterministic [`write_token`] derived from the writing
//! thread and its per-thread write ordinal — a pure function of the
//! program, independent of schedule and protocol.
//!
//! Bytes whose final value legitimately depends on ordering are masked out
//! as **sensitive** rather than checked:
//!
//! * bytes written under a lock — the lock admits any grant order, so the
//!   last writer varies by schedule;
//! * bytes written by more than one thread within one barrier interval —
//!   release consistency leaves those unordered (the oracle marks them
//!   *hazy*).
//!
//! Both conditions are program-static (which writes a script performs, and
//! under which locks, does not depend on the schedule), so the sensitive
//! set — and therefore the set of checked byte positions — is identical
//! across schedules and protocols. The per-barrier FNV digest over the
//! non-sensitive bytes is then a schedule- and protocol-invariant signature
//! of program-visible memory: any divergence between two runs of the same
//! program is an engine bug.
//!
//! The sensitive mask is *sticky* across barriers: once a byte's value is
//! order-dependent it stays unreliable for the rest of the run.

use crate::page::{PageSpan, PAGE_SIZE};

/// The deterministic byte a thread's `seq`-th write deposits.
///
/// Nonzero, so written bytes are always distinguishable from untouched
/// (zero) memory; a pure function of `(thread, seq)` so the value stream is
/// independent of global scheduling order. Shared by [`VisibleImage`] and
/// the DSM coherence oracle — the differential check compares the two.
pub fn write_token(thread: usize, seq: u64) -> u8 {
    let mut h = (thread as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    h ^= h >> 31;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 29;
    (h % 251) as u8 + 1
}

/// Per-page state: token data, this interval's writer map, sticky
/// sensitive mask.
struct PageImage {
    data: Box<[u8; PAGE_SIZE]>,
    /// Writer of each byte *this barrier interval*: 0 = none,
    /// `t + 1` = thread `t`, `u16::MAX` = more than one thread.
    writer: Box<[u16; PAGE_SIZE]>,
    /// Sticky order-sensitivity mask, one bit per byte.
    sensitive: Box<[u64; PAGE_SIZE / 64]>,
}

impl PageImage {
    fn new() -> Self {
        PageImage {
            data: Box::new([0; PAGE_SIZE]),
            writer: Box::new([0; PAGE_SIZE]),
            sensitive: Box::new([0; PAGE_SIZE / 64]),
        }
    }
}

impl std::fmt::Debug for PageImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageImage").finish_non_exhaustive()
    }
}

/// The protocol-independent model of program-visible shared memory.
#[derive(Debug)]
pub struct VisibleImage {
    pages: Vec<Option<PageImage>>,
    /// Per-thread count of nonempty writes performed (the token ordinal).
    seq: Vec<u64>,
    digests: Vec<u64>,
    sensitive_bytes: u64,
}

impl VisibleImage {
    /// Creates an image for `threads` threads over `pages` pages.
    pub fn new(threads: usize, pages: usize) -> Self {
        VisibleImage {
            pages: (0..pages).map(|_| None).collect(),
            seq: vec![0; threads],
            digests: Vec::new(),
            sensitive_bytes: 0,
        }
    }

    /// Number of pages modeled.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The modeled bytes of `page`, if any write has touched it.
    pub fn page_data(&self, page: usize) -> Option<&[u8; PAGE_SIZE]> {
        self.pages[page].as_ref().map(|p| &*p.data)
    }

    /// Whether `byte` of `page` is order-sensitive (masked from checking).
    pub fn is_sensitive(&self, page: usize, byte: usize) -> bool {
        match &self.pages[page] {
            Some(p) => p.sensitive[byte / 64] >> (byte % 64) & 1 == 1,
            None => false,
        }
    }

    /// Total bytes currently masked as sensitive.
    pub fn sensitive_bytes(&self) -> u64 {
        self.sensitive_bytes
    }

    /// Digest stream so far, one entry per completed barrier.
    pub fn digests(&self) -> &[u64] {
        &self.digests
    }

    /// FNV-1a hash of the whole digest stream: a compact key for the
    /// program-visible state trajectory of a run. Model checking uses this
    /// (combined with the run's decision-point structure) to prune
    /// fault × schedule branches that reach an already-visited state.
    pub fn state_key(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &d in &self.digests {
            for b in d.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// A thread completed a write of `span`. Zero-length spans consume no
    /// token (mirroring the coherence oracle). `under_lock` marks the bytes
    /// order-sensitive.
    pub fn on_write(&mut self, thread: usize, span: PageSpan, under_lock: bool) {
        if span.is_empty() {
            return;
        }
        let token = write_token(thread, self.seq[thread]);
        self.seq[thread] += 1;
        let slot = &mut self.pages[span.page.idx()];
        let img = slot.get_or_insert_with(PageImage::new);
        let tag = thread as u16 + 1;
        for b in span.start as usize..span.end as usize {
            img.data[b] = token;
            let mut sensitive = under_lock;
            if img.writer[b] == 0 {
                img.writer[b] = tag;
            } else if img.writer[b] != tag {
                img.writer[b] = u16::MAX;
                sensitive = true;
            }
            if sensitive {
                let mask = 1u64 << (b % 64);
                if img.sensitive[b / 64] & mask == 0 {
                    img.sensitive[b / 64] |= mask;
                    self.sensitive_bytes += 1;
                }
            }
        }
    }

    /// A barrier released: append the FNV-1a digest of all non-sensitive
    /// bytes to the digest stream and start a fresh writer interval.
    pub fn on_barrier(&mut self) {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for slot in &mut self.pages {
            let Some(img) = slot else { continue };
            for (w, &mask) in img.sensitive.iter().enumerate() {
                for bit in 0..64 {
                    if mask >> bit & 1 == 0 {
                        h ^= img.data[w * 64 + bit] as u64;
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                }
            }
            img.writer.fill(0);
        }
        self.digests.push(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;

    fn span(page: u32, start: u16, end: u16) -> PageSpan {
        PageSpan {
            page: PageId(page),
            start,
            end,
        }
    }

    #[test]
    fn tokens_are_nonzero_and_thread_seq_pure() {
        for t in 0..16 {
            for s in 0..64 {
                assert_ne!(write_token(t, s), 0);
            }
        }
        assert_eq!(write_token(3, 7), write_token(3, 7));
        assert_ne!(write_token(0, 0), write_token(1, 0));
    }

    #[test]
    fn single_writer_bytes_are_checked_and_digest_is_order_free() {
        // Two threads write disjoint bytes; interleaving order must not
        // matter to the digest stream.
        let run = |flip: bool| {
            let mut v = VisibleImage::new(2, 1);
            let (a, b) = (span(0, 0, 8), span(0, 8, 16));
            if flip {
                v.on_write(1, b, false);
                v.on_write(0, a, false);
            } else {
                v.on_write(0, a, false);
                v.on_write(1, b, false);
            }
            v.on_barrier();
            v.digests().to_vec()
        };
        assert_eq!(run(false), run(true));
        let mut v = VisibleImage::new(2, 1);
        v.on_write(0, span(0, 0, 8), false);
        assert_eq!(v.sensitive_bytes(), 0);
        assert!(!v.is_sensitive(0, 0));
        assert_eq!(v.page_data(0).unwrap()[0], write_token(0, 0));
    }

    #[test]
    fn overlapping_writers_become_sensitive_and_sticky() {
        let mut v = VisibleImage::new(2, 1);
        v.on_write(0, span(0, 0, 8), false);
        v.on_write(1, span(0, 4, 12), false);
        assert_eq!(v.sensitive_bytes(), 4);
        assert!(v.is_sensitive(0, 4) && !v.is_sensitive(0, 2));
        v.on_barrier();
        // Next interval: single writer again, but the mask is sticky.
        v.on_write(0, span(0, 4, 8), false);
        assert!(v.is_sensitive(0, 4));
        // Digests ignore sensitive bytes, so writer-order flips there do
        // not change the stream.
        let mut w = VisibleImage::new(2, 1);
        w.on_write(1, span(0, 4, 12), false);
        w.on_write(0, span(0, 0, 8), false);
        w.on_barrier();
        assert_eq!(v.digests()[0], w.digests()[0]);
    }

    #[test]
    fn under_lock_writes_are_sensitive() {
        let mut v = VisibleImage::new(2, 1);
        v.on_write(0, span(0, 0, 4), true);
        assert_eq!(v.sensitive_bytes(), 4);
    }

    #[test]
    fn empty_spans_consume_no_token() {
        let mut v = VisibleImage::new(1, 1);
        v.on_write(0, span(0, 5, 5), false);
        v.on_write(0, span(0, 0, 1), false);
        assert_eq!(v.page_data(0).unwrap()[0], write_token(0, 0));
    }

    #[test]
    fn writer_interval_resets_at_barrier() {
        let mut v = VisibleImage::new(2, 1);
        v.on_write(0, span(0, 0, 8), false);
        v.on_barrier();
        v.on_write(1, span(0, 0, 8), false);
        // Different threads, different intervals: barrier-ordered, not
        // sensitive.
        assert_eq!(v.sensitive_bytes(), 0);
        assert_eq!(v.page_data(0).unwrap()[0], write_token(1, 0));
    }

    #[test]
    fn state_key_tracks_the_digest_stream() {
        let mut a = VisibleImage::new(1, 1);
        let empty = a.state_key();
        a.on_write(0, span(0, 0, 8), false);
        a.on_barrier();
        let one = a.state_key();
        assert_ne!(empty, one);
        a.on_barrier();
        assert_ne!(one, a.state_key());
        // Same write history, same key.
        let mut b = VisibleImage::new(1, 1);
        b.on_write(0, span(0, 0, 8), false);
        b.on_barrier();
        assert_eq!(one, b.state_key());
    }

    #[test]
    fn digest_differs_when_checked_bytes_differ() {
        let mut a = VisibleImage::new(1, 1);
        a.on_write(0, span(0, 0, 8), false);
        a.on_barrier();
        let mut b = VisibleImage::new(1, 1);
        b.on_write(0, span(0, 0, 9), false);
        b.on_barrier();
        assert_ne!(a.digests()[0], b.digests()[0]);
    }
}
