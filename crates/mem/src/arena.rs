//! A bump arena for per-interval protocol records.
//!
//! The engine produces short-lived record lists at a high rate: the pages a
//! node twinned this interval, the pages written under a lock, the diff
//! records of a fetch plan. Allocating a fresh `Vec` per message (the old
//! `std::mem::take` pattern) made every barrier interval and every remote
//! miss pay malloc/free round trips. [`Arena`] replaces that churn: records
//! are bump-copied into one growing buffer, handed back as index ranges,
//! and the whole buffer is [`reset`](Arena::reset) — a length store, no
//! deallocation — once per barrier interval.
//!
//! Ranges are plain index pairs rather than borrowed slices so the owner
//! (the engine) can keep mutating itself between allocation and use; the
//! arena is append-only between resets, so a range handed out stays valid
//! until the next reset.

/// An index range into an [`Arena`], returned by the allocation methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaRange {
    start: usize,
    end: usize,
}

impl ArenaRange {
    /// Number of items in the range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the range holds no items.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The absolute arena indices of the range, for item-at-a-time access
    /// via [`Arena::at`] while the arena's owner is otherwise borrowed.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// A bump arena over `Copy` records, reset per barrier interval.
///
/// ```
/// use acorr_mem::Arena;
/// let mut arena: Arena<u32> = Arena::new();
/// let r = arena.alloc_from_slice(&[7, 8, 9]);
/// assert_eq!(arena.get(r), &[7, 8, 9]);
/// assert_eq!(arena.at(r.indices().start), 7);
/// arena.reset(); // keeps capacity, invalidates old ranges
/// assert_eq!(arena.len(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Arena<T> {
    items: Vec<T>,
}

impl<T: Copy> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena { items: Vec::new() }
    }

    /// Items currently allocated.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Bump-copies `items` into the arena.
    pub fn alloc_from_slice(&mut self, items: &[T]) -> ArenaRange {
        let start = self.items.len();
        self.items.extend_from_slice(items);
        ArenaRange {
            start,
            end: self.items.len(),
        }
    }

    /// Bump-copies `src`'s contents into the arena and clears `src` in
    /// place — the source keeps its capacity for the next interval, unlike
    /// `std::mem::take`, which leaves an unallocated `Vec` behind.
    pub fn take_from(&mut self, src: &mut Vec<T>) -> ArenaRange {
        let range = self.alloc_from_slice(src);
        src.clear();
        range
    }

    /// The items of `range` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `range` predates the last [`reset`](Arena::reset).
    pub fn get(&self, range: ArenaRange) -> &[T] {
        &self.items[range.start..range.end]
    }

    /// The item at absolute index `i` (see [`ArenaRange::indices`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` predates the last [`reset`](Arena::reset).
    pub fn at(&self, i: usize) -> T {
        self.items[i]
    }

    /// Drops every allocation but keeps the backing capacity — the
    /// once-per-interval reset.
    pub fn reset(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_and_at() {
        let mut a: Arena<u16> = Arena::new();
        let r1 = a.alloc_from_slice(&[1, 2, 3]);
        let r2 = a.alloc_from_slice(&[]);
        let r3 = a.alloc_from_slice(&[9]);
        assert_eq!(a.get(r1), &[1, 2, 3]);
        assert!(r2.is_empty() && a.get(r2).is_empty());
        assert_eq!(a.get(r3), &[9]);
        assert_eq!(r1.len(), 3);
        assert_eq!(a.len(), 4);
        assert_eq!(r3.indices().map(|i| a.at(i)).collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn take_from_clears_source_but_keeps_its_capacity() {
        let mut a: Arena<u32> = Arena::new();
        let mut src = Vec::with_capacity(16);
        src.extend([5, 6, 7]);
        let cap = src.capacity();
        let r = a.take_from(&mut src);
        assert_eq!(a.get(r), &[5, 6, 7]);
        assert!(src.is_empty());
        assert_eq!(src.capacity(), cap, "source keeps its buffer");
    }

    #[test]
    fn reset_keeps_capacity_and_restarts_indices() {
        let mut a: Arena<u8> = Arena::new();
        a.alloc_from_slice(&[1; 100]);
        let cap = a.items.capacity();
        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.items.capacity(), cap);
        let r = a.alloc_from_slice(&[2, 3]);
        assert_eq!(r.indices(), 0..2);
        assert_eq!(a.get(r), &[2, 3]);
    }
}
