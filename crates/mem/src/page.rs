//! Pages and address arithmetic.
//!
//! All consistency and tracking state is kept per 4 KiB page, matching the
//! x86 page size of the paper's testbed. Applications address shared memory
//! with flat byte addresses; [`span_pages`] splits a byte range into the
//! per-page subranges the engine needs for fault checks and dirty-range
//! recording.

use std::fmt;

/// Size of a virtual-memory page, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifies one page of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u32);

impl PageId {
    /// The page's index, for use with slices.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }

    /// The first byte address of this page.
    pub const fn base_addr(self) -> u64 {
        self.0 as u64 * PAGE_SIZE as u64
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The page containing byte address `addr`.
pub const fn page_of(addr: u64) -> PageId {
    PageId((addr / PAGE_SIZE as u64) as u32)
}

/// One page's slice of a byte range: the page plus the in-page byte range
/// `[start, end)` that the access covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSpan {
    /// The page touched.
    pub page: PageId,
    /// First byte within the page (0-4095).
    pub start: u16,
    /// One past the last byte within the page (1-4096).
    pub end: u16,
}

impl PageSpan {
    /// Number of bytes of the access falling on this page.
    pub const fn len(&self) -> u16 {
        self.end - self.start
    }

    /// Whether the span is empty (never produced by [`span_pages`]).
    pub const fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits the byte range `[addr, addr + len)` into per-page spans, in
/// ascending page order. A zero-length range yields nothing.
///
/// ```
/// use acorr_mem::{span_pages, PAGE_SIZE};
/// let spans: Vec<_> = span_pages(4090, 10).collect();
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[0].page.idx(), 0);
/// assert_eq!((spans[0].start, spans[0].end), (4090, 4096));
/// assert_eq!(spans[1].page.idx(), 1);
/// assert_eq!((spans[1].start, spans[1].end), (0, 4));
/// assert_eq!(PAGE_SIZE, 4096);
/// ```
pub fn span_pages(addr: u64, len: u64) -> impl Iterator<Item = PageSpan> {
    let end = addr + len;
    let mut cur = addr;
    std::iter::from_fn(move || {
        if cur >= end {
            return None;
        }
        let page = page_of(cur);
        let page_end = page.base_addr() + PAGE_SIZE as u64;
        let stop = end.min(page_end);
        let span = PageSpan {
            page,
            start: (cur - page.base_addr()) as u16,
            end: (stop - page.base_addr()) as u16,
        };
        cur = stop;
        Some(span)
    })
}

/// Number of pages needed to hold `bytes` bytes.
pub const fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_of_boundaries() {
        assert_eq!(page_of(0), PageId(0));
        assert_eq!(page_of(4095), PageId(0));
        assert_eq!(page_of(4096), PageId(1));
        assert_eq!(PageId(3).base_addr(), 3 * 4096);
    }

    #[test]
    fn span_within_one_page() {
        let spans: Vec<_> = span_pages(100, 50).collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].page, PageId(0));
        assert_eq!(spans[0].start, 100);
        assert_eq!(spans[0].end, 150);
        assert_eq!(spans[0].len(), 50);
        assert!(!spans[0].is_empty());
    }

    #[test]
    fn span_exact_page() {
        let spans: Vec<_> = span_pages(4096, 4096).collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].page, PageId(1));
        assert_eq!((spans[0].start, spans[0].end), (0, 4096));
    }

    #[test]
    fn span_many_pages() {
        let spans: Vec<_> = span_pages(10, 3 * 4096).collect();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].page, PageId(0));
        assert_eq!(spans[3].page, PageId(3));
        let total: u64 = spans.iter().map(|s| s.len() as u64).sum();
        assert_eq!(total, 3 * 4096);
        // Spans are contiguous across page boundaries.
        assert_eq!(spans[0].end, 4096);
        assert_eq!(spans[1].start, 0);
    }

    #[test]
    fn empty_span_yields_nothing() {
        assert_eq!(span_pages(500, 0).count(), 0);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(pages_for(16 * 1024 * 1024), 4096);
    }
}
