//! Pages, address arithmetic, and the SoA page table.
//!
//! All consistency and tracking state is kept per 4 KiB page, matching the
//! x86 page size of the paper's testbed. Applications address shared memory
//! with flat byte addresses; [`span_pages`] splits a byte range into the
//! per-page subranges the engine needs for fault checks and dirty-range
//! recording. [`PageTable`] holds one node's per-page protocol state in
//! struct-of-arrays layout: the boolean flags live in
//! [`FixedBitset`](crate::FixedBitset) masks (so whole-table sweeps are
//! word fills) and the dirty state in a dense
//! [`DirtyMask`](crate::DirtyMask) array.

use crate::bitset::FixedBitset;
use crate::prot::Protection;
use crate::ranges::DirtyMask;
use std::fmt;

/// Size of a virtual-memory page, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Identifies one page of the shared address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u32);

impl PageId {
    /// The page's index, for use with slices.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }

    /// The first byte address of this page.
    pub const fn base_addr(self) -> u64 {
        self.0 as u64 * PAGE_SIZE as u64
    }

    /// The page id widened to `u64`, the width observability artifacts
    /// (JSONL members, trace args, analysis CSV columns) carry page ids at.
    pub const fn as_u64(self) -> u64 {
        self.0 as u64
    }

    /// Rebuilds a page id from its artifact-side `u64` encoding, when it
    /// fits.
    pub fn from_u64(raw: u64) -> Option<PageId> {
        u32::try_from(raw).ok().map(PageId)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The page containing byte address `addr`.
pub const fn page_of(addr: u64) -> PageId {
    PageId((addr / PAGE_SIZE as u64) as u32)
}

/// One page's slice of a byte range: the page plus the in-page byte range
/// `[start, end)` that the access covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSpan {
    /// The page touched.
    pub page: PageId,
    /// First byte within the page (0-4095).
    pub start: u16,
    /// One past the last byte within the page (1-4096).
    pub end: u16,
}

impl PageSpan {
    /// Number of bytes of the access falling on this page.
    pub const fn len(&self) -> u16 {
        self.end - self.start
    }

    /// Whether the span is empty (never produced by [`span_pages`]).
    pub const fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits the byte range `[addr, addr + len)` into per-page spans, in
/// ascending page order. A zero-length range yields nothing.
///
/// ```
/// use acorr_mem::{span_pages, PAGE_SIZE};
/// let spans: Vec<_> = span_pages(4090, 10).collect();
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[0].page.idx(), 0);
/// assert_eq!((spans[0].start, spans[0].end), (4090, 4096));
/// assert_eq!(spans[1].page.idx(), 1);
/// assert_eq!((spans[1].start, spans[1].end), (0, 4));
/// assert_eq!(PAGE_SIZE, 4096);
/// ```
pub fn span_pages(addr: u64, len: u64) -> impl Iterator<Item = PageSpan> {
    let end = addr + len;
    let mut cur = addr;
    std::iter::from_fn(move || {
        if cur >= end {
            return None;
        }
        let page = page_of(cur);
        let page_end = page.base_addr() + PAGE_SIZE as u64;
        let stop = end.min(page_end);
        let span = PageSpan {
            page,
            start: (cur - page.base_addr()) as u16,
            end: (stop - page.base_addr()) as u16,
        };
        cur = stop;
        Some(span)
    })
}

/// Number of pages needed to hold `bytes` bytes.
pub const fn pages_for(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE as u64)
}

/// One node's per-page protocol state, struct-of-arrays.
///
/// The previous array-of-structs layout paid a pointer-chasing `Vec` of
/// per-page records; here each field is its own dense array, and the four
/// boolean flags (`valid`, `has_copy`, `twin`, `corr_armed`) are packed
/// bitsets — arming every correlation bit, the per-thread-switch sweep of
/// active tracking, is a `num_pages / 64` word fill.
///
/// Field semantics (per page):
/// * **valid** — the local copy reflects the latest version it applied and
///   no newer version exists that it is missing.
/// * **has_copy** — the node holds *some* image (possibly stale); governs
///   whether a miss can be patched with diffs or needs the full page.
/// * **prot** — current virtual-memory protection.
/// * **applied_version** — the page version the local copy reflects.
/// * **twin** — a twin exists: the page has been written this interval.
/// * **dirty** — bytes written this interval (the future diff).
/// * **corr_armed** — correlation bit armed by active tracking; the next
///   access by the pinned thread takes a correlation fault.
#[derive(Debug, Clone)]
pub struct PageTable {
    valid: FixedBitset,
    has_copy: FixedBitset,
    twin: FixedBitset,
    corr_armed: FixedBitset,
    prot: Vec<Protection>,
    applied_version: Vec<u64>,
    dirty: Vec<DirtyMask>,
}

impl PageTable {
    /// Creates a table of `num_pages` pages: all invalid, or (for the
    /// initial owner node) all valid read-protected copies at version 0.
    pub fn new(num_pages: usize, is_initial_owner: bool) -> Self {
        let mut table = PageTable {
            valid: FixedBitset::new(num_pages),
            has_copy: FixedBitset::new(num_pages),
            twin: FixedBitset::new(num_pages),
            corr_armed: FixedBitset::new(num_pages),
            prot: vec![Protection::None; num_pages],
            applied_version: vec![0; num_pages],
            dirty: vec![DirtyMask::new(); num_pages],
        };
        if is_initial_owner {
            table.valid.insert_all();
            table.has_copy.insert_all();
            table.prot.fill(Protection::Read);
        }
        table
    }

    /// Number of pages tracked.
    pub fn len(&self) -> usize {
        self.prot.len()
    }

    /// True for a zero-page table.
    pub fn is_empty(&self) -> bool {
        self.prot.is_empty()
    }

    /// Whether page `p`'s local copy is current.
    pub fn valid(&self, p: usize) -> bool {
        self.valid.contains(p)
    }

    /// Sets or clears page `p`'s validity.
    pub fn set_valid(&mut self, p: usize, v: bool) {
        if v {
            self.valid.insert(p);
        } else {
            self.valid.remove(p);
        }
    }

    /// Number of valid pages (word-parallel popcount).
    pub fn count_valid(&self) -> usize {
        self.valid.count()
    }

    /// Whether the node holds any (possibly stale) image of page `p`.
    pub fn has_copy(&self, p: usize) -> bool {
        self.has_copy.contains(p)
    }

    /// Records that the node now holds an image of page `p`.
    pub fn set_has_copy(&mut self, p: usize, v: bool) {
        if v {
            self.has_copy.insert(p);
        } else {
            self.has_copy.remove(p);
        }
    }

    /// Whether page `p` has a twin this interval.
    pub fn twin(&self, p: usize) -> bool {
        self.twin.contains(p)
    }

    /// Sets or clears page `p`'s twin flag.
    pub fn set_twin(&mut self, p: usize, v: bool) {
        if v {
            self.twin.insert(p);
        } else {
            self.twin.remove(p);
        }
    }

    /// Page `p`'s current protection.
    pub fn prot(&self, p: usize) -> Protection {
        self.prot[p]
    }

    /// Sets page `p`'s protection.
    pub fn set_prot(&mut self, p: usize, prot: Protection) {
        self.prot[p] = prot;
    }

    /// Number of pages at [`Protection::ReadWrite`].
    pub fn count_read_write(&self) -> usize {
        self.prot
            .iter()
            .filter(|&&p| p == Protection::ReadWrite)
            .count()
    }

    /// The version page `p`'s local copy reflects.
    pub fn applied_version(&self, p: usize) -> u64 {
        self.applied_version[p]
    }

    /// Records the version page `p`'s copy now reflects.
    pub fn set_applied_version(&mut self, p: usize, v: u64) {
        self.applied_version[p] = v;
    }

    /// Page `p`'s dirty mask.
    pub fn dirty(&self, p: usize) -> &DirtyMask {
        &self.dirty[p]
    }

    /// Mutable access to page `p`'s dirty mask.
    pub fn dirty_mut(&mut self, p: usize) -> &mut DirtyMask {
        &mut self.dirty[p]
    }

    /// Whether page `p`'s correlation bit is armed.
    pub fn corr_armed(&self, p: usize) -> bool {
        self.corr_armed.contains(p)
    }

    /// Clears page `p`'s correlation bit (the fault was taken).
    pub fn disarm(&mut self, p: usize) {
        self.corr_armed.remove(p);
    }

    /// Arms the correlation bit on every page (start of a tracking
    /// segment) — a word fill.
    pub fn arm_all(&mut self) {
        self.corr_armed.insert_all();
    }

    /// Clears every correlation bit (end of the tracking phase).
    pub fn disarm_all(&mut self) {
        self.corr_armed.clear();
    }

    /// Whether any correlation bit is armed.
    pub fn any_armed(&self) -> bool {
        !self.corr_armed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_of_boundaries() {
        assert_eq!(page_of(0), PageId(0));
        assert_eq!(page_of(4095), PageId(0));
        assert_eq!(page_of(4096), PageId(1));
        assert_eq!(PageId(3).base_addr(), 3 * 4096);
    }

    #[test]
    fn span_within_one_page() {
        let spans: Vec<_> = span_pages(100, 50).collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].page, PageId(0));
        assert_eq!(spans[0].start, 100);
        assert_eq!(spans[0].end, 150);
        assert_eq!(spans[0].len(), 50);
        assert!(!spans[0].is_empty());
    }

    #[test]
    fn span_exact_page() {
        let spans: Vec<_> = span_pages(4096, 4096).collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].page, PageId(1));
        assert_eq!((spans[0].start, spans[0].end), (0, 4096));
    }

    #[test]
    fn span_many_pages() {
        let spans: Vec<_> = span_pages(10, 3 * 4096).collect();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].page, PageId(0));
        assert_eq!(spans[3].page, PageId(3));
        let total: u64 = spans.iter().map(|s| s.len() as u64).sum();
        assert_eq!(total, 3 * 4096);
        // Spans are contiguous across page boundaries.
        assert_eq!(spans[0].end, 4096);
        assert_eq!(spans[1].start, 0);
    }

    #[test]
    fn empty_span_yields_nothing() {
        assert_eq!(span_pages(500, 0).count(), 0);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(pages_for(16 * 1024 * 1024), 4096);
    }

    #[test]
    fn page_table_initial_owner_state() {
        let t = PageTable::new(130, true);
        assert_eq!(t.len(), 130);
        assert!(!t.is_empty());
        assert_eq!(t.count_valid(), 130);
        assert!((0..130).all(|p| t.valid(p) && t.has_copy(p)));
        assert!((0..130).all(|p| t.prot(p) == Protection::Read));
        assert!((0..130).all(|p| !t.twin(p) && !t.corr_armed(p)));
        let u = PageTable::new(130, false);
        assert_eq!(u.count_valid(), 0);
        assert!((0..130).all(|p| !u.valid(p) && !u.has_copy(p)));
        assert!((0..130).all(|p| u.prot(p) == Protection::None));
    }

    #[test]
    fn page_table_flags_round_trip() {
        let mut t = PageTable::new(70, false);
        t.set_valid(69, true);
        t.set_has_copy(69, true);
        t.set_twin(69, true);
        t.set_prot(69, Protection::ReadWrite);
        t.set_applied_version(69, 7);
        t.dirty_mut(69).insert(100, 200);
        assert!(t.valid(69) && t.has_copy(69) && t.twin(69));
        assert_eq!(t.prot(69), Protection::ReadWrite);
        assert_eq!(t.applied_version(69), 7);
        assert_eq!(t.dirty(69).total_len(), 100);
        assert_eq!(t.count_valid(), 1);
        assert_eq!(t.count_read_write(), 1);
        t.set_valid(69, false);
        t.set_twin(69, false);
        assert!(!t.valid(69) && !t.twin(69));
    }

    #[test]
    fn page_table_arm_sweeps_are_word_fills() {
        let mut t = PageTable::new(129, false);
        assert!(!t.any_armed());
        t.arm_all();
        assert!(t.any_armed());
        assert!((0..129).all(|p| t.corr_armed(p)));
        t.disarm(64);
        assert!(!t.corr_armed(64) && t.corr_armed(65));
        t.disarm_all();
        assert!(!t.any_armed());
    }
}
