//! Fixed-width bitsets.
//!
//! The active tracking phase maintains a *per-thread access bitmap* with one
//! bit per shared page (§4.2 of the paper). [`FixedBitset`] is that bitmap:
//! a dense `u64`-word bitset sized at construction, with the intersection
//! count (`|pages(t1) ∩ pages(t2)|`) that defines thread correlation as a
//! first-class word-parallel operation.

use std::fmt;

/// A dense bitset with a fixed number of bits.
///
/// ```
/// use acorr_mem::FixedBitset;
/// let mut a = FixedBitset::new(200);
/// let mut b = FixedBitset::new(200);
/// a.insert(3);
/// a.insert(130);
/// b.insert(130);
/// assert_eq!(a.intersection_count(&b), 1);
/// assert_eq!(a.count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FixedBitset {
    len: usize,
    words: Vec<u64>,
}

impl FixedBitset {
    /// Creates an empty bitset able to hold `len` bits.
    pub fn new(len: usize) -> Self {
        FixedBitset {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of bits this set can hold.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i`. Returns whether the bit was newly set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        let word = &mut self.words[i / 64];
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Sets every bit — a word fill, so arming all pages of a node costs
    /// `len / 64` stores instead of `len` flag writes.
    pub fn insert_all(&mut self) {
        self.words.fill(!0);
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last = !0u64 >> (64 - rem);
            }
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of bits set in both `self` and `other` — the thread
    /// correlation of two access bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different lengths.
    pub fn intersection_count(&self, other: &FixedBitset) -> usize {
        assert_eq!(self.len, other.len, "bitset lengths differ");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Sets every bit that is set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different lengths.
    pub fn union_with(&mut self, other: &FixedBitset) {
        assert_eq!(self.len, other.len, "bitset lengths differ");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// True when every bit of `self` is also set in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the sets have different lengths.
    pub fn is_subset(&self, other: &FixedBitset) -> bool {
        assert_eq!(self.len, other.len, "bitset lengths differ");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

impl fmt::Display for FixedBitset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, bit) in self.iter_ones().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{bit}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for FixedBitset {
    /// Builds a set sized to the largest element (plus one).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut set = FixedBitset::new(len);
        for i in items {
            set.insert(i);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = FixedBitset::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert is not fresh");
        assert!(s.contains(0) && s.contains(129));
        assert!(!s.contains(64));
        s.remove(129);
        assert!(!s.contains(129));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = FixedBitset::new(10);
        assert!(s.is_empty());
        s.insert(5);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn insert_all_sets_exactly_len_bits() {
        for len in [0usize, 1, 63, 64, 65, 130, 256] {
            let mut s = FixedBitset::new(len);
            s.insert_all();
            assert_eq!(s.count(), len, "len={len}");
            assert_eq!(
                s.iter_ones().collect::<Vec<_>>(),
                (0..len).collect::<Vec<_>>()
            );
            s.clear();
            assert!(s.is_empty());
        }
    }

    #[test]
    fn intersection_counts_across_words() {
        let mut a = FixedBitset::new(256);
        let mut b = FixedBitset::new(256);
        for i in (0..256).step_by(3) {
            a.insert(i);
        }
        for i in (0..256).step_by(5) {
            b.insert(i);
        }
        // Multiples of 15 under 256: 0,15,...,255 → 18 values.
        assert_eq!(a.intersection_count(&b), (0..256).step_by(15).count());
    }

    #[test]
    fn union_and_subset() {
        let mut a = FixedBitset::new(70);
        let mut b = FixedBitset::new(70);
        a.insert(1);
        b.insert(69);
        let mut u = a.clone();
        u.union_with(&b);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert!(!u.is_subset(&a));
        assert_eq!(u.count(), 2);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut s = FixedBitset::new(200);
        for i in [199, 0, 63, 64, 65] {
            s.insert(i);
        }
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 65, 199]);
    }

    #[test]
    fn from_iterator_sizes_itself() {
        let s: FixedBitset = [3usize, 7, 100].into_iter().collect();
        assert_eq!(s.len(), 101);
        assert_eq!(s.count(), 3);
        assert!(s.contains(100));
    }

    #[test]
    fn display_lists_bits() {
        let s: FixedBitset = [1usize, 4].into_iter().collect();
        assert_eq!(s.to_string(), "{1,4}");
        assert_eq!(FixedBitset::new(8).to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        FixedBitset::new(8).contains(8);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        FixedBitset::new(8).intersection_count(&FixedBitset::new(9));
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Intersection count never exceeds either operand's count and is
        /// symmetric.
        #[test]
        fn intersection_bounded_and_symmetric(
            xs in proptest::collection::hash_set(0usize..512, 0..64),
            ys in proptest::collection::hash_set(0usize..512, 0..64),
        ) {
            let mut a = FixedBitset::new(512);
            let mut b = FixedBitset::new(512);
            for &x in &xs { a.insert(x); }
            for &y in &ys { b.insert(y); }
            let i = a.intersection_count(&b);
            prop_assert!(i <= a.count() && i <= b.count());
            prop_assert_eq!(i, b.intersection_count(&a));
            prop_assert_eq!(i, xs.intersection(&ys).count());
        }

        /// Union is the LUB: both operands are subsets and its count equals
        /// the set-union cardinality.
        #[test]
        fn union_is_least_upper_bound(
            xs in proptest::collection::hash_set(0usize..512, 0..64),
            ys in proptest::collection::hash_set(0usize..512, 0..64),
        ) {
            let mut a = FixedBitset::new(512);
            let mut b = FixedBitset::new(512);
            for &x in &xs { a.insert(x); }
            for &y in &ys { b.insert(y); }
            let mut u = a.clone();
            u.union_with(&b);
            prop_assert!(a.is_subset(&u));
            prop_assert!(b.is_subset(&u));
            prop_assert_eq!(u.count(), xs.union(&ys).count());
        }

        /// iter_ones round-trips the inserted set, in ascending order.
        #[test]
        fn iter_ones_round_trips(xs in proptest::collection::btree_set(0usize..300, 0..50)) {
            let mut s = FixedBitset::new(300);
            for &x in &xs { s.insert(x); }
            let got: Vec<usize> = s.iter_ones().collect();
            let want: Vec<usize> = xs.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
