//! Page protections and access kinds.
//!
//! CVM manipulates `mprotect` states to intercept the accesses it cares
//! about; the simulated page tables do the same symbolically. A page is
//! either inaccessible ([`Protection::None`]), readable, or fully mapped.
//! [`Protection::permits`] is the predicate the engine uses to decide
//! whether an access faults.

use std::fmt;

/// What an access attempts to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load from shared memory.
    Read,
    /// A store to shared memory.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// The protection state of one page on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Protection {
    /// No access permitted (invalid page, or read-protected for tracking).
    #[default]
    None,
    /// Reads permitted, writes trap (clean page, twin not yet created).
    Read,
    /// Reads and writes permitted (twinned/dirty page).
    ReadWrite,
}

impl Protection {
    /// Whether an access of `kind` proceeds without faulting.
    ///
    /// ```
    /// use acorr_mem::{AccessKind, Protection};
    /// assert!(Protection::Read.permits(AccessKind::Read));
    /// assert!(!Protection::Read.permits(AccessKind::Write));
    /// assert!(!Protection::None.permits(AccessKind::Read));
    /// assert!(Protection::ReadWrite.permits(AccessKind::Write));
    /// ```
    pub const fn permits(self, kind: AccessKind) -> bool {
        matches!(
            (self, kind),
            (Protection::ReadWrite, _) | (Protection::Read, AccessKind::Read)
        )
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protection::None => write!(f, "---"),
            Protection::Read => write!(f, "r--"),
            Protection::ReadWrite => write!(f, "rw-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_lattice() {
        assert!(!Protection::None.permits(AccessKind::Read));
        assert!(!Protection::None.permits(AccessKind::Write));
        assert!(Protection::Read.permits(AccessKind::Read));
        assert!(!Protection::Read.permits(AccessKind::Write));
        assert!(Protection::ReadWrite.permits(AccessKind::Read));
        assert!(Protection::ReadWrite.permits(AccessKind::Write));
    }

    #[test]
    fn ordering_matches_strength() {
        assert!(Protection::None < Protection::Read);
        assert!(Protection::Read < Protection::ReadWrite);
    }

    #[test]
    fn default_is_inaccessible() {
        assert_eq!(Protection::default(), Protection::None);
    }

    #[test]
    fn display_is_ls_style() {
        assert_eq!(Protection::None.to_string(), "---");
        assert_eq!(Protection::Read.to_string(), "r--");
        assert_eq!(Protection::ReadWrite.to_string(), "rw-");
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }
}
