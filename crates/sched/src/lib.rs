//! # acorr-sched — controllable-schedule exploration
//!
//! The DSM engine is deterministic, but several of its scheduling choices
//! are policy rather than causality: which ready thread a node dispatches,
//! which queued waiter receives a released lock. This crate turns those
//! decision points (exposed by `acorr-dsm`'s
//! [`SchedulePolicy`](acorr_dsm::SchedulePolicy) hook) into a searchable
//! schedule space:
//!
//! * [`schedule`] — [`Schedule`]: a decision prefix plus a tail policy
//!   (engine default or seeded random), with a replay-token grammar
//!   (`s1`, `s1:1.0.2`) so any failing schedule can be reproduced
//!   byte-for-byte from a printed string.
//! * [`driver`] — [`ScheduleDriver`]: the policy implementation that feeds
//!   a schedule's choices into the engine while recording every consulted
//!   decision point into a shared [`DecisionLog`].
//! * [`explore`] — [`Explorer`]: seeded random exploration, a
//!   preemption-bounded systematic mode (breadth-first enumeration of
//!   single-point deviations from observed runs), and a model-checking
//!   mode over the fault × schedule product space with state-hash
//!   pruning; plus [`shrink`] / [`shrink_pair`]: reducing a failing
//!   decision prefix (pair) to a minimal counterexample.
//!
//! The crate knows nothing about *what* failure means — callers run each
//! yielded schedule, decide pass/fail (races, divergences, oracle
//! violations), and hand observed decision logs back to the explorer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod explore;
pub mod schedule;

pub use driver::{DecisionLog, ScheduleDriver};
pub use explore::{shrink, shrink_pair, ExploreMode, Explorer};
pub use schedule::{Schedule, ScheduleParseError, Tail};
