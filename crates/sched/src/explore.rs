//! Schedule-space exploration strategies and counterexample shrinking.
//!
//! An [`Explorer`] yields [`Schedule`]s to try, always starting with the
//! default schedule (the baseline every check compares against). Two modes:
//!
//! * **Random** — schedule `k` draws every decision uniformly from a
//!   stream derived from `(seed, k)`; cheap, embarrassingly parallel
//!   coverage of deep interleavings.
//! * **Systematic** — preemption-bounded breadth-first enumeration in the
//!   spirit of CHESS-style bounded model checking: after observing a run's
//!   decision log, every single-point deviation (`log[..i]` plus one
//!   non-chosen alternative at `i`) within the preemption bound joins the
//!   frontier. The bound counts non-default choices, so depth grows one
//!   deviation at a time and small bounds already cover the
//!   "one untimely preemption" bugs that dominate practice.
//! * **Model-check** — systematic enumeration over the *fault × schedule*
//!   product space: fault decisions (partition, duplication, corruption,
//!   crash — one per barrier interval) deviate exactly like scheduling
//!   decisions, each dimension under its own bound, and every candidate
//!   pairs a deviation in one dimension with the observed run's concrete
//!   choices in the other. Runs are pruned by *state hash*: callers pass
//!   each run's state key (per-barrier `VisibleImage` digests folded with
//!   the decision structure) to [`Explorer::observe_model`], and a run
//!   landing in an already-visited state expands nothing — distinct fault
//!   placements that converge to the same memory state are explored once.
//!
//! Exploration is feedback-driven: callers run each schedule, then hand
//! the observed [`DecisionRecord`] log(s) back via [`Explorer::observe`]
//! (or [`Explorer::observe_model`]) so the systematic frontier can expand
//! (random mode ignores feedback).

use crate::schedule::Schedule;
use acorr_sim::DecisionRecord;
use std::collections::{HashSet, VecDeque};

/// How schedules are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Seeded random tails; schedule `k` uses a stream derived from
    /// `(seed, k)`.
    Random {
        /// Base seed for the per-schedule streams.
        seed: u64,
    },
    /// Preemption-bounded systematic enumeration: at most `preemptions`
    /// non-default choices per schedule.
    Systematic {
        /// Maximum non-default choices per schedule.
        preemptions: usize,
    },
    /// Systematic enumeration over the fault × schedule product space with
    /// state-hash pruning; feed runs back via [`Explorer::observe_model`].
    ModelCheck {
        /// Maximum non-default scheduling choices per schedule.
        preemptions: usize,
        /// Maximum non-default fault choices (injected fault actions) per
        /// schedule.
        faults: usize,
    },
}

/// splitmix64: derives one tail seed per (base, index) pair.
fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Trims trailing default (0) choices: a FIFO/no-fault tail reproduces
/// them, so `[1, 0]` and `[1]` name the same schedule.
fn trimmed(mut v: Vec<u32>) -> Vec<u32> {
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

/// Yields schedules to run, up to a budget.
#[derive(Debug)]
pub struct Explorer {
    mode: ExploreMode,
    budget: usize,
    emitted: usize,
    /// Systematic modes: (schedule, fault) prefix pairs waiting to run,
    /// oldest first. Plain systematic mode keeps the fault side empty.
    frontier: VecDeque<(Vec<u32>, Vec<u32>)>,
    /// Systematic modes: pairs ever enqueued (dedup).
    visited: HashSet<(Vec<u32>, Vec<u32>)>,
    /// Model-check mode: state keys of observed runs (pruning).
    states: HashSet<u64>,
    /// Model-check mode: observed runs whose state key was already known
    /// and which therefore expanded nothing.
    pruned: usize,
}

impl Explorer {
    /// Creates an explorer that will yield at most `budget` schedules,
    /// the first being the default schedule.
    pub fn new(mode: ExploreMode, budget: usize) -> Self {
        let mut visited = HashSet::new();
        visited.insert((Vec::new(), Vec::new()));
        Explorer {
            mode,
            budget,
            emitted: 0,
            frontier: VecDeque::from([(Vec::new(), Vec::new())]),
            visited,
            states: HashSet::new(),
            pruned: 0,
        }
    }

    /// Schedules yielded so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Model-check mode: distinct state keys observed so far.
    pub fn distinct_states(&self) -> usize {
        self.states.len()
    }

    /// Model-check mode: observed runs pruned because their state key was
    /// already known.
    pub fn pruned(&self) -> usize {
        self.pruned
    }

    /// The next schedule to run, or `None` when the budget is exhausted
    /// (or, in the systematic modes, the bounded space is).
    pub fn next_schedule(&mut self) -> Option<Schedule> {
        if self.emitted >= self.budget {
            return None;
        }
        let schedule = match self.mode {
            ExploreMode::Random { seed } => {
                if self.emitted == 0 {
                    Schedule::default_order()
                } else {
                    Schedule::random(derive_seed(seed, self.emitted as u64))
                }
            }
            ExploreMode::Systematic { .. } | ExploreMode::ModelCheck { .. } => {
                let (prefix, faults) = self.frontier.pop_front()?;
                Schedule::prescribed(prefix).with_faults(faults)
            }
        };
        self.emitted += 1;
        Some(schedule)
    }

    /// Feeds back the decision log one yielded schedule produced. In
    /// systematic mode this expands the frontier with every in-bound,
    /// not-yet-seen single-point deviation; random mode ignores it.
    /// Model-check mode expects [`Explorer::observe_model`] instead (this
    /// method then expands schedule deviations only, without pruning).
    pub fn observe(&mut self, log: &[DecisionRecord]) {
        match self.mode {
            ExploreMode::Systematic { preemptions } => self.expand(log, &[], preemptions, 0),
            ExploreMode::ModelCheck { preemptions, .. } => self.expand(log, &[], preemptions, 0),
            ExploreMode::Random { .. } => {}
        }
    }

    /// Feeds back both decision logs and the state key of one yielded
    /// schedule's run (model-check mode; other modes defer to
    /// [`Explorer::observe`] on the scheduling log).
    ///
    /// If `state_key` was already observed the run expands nothing — its
    /// deviations are reachable from the earlier run that produced the
    /// same state. Otherwise every in-bound single-point deviation joins
    /// the frontier: fault deviations first (paired with the run's
    /// concrete schedule choices), then schedule deviations (paired with
    /// the run's concrete fault choices).
    pub fn observe_model(
        &mut self,
        sched_log: &[DecisionRecord],
        fault_log: &[DecisionRecord],
        state_key: u64,
    ) {
        let ExploreMode::ModelCheck {
            preemptions,
            faults,
        } = self.mode
        else {
            self.observe(sched_log);
            return;
        };
        if !self.states.insert(state_key) {
            self.pruned += 1;
            return;
        }
        self.expand(sched_log, fault_log, preemptions, faults);
    }

    /// Expands the frontier with every in-bound, not-yet-seen single-point
    /// deviation of the observed (schedule, fault) decision-log pair. A
    /// deviation in one dimension pairs with the other dimension's
    /// concrete (trimmed `chosen` column) choices, so it replays the
    /// observed run up to the deviation point exactly.
    fn expand(
        &mut self,
        sched_log: &[DecisionRecord],
        fault_log: &[DecisionRecord],
        preemptions: usize,
        faults: usize,
    ) {
        let sched_col = trimmed(sched_log.iter().map(|r| r.chosen).collect());
        let fault_col = trimmed(fault_log.iter().map(|r| r.chosen).collect());
        // Fault deviations first: the fault dimension is coarser (one
        // decision per barrier interval), so its deviations sit earlier in
        // the breadth-first order.
        for (i, rec) in fault_log.iter().enumerate() {
            for alt in 0..rec.alternatives {
                if alt == rec.chosen {
                    continue;
                }
                let mut candidate: Vec<u32> = fault_log[..i].iter().map(|r| r.chosen).collect();
                candidate.push(alt);
                let candidate = trimmed(candidate);
                if candidate.iter().filter(|&&c| c != 0).count() > faults {
                    continue;
                }
                let pair = (sched_col.clone(), candidate);
                if self.visited.insert(pair.clone()) {
                    self.frontier.push_back(pair);
                }
            }
        }
        for (i, rec) in sched_log.iter().enumerate() {
            for alt in 0..rec.alternatives {
                if alt == rec.chosen {
                    continue;
                }
                let mut candidate: Vec<u32> = sched_log[..i].iter().map(|r| r.chosen).collect();
                candidate.push(alt);
                let candidate = trimmed(candidate);
                if candidate.iter().filter(|&&c| c != 0).count() > preemptions {
                    continue;
                }
                let pair = (candidate, fault_col.clone());
                if self.visited.insert(pair.clone()) {
                    self.frontier.push_back(pair);
                }
            }
        }
    }
}

/// Shrinks a failing decision prefix to a minimal counterexample.
///
/// `fails` must return `true` when running the given prefix (with a FIFO
/// tail) still reproduces the failure; it is called once per candidate.
/// The result is minimal in the sense that no single prescribed choice can
/// be reverted to the default and no trailing defaults remain — typically
/// a handful of choices pinpointing the racy window.
pub fn shrink<F: FnMut(&[u32]) -> bool>(prefix: &[u32], mut fails: F) -> Vec<u32> {
    let mut cur: Vec<u32> = prefix.to_vec();
    loop {
        let mut changed = false;
        // Drop trailing default choices (a FIFO tail reproduces them).
        while cur.last() == Some(&0) {
            cur.pop();
            changed = true;
        }
        // Try reverting each non-default choice to the default.
        for i in 0..cur.len() {
            if cur[i] == 0 {
                continue;
            }
            let saved = cur[i];
            cur[i] = 0;
            if fails(&cur) {
                changed = true;
            } else {
                cur[i] = saved;
            }
        }
        if !changed {
            return cur;
        }
    }
}

/// Shrinks a failing (schedule, fault) decision-prefix pair to a minimal
/// counterexample.
///
/// `fails` must return `true` when running the given pair (each with a
/// default tail) still reproduces the failure. Fault choices are reverted
/// first — a counterexample that survives with fewer injected faults is
/// strictly more alarming, so the fixpoint prefers shedding faults over
/// shedding preemptions — then schedule choices, iterating to a joint
/// fixpoint exactly like [`shrink`]. The result carries no trailing
/// defaults and no revertible choice in either dimension.
pub fn shrink_pair<F: FnMut(&[u32], &[u32]) -> bool>(
    sched: &[u32],
    faults: &[u32],
    mut fails: F,
) -> (Vec<u32>, Vec<u32>) {
    let mut s: Vec<u32> = sched.to_vec();
    let mut f: Vec<u32> = faults.to_vec();
    loop {
        let mut changed = false;
        while s.last() == Some(&0) {
            s.pop();
            changed = true;
        }
        while f.last() == Some(&0) {
            f.pop();
            changed = true;
        }
        for i in 0..f.len() {
            if f[i] == 0 {
                continue;
            }
            let saved = f[i];
            f[i] = 0;
            if fails(&s, &f) {
                changed = true;
            } else {
                f[i] = saved;
            }
        }
        for i in 0..s.len() {
            if s[i] == 0 {
                continue;
            }
            let saved = s[i];
            s[i] = 0;
            if fails(&s, &f) {
                changed = true;
            } else {
                s[i] = saved;
            }
        }
        if !changed {
            return (s, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Tail;

    fn rec(alternatives: u32, chosen: u32) -> DecisionRecord {
        DecisionRecord {
            alternatives,
            chosen,
        }
    }

    #[test]
    fn first_schedule_is_always_the_default() {
        for mode in [
            ExploreMode::Random { seed: 7 },
            ExploreMode::Systematic { preemptions: 2 },
        ] {
            let mut e = Explorer::new(mode, 10);
            assert!(e.next_schedule().unwrap().is_default());
        }
    }

    #[test]
    fn random_mode_yields_distinct_seeds_up_to_budget() {
        let mut e = Explorer::new(ExploreMode::Random { seed: 3 }, 4);
        let mut seeds = HashSet::new();
        e.next_schedule().unwrap();
        while let Some(s) = e.next_schedule() {
            match s.tail {
                Tail::Random { seed } => assert!(seeds.insert(seed)),
                Tail::Default => panic!("random mode yielded a default tail"),
            }
        }
        assert_eq!(seeds.len(), 3);
        assert_eq!(e.emitted(), 4);
        // Same base seed, same streams.
        let mut f = Explorer::new(ExploreMode::Random { seed: 3 }, 4);
        f.next_schedule();
        assert_eq!(
            f.next_schedule().unwrap().tail,
            Tail::Random {
                seed: derive_seed(3, 1)
            }
        );
    }

    #[test]
    fn systematic_mode_expands_single_point_deviations() {
        let mut e = Explorer::new(ExploreMode::Systematic { preemptions: 1 }, 100);
        assert_eq!(e.next_schedule().unwrap().prefix, Vec::<u32>::new());
        // Default run consulted two points with 2 and 3 alternatives.
        e.observe(&[rec(2, 0), rec(3, 0)]);
        let mut got: Vec<Vec<u32>> = Vec::new();
        while let Some(s) = e.next_schedule() {
            got.push(s.prefix.clone());
            // Every deviation reproduces the same two decision points.
            let log: Vec<DecisionRecord> = [2u32, 3]
                .iter()
                .enumerate()
                .map(|(i, &n)| rec(n, s.prefix.get(i).copied().unwrap_or(0).min(n - 1)))
                .collect();
            e.observe(&log);
        }
        // Bound 1: exactly the three single-deviation prefixes, each
        // re-observed without growing the frontier past the bound.
        got.sort();
        assert_eq!(got, vec![vec![0, 1], vec![0, 2], vec![1]]);
    }

    #[test]
    fn systematic_bound_two_reaches_paired_deviations() {
        let mut e = Explorer::new(ExploreMode::Systematic { preemptions: 2 }, 100);
        let mut seen = HashSet::new();
        while let Some(s) = e.next_schedule() {
            seen.insert(s.prefix.clone());
            let log: Vec<DecisionRecord> = (0..2)
                .map(|i| rec(2, s.prefix.get(i).copied().unwrap_or(0)))
                .collect();
            e.observe(&log);
        }
        assert!(seen.contains(&vec![1, 1]), "{seen:?}");
    }

    #[test]
    fn shrink_reverts_and_trims_to_minimal() {
        // Failure iff choice at index 2 is nonzero AND choice at 0 is
        // nonzero; everything else is noise.
        let fails =
            |p: &[u32]| p.first().is_some_and(|&c| c != 0) && p.get(2).is_some_and(|&c| c != 0);
        let min = shrink(&[2, 1, 3, 0, 4, 0], fails);
        assert_eq!(min, vec![2, 0, 3]);
        assert!(fails(&min));
        // Already-minimal input is a fixpoint.
        assert_eq!(shrink(&min, fails), min);
    }

    #[test]
    fn shrink_of_all_noise_is_empty() {
        let min = shrink(&[1, 2, 3], |_| true);
        assert_eq!(min, Vec::<u32>::new());
    }

    #[test]
    fn model_check_expands_fault_deviations_before_schedule_deviations() {
        let mut e = Explorer::new(
            ExploreMode::ModelCheck {
                preemptions: 1,
                faults: 1,
            },
            100,
        );
        let first = e.next_schedule().unwrap();
        assert!(first.is_default());
        // Default run: one scheduling point (2 alts), one fault interval
        // (3 alts), reaching fresh state 0xA.
        e.observe_model(&[rec(2, 0)], &[rec(3, 0)], 0xA);
        let second = e.next_schedule().unwrap();
        // Fault deviations enqueue first.
        assert_eq!(second.fault_prefix, vec![1]);
        assert_eq!(second.prefix, Vec::<u32>::new());
        let mut rest: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
        while let Some(s) = e.next_schedule() {
            rest.push((s.prefix.clone(), s.fault_prefix.clone()));
        }
        assert_eq!(
            rest,
            vec![(vec![], vec![2]), (vec![1], vec![])],
            "remaining frontier after the first fault deviation"
        );
    }

    #[test]
    fn model_check_prunes_already_seen_states() {
        let mut e = Explorer::new(
            ExploreMode::ModelCheck {
                preemptions: 1,
                faults: 1,
            },
            100,
        );
        e.next_schedule().unwrap();
        e.observe_model(&[rec(2, 0)], &[rec(2, 0)], 0xA);
        let n = {
            let mut count = 0;
            while e.next_schedule().is_some() {
                count += 1;
                // Every deviation converges back to the default state.
                e.observe_model(&[rec(2, 1)], &[rec(2, 1)], 0xA);
            }
            count
        };
        // Both single deviations ran, but neither expanded: same state.
        assert_eq!(n, 2);
        assert_eq!(e.distinct_states(), 1);
        assert_eq!(e.pruned(), 2);
    }

    #[test]
    fn model_check_pairs_deviations_with_observed_choices() {
        let mut e = Explorer::new(
            ExploreMode::ModelCheck {
                preemptions: 2,
                faults: 2,
            },
            100,
        );
        e.next_schedule().unwrap();
        // A non-default observed run: sched chose 1, fault chose 2.
        e.observe_model(&[rec(3, 1)], &[rec(3, 2)], 0xB);
        let mut pairs: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
        while let Some(s) = e.next_schedule() {
            pairs.push((s.prefix.clone(), s.fault_prefix.clone()));
        }
        // Fault deviations keep the observed schedule column, and vice
        // versa.
        assert!(pairs.contains(&(vec![1], vec![])), "{pairs:?}");
        assert!(pairs.contains(&(vec![1], vec![1])), "{pairs:?}");
        assert!(pairs.contains(&(vec![], vec![2])), "{pairs:?}");
        assert!(pairs.contains(&(vec![2], vec![2])), "{pairs:?}");
    }

    #[test]
    fn shrink_pair_reverts_faults_first_then_schedule() {
        // Failure needs fault[1] nonzero and sched[0] nonzero; the rest is
        // noise.
        let fails = |s: &[u32], f: &[u32]| {
            s.first().is_some_and(|&c| c != 0) && f.get(1).is_some_and(|&c| c != 0)
        };
        let (s, f) = shrink_pair(&[2, 1, 0], &[3, 4, 1], fails);
        assert_eq!(s, vec![2]);
        assert_eq!(f, vec![0, 4]);
        assert!(fails(&s, &f));
        // Fixpoint.
        assert_eq!(shrink_pair(&s, &f, fails), (s.clone(), f.clone()));
    }

    #[test]
    fn shrink_pair_with_no_faults_matches_shrink() {
        let fails =
            |p: &[u32]| p.first().is_some_and(|&c| c != 0) && p.get(2).is_some_and(|&c| c != 0);
        let (s, f) = shrink_pair(&[2, 1, 3, 0, 4, 0], &[], |s, _| fails(s));
        assert_eq!(s, shrink(&[2, 1, 3, 0, 4, 0], fails));
        assert_eq!(f, Vec::<u32>::new());
    }
}
