//! Schedule-space exploration strategies and counterexample shrinking.
//!
//! An [`Explorer`] yields [`Schedule`]s to try, always starting with the
//! default schedule (the baseline every check compares against). Two modes:
//!
//! * **Random** — schedule `k` draws every decision uniformly from a
//!   stream derived from `(seed, k)`; cheap, embarrassingly parallel
//!   coverage of deep interleavings.
//! * **Systematic** — preemption-bounded breadth-first enumeration in the
//!   spirit of CHESS-style bounded model checking: after observing a run's
//!   decision log, every single-point deviation (`log[..i]` plus one
//!   non-chosen alternative at `i`) within the preemption bound joins the
//!   frontier. The bound counts non-default choices, so depth grows one
//!   deviation at a time and small bounds already cover the
//!   "one untimely preemption" bugs that dominate practice.
//!
//! Exploration is feedback-driven: callers run each schedule, then hand
//! the observed [`DecisionRecord`] log back via [`Explorer::observe`] so
//! the systematic frontier can expand (random mode ignores feedback).

use crate::schedule::Schedule;
use acorr_sim::DecisionRecord;
use std::collections::{HashSet, VecDeque};

/// How schedules are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreMode {
    /// Seeded random tails; schedule `k` uses a stream derived from
    /// `(seed, k)`.
    Random {
        /// Base seed for the per-schedule streams.
        seed: u64,
    },
    /// Preemption-bounded systematic enumeration: at most `preemptions`
    /// non-default choices per schedule.
    Systematic {
        /// Maximum non-default choices per schedule.
        preemptions: usize,
    },
}

/// splitmix64: derives one tail seed per (base, index) pair.
fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Yields schedules to run, up to a budget.
#[derive(Debug)]
pub struct Explorer {
    mode: ExploreMode,
    budget: usize,
    emitted: usize,
    /// Systematic mode: prefixes waiting to run, oldest first.
    frontier: VecDeque<Vec<u32>>,
    /// Systematic mode: prefixes ever enqueued (dedup).
    visited: HashSet<Vec<u32>>,
}

impl Explorer {
    /// Creates an explorer that will yield at most `budget` schedules,
    /// the first being the default schedule.
    pub fn new(mode: ExploreMode, budget: usize) -> Self {
        let mut visited = HashSet::new();
        visited.insert(Vec::new());
        Explorer {
            mode,
            budget,
            emitted: 0,
            frontier: VecDeque::from([Vec::new()]),
            visited,
        }
    }

    /// Schedules yielded so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// The next schedule to run, or `None` when the budget is exhausted
    /// (or, in systematic mode, the bounded space is).
    pub fn next_schedule(&mut self) -> Option<Schedule> {
        if self.emitted >= self.budget {
            return None;
        }
        let schedule = match self.mode {
            ExploreMode::Random { seed } => {
                if self.emitted == 0 {
                    Schedule::default_order()
                } else {
                    Schedule::random(derive_seed(seed, self.emitted as u64))
                }
            }
            ExploreMode::Systematic { .. } => Schedule::prescribed(self.frontier.pop_front()?),
        };
        self.emitted += 1;
        Some(schedule)
    }

    /// Feeds back the decision log one yielded schedule produced. In
    /// systematic mode this expands the frontier with every in-bound,
    /// not-yet-seen single-point deviation; random mode ignores it.
    pub fn observe(&mut self, log: &[DecisionRecord]) {
        let ExploreMode::Systematic { preemptions } = self.mode else {
            return;
        };
        for (i, rec) in log.iter().enumerate() {
            for alt in 0..rec.alternatives {
                if alt == rec.chosen {
                    continue;
                }
                let mut candidate: Vec<u32> = log[..i].iter().map(|r| r.chosen).collect();
                candidate.push(alt);
                // Canonical form: a FIFO tail reproduces trailing defaults,
                // so `[1, 0]` and `[1]` are the same schedule.
                while candidate.last() == Some(&0) {
                    candidate.pop();
                }
                let deviations = candidate.iter().filter(|&&c| c != 0).count();
                if deviations > preemptions {
                    continue;
                }
                if self.visited.insert(candidate.clone()) {
                    self.frontier.push_back(candidate);
                }
            }
        }
    }
}

/// Shrinks a failing decision prefix to a minimal counterexample.
///
/// `fails` must return `true` when running the given prefix (with a FIFO
/// tail) still reproduces the failure; it is called once per candidate.
/// The result is minimal in the sense that no single prescribed choice can
/// be reverted to the default and no trailing defaults remain — typically
/// a handful of choices pinpointing the racy window.
pub fn shrink<F: FnMut(&[u32]) -> bool>(prefix: &[u32], mut fails: F) -> Vec<u32> {
    let mut cur: Vec<u32> = prefix.to_vec();
    loop {
        let mut changed = false;
        // Drop trailing default choices (a FIFO tail reproduces them).
        while cur.last() == Some(&0) {
            cur.pop();
            changed = true;
        }
        // Try reverting each non-default choice to the default.
        for i in 0..cur.len() {
            if cur[i] == 0 {
                continue;
            }
            let saved = cur[i];
            cur[i] = 0;
            if fails(&cur) {
                changed = true;
            } else {
                cur[i] = saved;
            }
        }
        if !changed {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Tail;

    fn rec(alternatives: u32, chosen: u32) -> DecisionRecord {
        DecisionRecord {
            alternatives,
            chosen,
        }
    }

    #[test]
    fn first_schedule_is_always_the_default() {
        for mode in [
            ExploreMode::Random { seed: 7 },
            ExploreMode::Systematic { preemptions: 2 },
        ] {
            let mut e = Explorer::new(mode, 10);
            assert!(e.next_schedule().unwrap().is_default());
        }
    }

    #[test]
    fn random_mode_yields_distinct_seeds_up_to_budget() {
        let mut e = Explorer::new(ExploreMode::Random { seed: 3 }, 4);
        let mut seeds = HashSet::new();
        e.next_schedule().unwrap();
        while let Some(s) = e.next_schedule() {
            match s.tail {
                Tail::Random { seed } => assert!(seeds.insert(seed)),
                Tail::Default => panic!("random mode yielded a default tail"),
            }
        }
        assert_eq!(seeds.len(), 3);
        assert_eq!(e.emitted(), 4);
        // Same base seed, same streams.
        let mut f = Explorer::new(ExploreMode::Random { seed: 3 }, 4);
        f.next_schedule();
        assert_eq!(
            f.next_schedule().unwrap().tail,
            Tail::Random {
                seed: derive_seed(3, 1)
            }
        );
    }

    #[test]
    fn systematic_mode_expands_single_point_deviations() {
        let mut e = Explorer::new(ExploreMode::Systematic { preemptions: 1 }, 100);
        assert_eq!(e.next_schedule().unwrap().prefix, Vec::<u32>::new());
        // Default run consulted two points with 2 and 3 alternatives.
        e.observe(&[rec(2, 0), rec(3, 0)]);
        let mut got: Vec<Vec<u32>> = Vec::new();
        while let Some(s) = e.next_schedule() {
            got.push(s.prefix.clone());
            // Every deviation reproduces the same two decision points.
            let log: Vec<DecisionRecord> = [2u32, 3]
                .iter()
                .enumerate()
                .map(|(i, &n)| rec(n, s.prefix.get(i).copied().unwrap_or(0).min(n - 1)))
                .collect();
            e.observe(&log);
        }
        // Bound 1: exactly the three single-deviation prefixes, each
        // re-observed without growing the frontier past the bound.
        got.sort();
        assert_eq!(got, vec![vec![0, 1], vec![0, 2], vec![1]]);
    }

    #[test]
    fn systematic_bound_two_reaches_paired_deviations() {
        let mut e = Explorer::new(ExploreMode::Systematic { preemptions: 2 }, 100);
        let mut seen = HashSet::new();
        while let Some(s) = e.next_schedule() {
            seen.insert(s.prefix.clone());
            let log: Vec<DecisionRecord> = (0..2)
                .map(|i| rec(2, s.prefix.get(i).copied().unwrap_or(0)))
                .collect();
            e.observe(&log);
        }
        assert!(seen.contains(&vec![1, 1]), "{seen:?}");
    }

    #[test]
    fn shrink_reverts_and_trims_to_minimal() {
        // Failure iff choice at index 2 is nonzero AND choice at 0 is
        // nonzero; everything else is noise.
        let fails =
            |p: &[u32]| p.first().is_some_and(|&c| c != 0) && p.get(2).is_some_and(|&c| c != 0);
        let min = shrink(&[2, 1, 3, 0, 4, 0], fails);
        assert_eq!(min, vec![2, 0, 3]);
        assert!(fails(&min));
        // Already-minimal input is a fixpoint.
        assert_eq!(shrink(&min, fails), min);
    }

    #[test]
    fn shrink_of_all_noise_is_empty() {
        let min = shrink(&[1, 2, 3], |_| true);
        assert_eq!(min, Vec::<u32>::new());
    }
}
