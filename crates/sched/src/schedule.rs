//! Schedules and the replay-token grammar.
//!
//! A [`Schedule`] prescribes the engine's choices at its steerable decision
//! points: an explicit finite *prefix*, then a [`Tail`] policy for every
//! point past it, plus an explicit prefix of per-barrier-interval *fault*
//! choices. Replay tokens serialize default-tail schedules:
//!
//! ```text
//! token   := "s1" [ ":" choices ] [ "!" faults ]
//! choices := u32 ( "." u32 )*
//! faults  := u32 ( "." u32 )*
//! ```
//!
//! `s1` is the default schedule (all-FIFO, no faults, bit-identical to the
//! unsteered engine); `s1:1.0.2` prescribes choices 1, 0, 2 at the first
//! three decision points and FIFO after; `s1:1!0.2` additionally prescribes
//! fault action 2 at the second barrier interval (`0` is always "no
//! fault"). The `s1` version marker ties a token to this decision-point
//! model — a future engine with different decision points would bump it
//! rather than silently replay garbage.
//!
//! Random-tail schedules have no token: a failing random run is first
//! *concretized* (its recorded decision log replayed as an explicit
//! prefix), and the concrete schedule — which has a token — is what gets
//! shrunk and reported.

use acorr_sim::{DecisionQueue, DetRng};
use std::fmt;

/// Policy for decision points past the explicit prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// The engine default (choice 0, FIFO) everywhere.
    Default,
    /// Uniformly random choices drawn from a [`DetRng`] stream.
    Random {
        /// Seed of the tail's generator.
        seed: u64,
    },
}

/// A prescription of engine scheduling choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Explicit choices for the first decision points.
    pub prefix: Vec<u32>,
    /// Policy past the prefix.
    pub tail: Tail,
    /// Explicit fault choices for the first barrier intervals; past the
    /// prefix every interval takes action 0 (no fault).
    pub fault_prefix: Vec<u32>,
}

/// A replay token that failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleParseError {
    /// The token did not start with the `s1` version marker.
    BadVersion(String),
    /// A choice was not a decimal `u32`.
    BadChoice(String),
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleParseError::BadVersion(t) => {
                write!(f, "schedule token {t:?} does not start with \"s1\"")
            }
            ScheduleParseError::BadChoice(c) => {
                write!(f, "schedule token choice {c:?} is not a u32")
            }
        }
    }
}

impl std::error::Error for ScheduleParseError {}

impl Schedule {
    /// The default schedule: no prefix, FIFO tail. Steering with it is
    /// bit-identical to not steering at all.
    pub fn default_order() -> Self {
        Schedule {
            prefix: Vec::new(),
            tail: Tail::Default,
            fault_prefix: Vec::new(),
        }
    }

    /// An explicit-prefix schedule with a FIFO tail (the replayable kind).
    pub fn prescribed(prefix: Vec<u32>) -> Self {
        Schedule {
            prefix,
            tail: Tail::Default,
            fault_prefix: Vec::new(),
        }
    }

    /// A seeded random schedule: every decision drawn uniformly from a
    /// deterministic stream.
    pub fn random(seed: u64) -> Self {
        Schedule {
            prefix: Vec::new(),
            tail: Tail::Random { seed },
            fault_prefix: Vec::new(),
        }
    }

    /// Returns the schedule with an explicit fault-choice prefix.
    pub fn with_faults(mut self, fault_prefix: Vec<u32>) -> Self {
        self.fault_prefix = fault_prefix;
        self
    }

    /// Builds the decision queue realizing this schedule.
    pub fn queue(&self) -> DecisionQueue {
        let tail = match self.tail {
            Tail::Default => None,
            Tail::Random { seed } => Some(DetRng::new(seed)),
        };
        DecisionQueue::new(self.prefix.clone(), tail)
    }

    /// Builds the decision queue for fault choices. The tail is always the
    /// default (action 0, no fault): fault exploration is systematic, never
    /// random.
    pub fn fault_queue(&self) -> DecisionQueue {
        DecisionQueue::new(self.fault_prefix.clone(), None)
    }

    /// Whether every prescribed choice is the engine default.
    pub fn is_default(&self) -> bool {
        self.tail == Tail::Default
            && self.prefix.iter().all(|&c| c == 0)
            && self.fault_prefix.iter().all(|&c| c == 0)
    }

    /// The replay token.
    ///
    /// # Panics
    ///
    /// Panics on a random-tail schedule — concretize it first (replay it,
    /// record the decision log, and tokenize the concrete prefix).
    pub fn token(&self) -> String {
        assert_eq!(
            self.tail,
            Tail::Default,
            "random-tail schedules must be concretized before tokenizing"
        );
        let mut token = "s1".to_string();
        if !self.prefix.is_empty() {
            let choices: Vec<String> = self.prefix.iter().map(u32::to_string).collect();
            token.push(':');
            token.push_str(&choices.join("."));
        }
        if !self.fault_prefix.is_empty() {
            let faults: Vec<String> = self.fault_prefix.iter().map(u32::to_string).collect();
            token.push('!');
            token.push_str(&faults.join("."));
        }
        token
    }

    /// Parses a replay token produced by [`Schedule::token`].
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleParseError`] on a missing version marker or a
    /// malformed choice.
    pub fn parse_token(token: &str) -> Result<Self, ScheduleParseError> {
        let rest = token
            .strip_prefix("s1")
            .ok_or_else(|| ScheduleParseError::BadVersion(token.to_string()))?;
        if rest.is_empty() {
            return Ok(Schedule::default_order());
        }
        let parse_list = |list: &str| -> Result<Vec<u32>, ScheduleParseError> {
            list.split('.')
                .map(|c| {
                    c.parse::<u32>()
                        .map_err(|_| ScheduleParseError::BadChoice(c.to_string()))
                })
                .collect()
        };
        // Split off the fault part first: "s1:1.0!2" and "s1!2" are both
        // valid; a second '!' is a malformed choice, not a new section.
        let (sched_part, fault_part) = match rest.split_once('!') {
            Some((s, f)) => (s, Some(f)),
            None => (rest, None),
        };
        let prefix = if sched_part.is_empty() {
            Vec::new()
        } else {
            let choices = sched_part
                .strip_prefix(':')
                .ok_or_else(|| ScheduleParseError::BadVersion(token.to_string()))?;
            parse_list(choices)?
        };
        let fault_prefix = match fault_part {
            Some(f) => parse_list(f)?,
            None => Vec::new(),
        };
        Ok(Schedule::prescribed(prefix).with_faults(fault_prefix))
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tail {
            Tail::Default => write!(f, "{}", self.token()),
            Tail::Random { seed } => write!(f, "random(seed={seed})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trips() {
        for s in [
            Schedule::default_order(),
            Schedule::prescribed(vec![1]),
            Schedule::prescribed(vec![0, 3, 2, 0]),
            Schedule::prescribed(vec![1]).with_faults(vec![0, 2]),
            Schedule::default_order().with_faults(vec![1]),
        ] {
            assert_eq!(Schedule::parse_token(&s.token()).unwrap(), s);
        }
        assert_eq!(Schedule::default_order().token(), "s1");
        assert_eq!(Schedule::prescribed(vec![1, 0, 2]).token(), "s1:1.0.2");
        assert_eq!(
            Schedule::prescribed(vec![1])
                .with_faults(vec![0, 2])
                .token(),
            "s1:1!0.2"
        );
        assert_eq!(
            Schedule::default_order().with_faults(vec![1]).token(),
            "s1!1"
        );
    }

    #[test]
    fn parse_rejects_malformed_tokens() {
        for bad in [
            "", "s2", "s1;1", "s1:", "s1:1..2", "s1:x", "s1:-1", "s1!", "s1!x", "s1!1..2", "s1:1!",
            "s1!1!2",
        ] {
            assert!(Schedule::parse_token(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn default_detection() {
        assert!(Schedule::default_order().is_default());
        assert!(Schedule::prescribed(vec![0, 0]).is_default());
        assert!(!Schedule::prescribed(vec![0, 1]).is_default());
        assert!(!Schedule::random(7).is_default());
        assert!(Schedule::default_order().with_faults(vec![0]).is_default());
        assert!(!Schedule::default_order().with_faults(vec![1]).is_default());
    }

    #[test]
    fn fault_queue_realizes_prefix_with_default_tail() {
        let s = Schedule::prescribed(vec![2]).with_faults(vec![4, 0, 1]);
        let mut q = s.fault_queue();
        assert_eq!(q.next(5), 4);
        assert_eq!(q.next(5), 0);
        assert_eq!(q.next(5), 1);
        assert_eq!(q.next(5), 0);
        // The fault queue is independent of the scheduling queue.
        assert_eq!(s.queue().next(3), 2);
    }

    #[test]
    fn queue_realizes_prefix_and_tail() {
        let mut q = Schedule::prescribed(vec![2, 1]).queue();
        assert_eq!(q.next(3), 2);
        assert_eq!(q.next(3), 1);
        assert_eq!(q.next(3), 0);
        let mut a = Schedule::random(9).queue();
        let mut b = Schedule::random(9).queue();
        for _ in 0..16 {
            assert_eq!(a.next(5), b.next(5));
        }
    }

    #[test]
    #[should_panic(expected = "concretized")]
    fn random_schedules_have_no_token() {
        let _ = Schedule::random(1).token();
    }
}
