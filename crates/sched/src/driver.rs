//! The schedule-driving policy and its shared decision log.
//!
//! A [`ScheduleDriver`] feeds a [`Schedule`]'s choices into the engine
//! through the [`SchedulePolicy`] hook, recording every consulted decision
//! point. The driver itself is boxed into the engine
//! ([`Dsm::set_schedule_policy`](acorr_dsm::Dsm::set_schedule_policy)), so
//! the log lives behind a shared handle ([`DecisionLog`]) the caller keeps:
//! after the run, the log *is* the concrete schedule — replaying its
//! `chosen` column reproduces the run exactly, which is what makes random
//! failures shrinkable.

use crate::schedule::Schedule;
use acorr_dsm::{DecisionPoint, SchedulePolicy};
use acorr_sim::{DecisionQueue, DecisionRecord};
use std::sync::{Arc, Mutex, PoisonError};

type SharedLog = Arc<Mutex<Vec<DecisionRecord>>>;

/// Caller-side handle to the decisions a [`ScheduleDriver`] recorded.
#[derive(Debug, Clone, Default)]
pub struct DecisionLog {
    inner: SharedLog,
}

impl DecisionLog {
    /// Decision points consulted so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no decision point has been consulted.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A snapshot of the recorded decisions.
    pub fn records(&self) -> Vec<DecisionRecord> {
        self.lock().clone()
    }

    /// The `chosen` column: the concrete all-explicit schedule prefix that
    /// reproduces the recorded run.
    pub fn choices(&self) -> Vec<u32> {
        self.lock().iter().map(|r| r.chosen).collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<DecisionRecord>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A [`SchedulePolicy`] that realizes a [`Schedule`] and logs what it did.
///
/// Scheduling choices and fault choices flow through two independent
/// queue/log pairs: the fault log records one entry per barrier interval
/// consulted, and its `chosen` column is the concrete fault prefix of a
/// replay token's `!` section.
#[derive(Debug)]
pub struct ScheduleDriver {
    queue: DecisionQueue,
    log: SharedLog,
    fault_queue: DecisionQueue,
    fault_log: SharedLog,
}

impl ScheduleDriver {
    /// Creates a driver for `schedule` plus the log handle to keep.
    pub fn new(schedule: &Schedule) -> (Self, DecisionLog) {
        let log = DecisionLog::default();
        (
            ScheduleDriver {
                queue: schedule.queue(),
                log: Arc::clone(&log.inner),
                fault_queue: schedule.fault_queue(),
                fault_log: SharedLog::default(),
            },
            log,
        )
    }

    /// The handle to the fault-decision log (one record per barrier
    /// interval consulted). Grab it before boxing the driver into the
    /// engine.
    pub fn fault_log(&self) -> DecisionLog {
        DecisionLog {
            inner: Arc::clone(&self.fault_log),
        }
    }
}

impl SchedulePolicy for ScheduleDriver {
    fn choose(&mut self, _point: DecisionPoint, alternatives: usize) -> usize {
        let choice = self.queue.next(alternatives);
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(DecisionRecord {
                alternatives: alternatives as u32,
                chosen: choice as u32,
            });
        choice
    }

    fn inject(&mut self, _interval: u64, alternatives: usize) -> usize {
        let choice = self.fault_queue.next(alternatives);
        self.fault_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(DecisionRecord {
                alternatives: alternatives as u32,
                chosen: choice as u32,
            });
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_sim::NodeId;

    #[test]
    fn driver_replays_prefix_and_logs_choices() {
        let (mut d, log) = ScheduleDriver::new(&Schedule::prescribed(vec![1, 5]));
        let p = DecisionPoint::Run { node: NodeId(0) };
        assert_eq!(d.choose(p, 3), 1);
        assert_eq!(d.choose(p, 3), 2); // 5 clamped by the queue
        assert_eq!(d.choose(p, 3), 0); // default tail
        assert_eq!(log.len(), 3);
        assert_eq!(log.choices(), vec![1, 2, 0]);
        assert_eq!(log.records()[1].alternatives, 3);
    }

    #[test]
    fn fault_choices_flow_through_their_own_queue_and_log() {
        let schedule = Schedule::prescribed(vec![1]).with_faults(vec![0, 4]);
        let (mut d, log) = ScheduleDriver::new(&schedule);
        let flog = d.fault_log();
        assert_eq!(d.inject(0, 5), 0);
        assert_eq!(d.inject(1, 5), 4);
        assert_eq!(d.inject(2, 5), 0); // past the prefix: no fault
                                       // Fault consultations never leak into the scheduling log.
        assert_eq!(log.len(), 0);
        assert_eq!(flog.choices(), vec![0, 4, 0]);
        assert_eq!(flog.records()[1].alternatives, 5);
        // And scheduling choices never consume fault-queue entries.
        assert_eq!(d.choose(DecisionPoint::Run { node: NodeId(0) }, 2), 1);
        assert_eq!(flog.len(), 3);
    }

    #[test]
    fn replaying_a_logged_random_run_reproduces_it() {
        let points = [4usize, 2, 7, 3, 2];
        let (mut d, log) = ScheduleDriver::new(&Schedule::random(42));
        let p = DecisionPoint::Grant { lock: 0 };
        let first: Vec<usize> = points.iter().map(|&n| d.choose(p, n)).collect();
        // Concretize: the log's choices as an explicit prefix.
        let concrete = Schedule::prescribed(log.choices());
        let (mut r, _) = ScheduleDriver::new(&concrete);
        let second: Vec<usize> = points.iter().map(|&n| r.choose(p, n)).collect();
        assert_eq!(first, second);
    }
}
