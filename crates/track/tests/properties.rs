//! Property tests for correlation analysis: merge algebra, aging decay,
//! and delta/CSV round-trips.

// Property tests require the external `proptest` crate, which the
// offline default build cannot fetch; see the crate Cargo.toml.
#![cfg(feature = "proptest")]

use acorr_track::{correlation_delta, render_csv, AgedCorrelation, CorrelationMatrix};
use proptest::prelude::*;

const N: usize = 5;

/// An arbitrary symmetric correlation matrix over `N` threads.
fn matrix() -> impl Strategy<Value = CorrelationMatrix> {
    proptest::collection::vec(0u64..1_000, N * N).prop_map(|vals| {
        let mut m = CorrelationMatrix::zeros(N);
        for a in 0..N {
            for b in a..N {
                m.set(a, b, vals[a * N + b]);
            }
        }
        m
    })
}

fn cells(aged: &AgedCorrelation) -> Vec<f64> {
    let mut v = Vec::with_capacity(N * N);
    for a in 0..N {
        for b in 0..N {
            v.push(aged.get(a, b));
        }
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging tracked rounds is commutative: per-node shards combine in
    /// any order.
    #[test]
    fn merge_is_commutative(a in matrix(), b in matrix()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// ... and associative: shard grouping does not matter either.
    #[test]
    fn merge_is_associative(a in matrix(), b in matrix(), c in matrix()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Once observations stop, every aged pair decays monotonically: each
    /// quiet round multiplies by `decay < 1`, so values never increase and
    /// never go negative.
    #[test]
    fn aging_is_monotone_non_increasing(
        m in matrix(),
        decay in 0.0f64..0.99,
        quiet in 1usize..8,
    ) {
        let mut aged = AgedCorrelation::new(N, decay);
        aged.observe(&m);
        let zero = CorrelationMatrix::zeros(N);
        let mut last = cells(&aged);
        for _ in 0..quiet {
            aged.observe(&zero);
            let now = cells(&aged);
            for (l, n) in last.iter().zip(&now) {
                prop_assert!(*n <= *l, "aged value rose from {l} to {n}");
                prop_assert!(*n >= 0.0);
            }
            last = now;
        }
    }

    /// A matrix survives the CSV pipeline bit-for-bit, so its delta to the
    /// round-tripped copy is exactly zero.
    #[test]
    fn csv_round_trip_has_zero_delta(m in matrix()) {
        let back = CorrelationMatrix::from_csv(&render_csv(&m)).expect("round trip");
        prop_assert_eq!(correlation_delta(&m, &back), 0.0);
        prop_assert_eq!(back, m);
    }

    /// Delta is symmetric, bounded in [0, 1], and zero on itself.
    #[test]
    fn delta_is_symmetric_and_bounded(a in matrix(), b in matrix()) {
        let d = correlation_delta(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d, correlation_delta(&b, &a));
        prop_assert_eq!(correlation_delta(&a, &a), 0.0);
    }
}
