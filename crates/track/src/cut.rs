//! Cut costs.
//!
//! §2 of the paper: *"The cut cost of a given mapping of threads to nodes is
//! the pairwise sum of all thread correlations, i.e. a sum with n² terms"* —
//! restricted to thread pairs on distinct nodes. Following that convention,
//! [`cut_cost`] sums **ordered** pairs (each unordered pair counts twice),
//! which reproduces the magnitudes of Table 6 (e.g. SOR's min-cost cut of
//! 28 = 7 cross-node neighbor pairs × 2 pages × 2 orders).

use crate::store::CorrelationStore;
use acorr_sim::Mapping;

/// Whether a thread pair crosses a node boundary under `mapping`.
pub fn pair_is_cut(mapping: &Mapping, a: usize, b: usize) -> bool {
    mapping.node_of(a) != mapping.node_of(b)
}

/// The cut cost of `mapping`: total correlation of thread pairs placed on
/// distinct nodes (ordered-pair convention). Generic over the correlation
/// backend — `O(T²)` on the dense matrix, `O(E)` on the sparse store, with
/// identical sums (zero pairs contribute nothing and `u64` addition
/// commutes).
///
/// # Panics
///
/// Panics if the mapping and store cover different thread counts.
pub fn cut_cost<C: CorrelationStore>(corr: &C, mapping: &Mapping) -> u64 {
    assert_eq!(
        corr.num_threads(),
        mapping.num_threads(),
        "matrix and mapping must cover the same threads"
    );
    let mut cost = 0;
    corr.for_each_edge(|a, b, v| {
        if pair_is_cut(mapping, a, b) {
            cost += 2 * v;
        }
    });
    cost
}

/// The complement of the cut: correlation mass of same-node pairs (the
/// sharing that lands inside Figure 3's "free zones").
///
/// # Panics
///
/// Panics if the mapping and store cover different thread counts.
pub fn internal_cost<C: CorrelationStore>(corr: &C, mapping: &Mapping) -> u64 {
    assert_eq!(
        corr.num_threads(),
        mapping.num_threads(),
        "matrix and mapping must cover the same threads"
    );
    let mut cost = 0;
    corr.for_each_edge(|a, b, v| {
        if !pair_is_cut(mapping, a, b) {
            cost += 2 * v;
        }
    });
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::CorrelationMatrix;
    use acorr_sim::{ClusterConfig, DetRng, NodeId};

    /// A 4-thread chain: neighbors share 2 pages.
    fn chain4() -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(4);
        c.set(0, 1, 2);
        c.set(1, 2, 2);
        c.set(2, 3, 2);
        c
    }

    fn mapping(assign: Vec<u16>) -> Mapping {
        let nodes = *assign.iter().max().unwrap() as usize + 1;
        let cluster = ClusterConfig::new(nodes, assign.len()).unwrap();
        Mapping::from_assignment(&cluster, assign.into_iter().map(NodeId).collect()).unwrap()
    }

    #[test]
    fn contiguous_split_cuts_one_edge() {
        let c = chain4();
        let m = mapping(vec![0, 0, 1, 1]);
        assert_eq!(cut_cost(&c, &m), 4); // edge (1,2), 2 pages, ordered
        assert_eq!(internal_cost(&c, &m), 8);
        assert_eq!(
            cut_cost(&c, &m) + internal_cost(&c, &m),
            c.total_correlation()
        );
    }

    #[test]
    fn interleaved_split_cuts_everything() {
        let c = chain4();
        let m = mapping(vec![0, 1, 0, 1]);
        assert_eq!(cut_cost(&c, &m), 12);
        assert_eq!(internal_cost(&c, &m), 0);
    }

    #[test]
    fn single_node_has_zero_cut() {
        let c = chain4();
        let cluster = ClusterConfig::new(1, 4).unwrap();
        let m = Mapping::stretch(&cluster);
        assert_eq!(cut_cost(&c, &m), 0);
        assert_eq!(internal_cost(&c, &m), c.total_correlation());
    }

    #[test]
    fn pair_is_cut_matches_mapping() {
        let m = mapping(vec![0, 0, 1, 1]);
        assert!(!pair_is_cut(&m, 0, 1));
        assert!(pair_is_cut(&m, 1, 2));
    }

    #[test]
    fn cut_plus_internal_is_invariant_across_mappings() {
        let c = chain4();
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let rng = DetRng::new(1);
        for s in 0..20 {
            let m = Mapping::random_balanced(&cluster, &mut rng.fork(s));
            assert_eq!(
                cut_cost(&c, &m) + internal_cost(&c, &m),
                c.total_correlation()
            );
        }
    }

    #[test]
    #[should_panic(expected = "same threads")]
    fn mismatched_sizes_panic() {
        let c = chain4();
        let cluster = ClusterConfig::new(2, 6).unwrap();
        cut_cost(&c, &Mapping::stretch(&cluster));
    }
}
