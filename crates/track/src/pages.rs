//! Per-page sharing analysis.
//!
//! Thread correlations aggregate away *which* pages carry the sharing; this
//! module keeps them. From an [`AccessMatrix`] it derives per-page sharer
//! counts, the hot-page ranking (the pages that will ping-pong hardest if
//! their sharers are separated), and a sharer histogram — the page-level
//! complement to §1's thread-pair view, useful both for tuning (move the
//! one hot structure) and for validating the cut-cost model (most pages
//! should have few sharers).

use acorr_mem::AccessMatrix;
use acorr_mem::PageId;
use std::fmt;

/// How many distinct threads touch one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSharers {
    /// The page.
    pub page: PageId,
    /// Number of threads that touched it.
    pub sharers: usize,
}

/// Per-page sharer counts for every touched page.
pub fn page_sharers(access: &AccessMatrix) -> Vec<PageSharers> {
    let mut counts = vec![0usize; access.num_pages()];
    for t in 0..access.num_threads() {
        for p in access.bitmap(t).iter_ones() {
            counts[p] += 1;
        }
    }
    counts
        .into_iter()
        .enumerate()
        .filter(|&(_, sharers)| sharers > 0)
        .map(|(p, sharers)| PageSharers {
            page: PageId(p as u32),
            sharers,
        })
        .collect()
}

/// The `k` most-shared pages, descending by sharer count (ties: lower page
/// id first).
pub fn hottest_pages(access: &AccessMatrix, k: usize) -> Vec<PageSharers> {
    let mut all = page_sharers(access);
    all.sort_by(|a, b| b.sharers.cmp(&a.sharers).then(a.page.cmp(&b.page)));
    all.truncate(k);
    all
}

/// The threads that touch `page`, ascending.
pub fn sharers_of(access: &AccessMatrix, page: PageId) -> Vec<usize> {
    (0..access.num_threads())
        .filter(|&t| access.observed(t, page))
        .collect()
}

/// Histogram of sharer counts: `histogram[s]` = number of pages touched by
/// exactly `s` threads (index 0 counts untouched pages).
pub fn sharer_histogram(access: &AccessMatrix) -> Vec<usize> {
    let mut hist = vec![0usize; access.num_threads() + 1];
    let mut touched = 0usize;
    for entry in page_sharers(access) {
        hist[entry.sharers] += 1;
        touched += 1;
    }
    hist[0] = access.num_pages() - touched;
    hist
}

/// A compact textual report of the sharing distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct PageReport {
    /// Pages touched by at least one thread.
    pub touched_pages: usize,
    /// Pages touched by at least two threads (the shared ones).
    pub shared_pages: usize,
    /// Mean sharers over touched pages.
    pub mean_sharers: f64,
    /// The hottest pages.
    pub hottest: Vec<PageSharers>,
}

/// Builds a [`PageReport`] with the `k` hottest pages.
pub fn page_report(access: &AccessMatrix, k: usize) -> PageReport {
    let all = page_sharers(access);
    let touched = all.len();
    let shared = all.iter().filter(|e| e.sharers >= 2).count();
    let mean = if touched == 0 {
        0.0
    } else {
        all.iter().map(|e| e.sharers).sum::<usize>() as f64 / touched as f64
    };
    PageReport {
        touched_pages: touched,
        shared_pages: shared,
        mean_sharers: mean,
        hottest: hottest_pages(access, k),
    }
}

impl fmt::Display for PageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} touched pages, {} shared, mean {:.2} sharers",
            self.touched_pages, self.shared_pages, self.mean_sharers
        )?;
        for e in &self.hottest {
            writeln!(f, "  {}: {} sharers", e.page, e.sharers)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccessMatrix {
        let mut m = AccessMatrix::new(4, 8);
        // page 0: all four threads; page 1: threads 0,1; page 2: thread 3.
        for t in 0..4 {
            m.record(t, PageId(0));
        }
        m.record(0, PageId(1));
        m.record(1, PageId(1));
        m.record(3, PageId(2));
        m
    }

    #[test]
    fn sharer_counts_match_hand_counts() {
        let sharers = page_sharers(&sample());
        assert_eq!(
            sharers,
            vec![
                PageSharers {
                    page: PageId(0),
                    sharers: 4
                },
                PageSharers {
                    page: PageId(1),
                    sharers: 2
                },
                PageSharers {
                    page: PageId(2),
                    sharers: 1
                },
            ]
        );
    }

    #[test]
    fn hottest_ranks_descending_with_stable_ties() {
        let hot = hottest_pages(&sample(), 2);
        assert_eq!(hot[0].page, PageId(0));
        assert_eq!(hot[1].page, PageId(1));
        let mut m = AccessMatrix::new(2, 4);
        m.record(0, PageId(2));
        m.record(0, PageId(1));
        let tied = hottest_pages(&m, 2);
        assert_eq!(tied[0].page, PageId(1), "ties break to lower page id");
    }

    #[test]
    fn sharers_of_lists_threads() {
        let m = sample();
        assert_eq!(sharers_of(&m, PageId(0)), vec![0, 1, 2, 3]);
        assert_eq!(sharers_of(&m, PageId(1)), vec![0, 1]);
        assert_eq!(sharers_of(&m, PageId(7)), Vec::<usize>::new());
    }

    #[test]
    fn histogram_accounts_for_every_page() {
        let hist = sharer_histogram(&sample());
        assert_eq!(hist, vec![5, 1, 1, 0, 1]);
        assert_eq!(hist.iter().sum::<usize>(), 8);
    }

    #[test]
    fn report_summarizes() {
        let report = page_report(&sample(), 1);
        assert_eq!(report.touched_pages, 3);
        assert_eq!(report.shared_pages, 2);
        assert!((report.mean_sharers - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(report.hottest.len(), 1);
        let txt = report.to_string();
        assert!(txt.contains("3 touched pages"));
        assert!(txt.contains("p0: 4 sharers"));
    }

    #[test]
    fn empty_matrix_yields_empty_report() {
        let report = page_report(&AccessMatrix::new(2, 4), 3);
        assert_eq!(report.touched_pages, 0);
        assert_eq!(report.mean_sharers, 0.0);
        assert!(report.hottest.is_empty());
        assert_eq!(sharer_histogram(&AccessMatrix::new(2, 4)), vec![4, 0, 0]);
    }
}
