//! Detecting sharing-pattern drift.
//!
//! §7 plans periodic re-tracking for dynamic applications — but *when* to
//! re-track? Re-tracking on a schedule wastes tracked iterations while the
//! pattern is stable and lags when it shifts. This module quantifies how
//! far two correlation matrices diverge, so a runtime can re-track (and
//! re-place) only when cheap passive observations stop resembling the last
//! active snapshot.

use crate::correlation::CorrelationMatrix;

/// Normalized L1 divergence between two correlation matrices: the summed
/// absolute off-diagonal difference divided by the summed off-diagonal mass
/// of both. Ranges in `[0, 1]`: 0 for identical matrices, 1 for disjoint
/// sharing.
///
/// # Panics
///
/// Panics if the matrices cover different thread counts.
///
/// ```
/// use acorr_track::{correlation_delta, CorrelationMatrix};
/// let mut a = CorrelationMatrix::zeros(3);
/// a.set(0, 1, 10);
/// let mut b = CorrelationMatrix::zeros(3);
/// b.set(1, 2, 10);
/// assert_eq!(correlation_delta(&a, &a), 0.0);
/// assert_eq!(correlation_delta(&a, &b), 1.0); // sharing moved entirely
/// ```
pub fn correlation_delta(a: &CorrelationMatrix, b: &CorrelationMatrix) -> f64 {
    assert_eq!(
        a.num_threads(),
        b.num_threads(),
        "matrices must cover the same threads"
    );
    let mut diff = 0u64;
    let mut mass = 0u64;
    for (x, y, va) in a.pairs() {
        let vb = b.get(x, y);
        diff += va.abs_diff(vb);
        mass += va + vb;
    }
    if mass == 0 {
        0.0
    } else {
        (diff as f64 / mass as f64).min(1.0)
    }
}

/// Decides whether the sharing pattern has shifted enough to justify
/// re-tracking: true when [`correlation_delta`] exceeds `threshold`.
///
/// A threshold around 0.3-0.5 works well in practice: intensity wiggle
/// stays below it, a structural rotation exceeds it.
pub fn has_shifted(
    reference: &CorrelationMatrix,
    current: &CorrelationMatrix,
    threshold: f64,
) -> bool {
    correlation_delta(reference, current) > threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(n: usize, a: usize, b: usize, v: u64) -> CorrelationMatrix {
        let mut m = CorrelationMatrix::zeros(n);
        m.set(a, b, v);
        m
    }

    #[test]
    fn identical_matrices_have_zero_delta() {
        let m = pair(4, 0, 1, 7);
        assert_eq!(correlation_delta(&m, &m), 0.0);
        assert!(!has_shifted(&m, &m, 0.1));
    }

    #[test]
    fn disjoint_sharing_has_delta_one() {
        let a = pair(4, 0, 1, 7);
        let b = pair(4, 2, 3, 7);
        assert_eq!(correlation_delta(&a, &b), 1.0);
        assert!(has_shifted(&a, &b, 0.5));
    }

    #[test]
    fn intensity_change_is_a_small_delta() {
        // Same structure, 20% stronger: delta = 2/22 ≈ 0.09.
        let a = pair(4, 0, 1, 10);
        let b = pair(4, 0, 1, 12);
        let d = correlation_delta(&a, &b);
        assert!(d < 0.1, "{d}");
        assert!(!has_shifted(&a, &b, 0.3));
    }

    #[test]
    fn partial_rotation_is_intermediate() {
        let mut a = CorrelationMatrix::zeros(6);
        a.set(0, 1, 10);
        a.set(2, 3, 10);
        let mut b = CorrelationMatrix::zeros(6);
        b.set(0, 1, 10); // kept
        b.set(4, 5, 10); // moved
        let d = correlation_delta(&a, &b);
        assert!((d - 0.5).abs() < 1e-12, "{d}");
    }

    #[test]
    fn empty_matrices_do_not_divide_by_zero() {
        let a = CorrelationMatrix::zeros(4);
        assert_eq!(correlation_delta(&a, &a), 0.0);
    }

    #[test]
    fn delta_is_symmetric() {
        let a = pair(5, 0, 2, 9);
        let b = pair(5, 1, 3, 4);
        assert_eq!(correlation_delta(&a, &b), correlation_delta(&b, &a));
    }

    #[test]
    #[should_panic(expected = "same threads")]
    fn size_mismatch_panics() {
        correlation_delta(&CorrelationMatrix::zeros(3), &CorrelationMatrix::zeros(4));
    }
}
