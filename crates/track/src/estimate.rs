//! Predicting communication from cut costs.
//!
//! §2 establishes that remote misses are approximately linear in cut cost;
//! §5 uses that to evaluate candidate mappings *without running them*. This
//! module closes the loop: calibrate a [`MissModel`] from a few observed
//! (cut, misses) points — e.g. a handful of configurations already run, or
//! the Table 2 study — then rank arbitrary candidate mappings by predicted
//! misses.

use crate::correlation::CorrelationMatrix;
use crate::cut::cut_cost;
use acorr_sim::{linear_fit, LinearFit, Mapping};
use std::fmt;

/// A calibrated linear misses-from-cut-cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissModel {
    fit: LinearFit,
}

impl MissModel {
    /// Calibrates from observed `(cut_cost, remote_misses)` points.
    ///
    /// Returns `None` with fewer than two distinct cut costs (no line to
    /// fit).
    pub fn calibrate(observations: &[(u64, u64)]) -> Option<MissModel> {
        let xs: Vec<f64> = observations.iter().map(|&(c, _)| c as f64).collect();
        let ys: Vec<f64> = observations.iter().map(|&(_, m)| m as f64).collect();
        linear_fit(&xs, &ys).map(|fit| MissModel { fit })
    }

    /// The underlying least-squares fit.
    pub fn fit(&self) -> LinearFit {
        self.fit
    }

    /// Predicted remote misses at a given cut cost (clamped at zero).
    pub fn predict(&self, cut_cost: u64) -> f64 {
        (self.fit.slope * cut_cost as f64 + self.fit.intercept).max(0.0)
    }

    /// Predicted misses for a mapping under the given correlations.
    ///
    /// # Panics
    ///
    /// Panics if the matrix and mapping cover different thread counts.
    pub fn predict_mapping(&self, corr: &CorrelationMatrix, mapping: &Mapping) -> f64 {
        self.predict(cut_cost(corr, mapping))
    }

    /// Ranks candidate mappings by predicted misses, ascending. Returns
    /// `(index, predicted)` pairs into the input slice.
    ///
    /// # Panics
    ///
    /// Panics if any mapping covers a different thread count than the
    /// matrix.
    pub fn rank(&self, corr: &CorrelationMatrix, candidates: &[Mapping]) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = candidates
            .iter()
            .enumerate()
            .map(|(i, m)| (i, self.predict_mapping(corr, m)))
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        ranked
    }
}

impl fmt::Display for MissModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "misses ≈ {}", self.fit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_sim::{ClusterConfig, DetRng};

    fn chain(n: usize, w: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for i in 0..n - 1 {
            c.set(i, i + 1, w);
        }
        c
    }

    #[test]
    fn calibration_recovers_a_linear_relation() {
        let obs: Vec<(u64, u64)> = (0..20).map(|i| (100 * i, 250 * i + 40)).collect();
        let model = MissModel::calibrate(&obs).unwrap();
        assert!((model.fit().slope - 2.5).abs() < 1e-9);
        assert!((model.predict(1000) - 2540.0).abs() < 1e-6);
        assert!((model.fit().r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predictions_clamp_at_zero() {
        let model = MissModel::calibrate(&[(100, 10), (200, 40)]).unwrap();
        assert_eq!(model.predict(0), 0.0, "negative extrapolation clamps");
    }

    #[test]
    fn degenerate_calibration_is_rejected() {
        assert!(MissModel::calibrate(&[]).is_none());
        assert!(MissModel::calibrate(&[(5, 3)]).is_none());
        assert!(
            MissModel::calibrate(&[(5, 3), (5, 9)]).is_none(),
            "no x spread"
        );
    }

    #[test]
    fn ranking_prefers_lower_cut_mappings() {
        let corr = chain(8, 4);
        let cluster = ClusterConfig::new(2, 8).unwrap();
        let stretch = Mapping::stretch(&cluster);
        let mut rng = DetRng::new(3);
        let scrambled = stretch.permuted(&mut rng);
        let model = MissModel::calibrate(&[(0, 5), (100, 105)]).unwrap();
        let ranked = model.rank(&corr, &[scrambled.clone(), stretch.clone()]);
        assert_eq!(ranked[0].0, 1, "stretch (lower cut) ranks first");
        assert!(ranked[0].1 < ranked[1].1);
        // Rank order must agree with raw cut order.
        assert!(cut_cost(&corr, &stretch) < cut_cost(&corr, &scrambled));
    }

    #[test]
    fn display_embeds_the_fit() {
        let model = MissModel::calibrate(&[(0, 0), (10, 20)]).unwrap();
        assert!(model.to_string().contains("misses ≈"));
    }
}
