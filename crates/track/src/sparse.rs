//! Sparse correlation storage for production-scale thread counts.
//!
//! The dense [`CorrelationMatrix`] spends `8·T²` bytes whether threads share
//! or not — 8 TB at a million threads. Real correlation structure is sparse
//! (the paper's apps share along chains, blocks and a few hot pages), so
//! [`SparseCorrelation`] stores only the non-zero pairs as symmetric sorted
//! adjacency lists plus a dense diagonal, giving `O(T + E)` memory and
//! `O(deg)` neighbor iteration for the multilevel partitioner.
//!
//! Determinism and equivalence contracts (tested against the dense matrix):
//!
//! * iteration is always in ascending `(a, b)` order, so every consumer sum
//!   and tie-break reproduces the dense code paths bit-for-bit;
//! * [`SparseCorrelation::delta`] performs the same order-independent `u64`
//!   diff/mass sums as [`correlation_delta`](crate::correlation_delta) —
//!   identical `f64` results;
//! * [`SparseAged`] applies the exact per-pair `f64` sequence of
//!   [`AgedCorrelation`](crate::AgedCorrelation) (`val·decay + round`);
//!   pairs absent from both sides are exact zeros under that recurrence, so
//!   dropping them — the aging-aware compaction — is lossless. An edge only
//!   leaves the accumulator when decay underflows it to exactly `0.0`;
//!   [`SparseAged::compact`] offers an explicit thresholded drop for
//!   bounded-memory long runs, documented as an approximation.

use crate::correlation::CorrelationMatrix;
use crate::store::{AgedStore, CorrelationStore};
use std::fmt;

/// A symmetric sparse correlation store: per-thread sorted adjacency lists
/// of non-zero partners, plus a dense diagonal (own page counts).
///
/// ```
/// use acorr_track::{CorrelationStore, SparseCorrelation};
/// let mut s = SparseCorrelation::zeros(1_000_000);
/// s.set(3, 999_999, 7);
/// assert_eq!(s.get(999_999, 3), 7);
/// assert_eq!(s.edge_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseCorrelation {
    n: usize,
    diag: Vec<u64>,
    /// `adj[t]` lists `(partner, value)` sorted by partner, values > 0,
    /// mirrored on both endpoints.
    adj: Vec<Vec<(u32, u64)>>,
}

fn list_get(list: &[(u32, u64)], key: u32) -> u64 {
    match list.binary_search_by_key(&key, |e| e.0) {
        Ok(pos) => list[pos].1,
        Err(_) => 0,
    }
}

fn list_set(list: &mut Vec<(u32, u64)>, key: u32, v: u64) {
    match list.binary_search_by_key(&key, |e| e.0) {
        Ok(pos) => {
            if v == 0 {
                list.remove(pos);
            } else {
                list[pos].1 = v;
            }
        }
        Err(pos) => {
            if v > 0 {
                list.insert(pos, (key, v));
            }
        }
    }
}

fn list_add(list: &mut Vec<(u32, u64)>, key: u32, v: u64) {
    match list.binary_search_by_key(&key, |e| e.0) {
        Ok(pos) => list[pos].1 += v,
        Err(pos) => list.insert(pos, (key, v)),
    }
}

impl SparseCorrelation {
    /// An empty store over `n` threads.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32` range (the partner index width).
    pub fn zeros(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "thread count exceeds u32 range");
        SparseCorrelation {
            n,
            diag: vec![0; n],
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a store from an edge list; duplicate `(a, b)` entries sum,
    /// `(t, t)` entries accumulate onto the diagonal, zero values drop.
    /// The input order is irrelevant (sums commute), so parallel generators
    /// produce identical stores regardless of chunking.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32, u64)>) -> Self {
        let mut s = SparseCorrelation::zeros(n);
        // Two passes over a flat buffer so every adjacency list is
        // allocated exactly once at its final (pre-coalesce) size —
        // incremental `Vec` growth across millions of lists is what
        // dominated the 10⁶-thread generation profile otherwise.
        let flat: Vec<(u32, u32, u64)> = edges.into_iter().collect();
        let mut deg = vec![0u32; n];
        for &(a, b, v) in &flat {
            let (a, b) = (a as usize, b as usize);
            assert!(a < n && b < n, "edge endpoint out of range");
            if v != 0 && a != b {
                deg[a] += 1;
                deg[b] += 1;
            }
        }
        for (list, &d) in s.adj.iter_mut().zip(&deg) {
            list.reserve_exact(d as usize);
        }
        for &(a, b, v) in &flat {
            let (a, b) = (a as usize, b as usize);
            if v == 0 {
                continue;
            }
            if a == b {
                s.diag[a] += v;
            } else {
                s.adj[a].push((b as u32, v));
                s.adj[b].push((a as u32, v));
            }
        }
        for list in &mut s.adj {
            list.sort_unstable_by_key(|e| e.0);
            // Coalesce duplicates in place (sums are order-independent).
            let mut out = 0;
            for i in 0..list.len() {
                if out > 0 && list[out - 1].0 == list[i].0 {
                    list[out - 1].1 += list[i].1;
                } else {
                    list[out] = list[i];
                    out += 1;
                }
            }
            list.truncate(out);
            list.shrink_to_fit();
        }
        s
    }

    /// Converts a dense matrix (drops zero pairs, keeps the diagonal).
    pub fn from_dense(m: &CorrelationMatrix) -> Self {
        let n = m.num_threads();
        let mut s = SparseCorrelation::zeros(n);
        for t in 0..n {
            s.diag[t] = m.get(t, t);
        }
        for (a, b, v) in m.pairs() {
            if v > 0 {
                s.adj[a].push((b as u32, v));
                s.adj[b].push((a as u32, v));
            }
        }
        // `pairs()` ascends lexicographically, so each list needs one sort
        // only for the lower-partner entries interleaved with upper ones.
        for list in &mut s.adj {
            list.sort_unstable_by_key(|e| e.0);
        }
        s
    }

    /// Expands into a dense matrix (for small-T equivalence checks).
    pub fn to_dense(&self) -> CorrelationMatrix {
        let mut m = CorrelationMatrix::zeros(self.n);
        for t in 0..self.n {
            m.set(t, t, self.diag[t]);
        }
        for (t, list) in self.adj.iter().enumerate() {
            for &(u, v) in list {
                if (u as usize) > t {
                    m.set(t, u as usize, v);
                }
            }
        }
        m
    }

    /// Number of threads covered.
    pub fn num_threads(&self) -> usize {
        self.n
    }

    /// The non-zero partners of `t`, sorted ascending: `(partner, value)`.
    pub fn neighbors(&self, t: usize) -> &[(u32, u64)] {
        &self.adj[t]
    }

    /// The correlation of a thread pair (diagonal: own page count).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, a: usize, b: usize) -> u64 {
        if a == b {
            self.diag[a]
        } else {
            assert!(a < self.n && b < self.n, "index out of range");
            list_get(&self.adj[a], b as u32)
        }
    }

    /// Sets both symmetric entries (zero removes the pair).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, a: usize, b: usize, v: u64) {
        assert!(a < self.n && b < self.n, "index out of range");
        if a == b {
            self.diag[a] = v;
        } else {
            list_set(&mut self.adj[a], b as u32, v);
            list_set(&mut self.adj[b], a as u32, v);
        }
    }

    /// Adds `v` to both symmetric entries.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn add(&mut self, a: usize, b: usize, v: u64) {
        assert!(a < self.n && b < self.n, "index out of range");
        if v == 0 {
            return;
        }
        if a == b {
            self.diag[a] += v;
        } else {
            list_add(&mut self.adj[a], b as u32, v);
            list_add(&mut self.adj[b], a as u32, v);
        }
    }

    /// Accumulates another store (elementwise sum, diagonal included) by
    /// merging sorted lists in `O(E₁ + E₂)`.
    ///
    /// # Panics
    ///
    /// Panics if the stores cover different thread counts.
    pub fn merge(&mut self, other: &SparseCorrelation) {
        assert_eq!(self.n, other.n, "stores must cover the same threads");
        for (d, o) in self.diag.iter_mut().zip(&other.diag) {
            *d += o;
        }
        for t in 0..self.n {
            if other.adj[t].is_empty() {
                continue;
            }
            let mine = &self.adj[t];
            let theirs = &other.adj[t];
            let mut merged = Vec::with_capacity(mine.len() + theirs.len());
            let (mut i, mut j) = (0, 0);
            while i < mine.len() || j < theirs.len() {
                match (mine.get(i), theirs.get(j)) {
                    (Some(&(a, va)), Some(&(b, vb))) => {
                        if a == b {
                            merged.push((a, va + vb));
                            i += 1;
                            j += 1;
                        } else if a < b {
                            merged.push((a, va));
                            i += 1;
                        } else {
                            merged.push((b, vb));
                            j += 1;
                        }
                    }
                    (Some(&e), None) => {
                        merged.push(e);
                        i += 1;
                    }
                    (None, Some(&e)) => {
                        merged.push(e);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            self.adj[t] = merged;
        }
    }

    /// Number of non-zero unordered pairs.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Normalized L1 divergence against `other` — bit-identical to
    /// [`correlation_delta`](crate::correlation_delta) on dense
    /// expansions of the same data (`u64` sums commute; zero pairs
    /// contribute nothing; one final `f64` division).
    ///
    /// # Panics
    ///
    /// Panics if the stores cover different thread counts.
    pub fn delta(&self, other: &SparseCorrelation) -> f64 {
        assert_eq!(self.n, other.n, "stores must cover the same threads");
        let mut diff = 0u64;
        let mut mass = 0u64;
        for t in 0..self.n {
            // Walk the union of both upper-partner lists.
            let mine = &self.adj[t];
            let theirs = &other.adj[t];
            let mut i = mine.partition_point(|e| (e.0 as usize) <= t);
            let mut j = theirs.partition_point(|e| (e.0 as usize) <= t);
            while i < mine.len() || j < theirs.len() {
                let (va, vb) = match (mine.get(i), theirs.get(j)) {
                    (Some(&(a, va)), Some(&(b, vb))) => {
                        if a == b {
                            i += 1;
                            j += 1;
                            (va, vb)
                        } else if a < b {
                            i += 1;
                            (va, 0)
                        } else {
                            j += 1;
                            (0, vb)
                        }
                    }
                    (Some(&(_, va)), None) => {
                        i += 1;
                        (va, 0)
                    }
                    (None, Some(&(_, vb))) => {
                        j += 1;
                        (0, vb)
                    }
                    (None, None) => unreachable!(),
                };
                diff += va.abs_diff(vb);
                mass += va + vb;
            }
        }
        if mass == 0 {
            0.0
        } else {
            (diff as f64 / mass as f64).min(1.0)
        }
    }
}

impl fmt::Display for SparseCorrelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sparse correlation: {} threads, {} edges",
            self.n,
            self.edge_count()
        )
    }
}

impl CorrelationStore for SparseCorrelation {
    type Aged = SparseAged;

    fn zeros(n: usize) -> Self {
        SparseCorrelation::zeros(n)
    }

    fn num_threads(&self) -> usize {
        self.num_threads()
    }

    fn get(&self, a: usize, b: usize) -> u64 {
        self.get(a, b)
    }

    fn set(&mut self, a: usize, b: usize, v: u64) {
        self.set(a, b, v);
    }

    fn add(&mut self, a: usize, b: usize, v: u64) {
        self.add(a, b, v);
    }

    fn merge(&mut self, other: &Self) {
        self.merge(other);
    }

    fn delta(&self, other: &Self) -> f64 {
        self.delta(other)
    }

    fn for_each_edge(&self, mut f: impl FnMut(usize, usize, u64)) {
        for (t, list) in self.adj.iter().enumerate() {
            let from = list.partition_point(|e| (e.0 as usize) <= t);
            for &(u, v) in &list[from..] {
                f(t, u as usize, v);
            }
        }
    }

    fn for_each_neighbor(&self, t: usize, mut f: impl FnMut(usize, u64)) {
        for &(u, v) in &self.adj[t] {
            f(u as usize, v);
        }
    }

    fn edge_count(&self) -> usize {
        self.edge_count()
    }
}

/// Exponentially aged accumulation over a [`SparseCorrelation`] — the
/// sparse twin of [`AgedCorrelation`], same arithmetic per present pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseAged {
    n: usize,
    decay: f64,
    rounds: usize,
    diag: Vec<f64>,
    adj: Vec<Vec<(u32, f64)>>,
}

impl SparseAged {
    /// Creates an empty accumulator over `n` threads with retention factor
    /// `decay` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= decay < 1.0`.
    pub fn new(n: usize, decay: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&decay),
            "decay must be in [0, 1), got {decay}"
        );
        SparseAged {
            n,
            decay,
            rounds: 0,
            diag: vec![0.0; n],
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of threads covered.
    pub fn num_threads(&self) -> usize {
        self.n
    }

    /// Number of observations folded in so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The aged value for one pair.
    pub fn get(&self, a: usize, b: usize) -> f64 {
        if a == b {
            self.diag[a]
        } else {
            match self.adj[a].binary_search_by_key(&(b as u32), |e| e.0) {
                Ok(pos) => self.adj[a][pos].1,
                Err(_) => 0.0,
            }
        }
    }

    /// Number of pairs currently held (memory proxy for compaction tests).
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Folds in a new tracking round: per pair present on either side,
    /// `val = val * decay + round` — the exact dense recurrence. Pairs the
    /// decay underflows to exactly `0.0` are dropped (lossless: the dense
    /// recurrence keeps them at `0.0` forever after).
    ///
    /// # Panics
    ///
    /// Panics if the round covers a different thread count.
    pub fn observe(&mut self, round: &SparseCorrelation) {
        assert_eq!(round.num_threads(), self.n, "thread counts differ");
        for t in 0..self.n {
            self.diag[t] = self.diag[t] * self.decay + round.diag[t] as f64;
            let mine = std::mem::take(&mut self.adj[t]);
            let theirs = round.neighbors(t);
            let mut merged = Vec::with_capacity(mine.len().max(theirs.len()));
            let (mut i, mut j) = (0, 0);
            while i < mine.len() || j < theirs.len() {
                let (key, next) = match (mine.get(i), theirs.get(j)) {
                    (Some(&(a, va)), Some(&(b, vb))) => {
                        if a == b {
                            i += 1;
                            j += 1;
                            (a, va * self.decay + vb as f64)
                        } else if a < b {
                            i += 1;
                            (a, va * self.decay)
                        } else {
                            j += 1;
                            // 0.0 * decay + vb == vb exactly.
                            (b, vb as f64)
                        }
                    }
                    (Some(&(a, va)), None) => {
                        i += 1;
                        (a, va * self.decay)
                    }
                    (None, Some(&(b, vb))) => {
                        j += 1;
                        (b, vb as f64)
                    }
                    (None, None) => unreachable!(),
                };
                if next != 0.0 {
                    merged.push((key, next));
                }
            }
            self.adj[t] = merged;
        }
        self.rounds += 1;
    }

    /// Drops every pair whose aged value is below `min_value` — an explicit
    /// **approximation** for bounded-memory long runs (snapshots may differ
    /// from the dense accumulator by the dropped mass). The default
    /// [`observe`](SparseAged::observe) path never needs this: it only
    /// drops exact zeros. Returns the number of pairs dropped.
    pub fn compact(&mut self, min_value: f64) -> usize {
        let before: usize = self.adj.iter().map(Vec::len).sum();
        for list in &mut self.adj {
            list.retain(|&(_, v)| v >= min_value);
        }
        let after: usize = self.adj.iter().map(Vec::len).sum();
        (before - after) / 2
    }

    /// Rounds the aged values into a [`SparseCorrelation`] usable by the
    /// placement heuristics — same normalization and rounding as
    /// [`AgedCorrelation::snapshot`](crate::AgedCorrelation::snapshot).
    pub fn snapshot(&self) -> SparseCorrelation {
        let mut s = SparseCorrelation::zeros(self.n);
        let weight: f64 = (0..self.rounds).map(|r| self.decay.powi(r as i32)).sum();
        let scale = if weight > 0.0 { 1.0 / weight } else { 0.0 };
        for t in 0..self.n {
            s.diag[t] = (self.diag[t] * scale).round() as u64;
        }
        for t in 0..self.n {
            let from = self.adj[t].partition_point(|e| (e.0 as usize) <= t);
            for &(u, v) in &self.adj[t][from..] {
                let sv = (v * scale).round() as u64;
                if sv > 0 {
                    // Lower partners of `u` arrive in ascending `t` before
                    // `u`'s own upper partners: both lists stay sorted.
                    s.adj[t].push((u, sv));
                    s.adj[u as usize].push((t as u32, sv));
                }
            }
        }
        s
    }
}

impl fmt::Display for SparseAged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sparse aged correlation: {} threads, decay {}, {} rounds",
            self.n, self.decay, self.rounds
        )
    }
}

impl AgedStore<SparseCorrelation> for SparseAged {
    fn new(n: usize, decay: f64) -> Self {
        SparseAged::new(n, decay)
    }

    fn num_threads(&self) -> usize {
        self.num_threads()
    }

    fn rounds(&self) -> usize {
        self.rounds()
    }

    fn observe(&mut self, round: &SparseCorrelation) {
        self.observe(round);
    }

    fn snapshot(&self) -> SparseCorrelation {
        self.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aging::AgedCorrelation;
    use crate::delta::correlation_delta;
    use acorr_sim::DetRng;

    /// Mirrors a random operation stream into dense and sparse stores and
    /// checks byte-equal results at every step.
    fn random_equivalence(seed: u64, n: usize, steps: usize) {
        let mut rng = DetRng::new(seed);
        let mut dense = CorrelationMatrix::zeros(n);
        let mut sparse = SparseCorrelation::zeros(n);
        let mut dense_aged = AgedCorrelation::new(n, 0.5);
        let mut sparse_aged = SparseAged::new(n, 0.5);
        for _ in 0..steps {
            match rng.next_below(5) {
                0 => {
                    let a = rng.next_below(n as u64) as usize;
                    let b = rng.next_below(n as u64) as usize;
                    let v = rng.next_below(16);
                    dense.set(a, b, v);
                    sparse.set(a, b, v);
                }
                1 => {
                    let a = rng.next_below(n as u64) as usize;
                    let b = rng.next_below(n as u64) as usize;
                    let v = rng.next_below(16);
                    if a != b {
                        dense.set(a, b, dense.get(a, b) + v);
                    } else {
                        dense.set(a, a, dense.get(a, a) + v);
                    }
                    sparse.add(a, b, v);
                }
                2 => {
                    // Merge in a random round.
                    let mut round_d = CorrelationMatrix::zeros(n);
                    for _ in 0..rng.next_below(8) {
                        let a = rng.next_below(n as u64) as usize;
                        let b = rng.next_below(n as u64) as usize;
                        round_d.set(a, b, rng.next_below(9));
                    }
                    let round_s = SparseCorrelation::from_dense(&round_d);
                    dense.merge(&round_d);
                    sparse.merge(&round_s);
                }
                3 => {
                    dense_aged.observe(&dense);
                    sparse_aged.observe(&sparse);
                }
                _ => {
                    // Delta against a perturbed copy must agree bit-for-bit.
                    let mut other_d = dense.clone();
                    let a = rng.next_below(n as u64) as usize;
                    let b = rng.next_below(n as u64) as usize;
                    if a != b {
                        other_d.set(a, b, rng.next_below(32));
                    }
                    let other_s = SparseCorrelation::from_dense(&other_d);
                    let dd = correlation_delta(&dense, &other_d);
                    let ds = sparse.delta(&other_s);
                    assert_eq!(dd.to_bits(), ds.to_bits(), "delta bits diverged");
                }
            }
            assert_eq!(sparse.to_dense(), dense, "stores diverged");
        }
        // Aged accumulators agree bit-for-bit, value by value.
        assert_eq!(dense_aged.rounds(), sparse_aged.rounds());
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    dense_aged.get(a, b).to_bits(),
                    sparse_aged.get(a, b).to_bits(),
                    "aged ({a},{b}) diverged"
                );
            }
        }
        assert_eq!(sparse_aged.snapshot().to_dense(), dense_aged.snapshot());
    }

    #[test]
    fn random_streams_match_dense_byte_for_byte() {
        for seed in 0..6 {
            random_equivalence(seed, 12, 120);
        }
    }

    #[test]
    fn set_get_add_and_removal() {
        let mut s = SparseCorrelation::zeros(5);
        s.set(1, 4, 9);
        s.add(4, 1, 1);
        assert_eq!(s.get(1, 4), 10);
        assert_eq!(s.edge_count(), 1);
        s.set(4, 1, 0);
        assert_eq!(s.get(1, 4), 0);
        assert_eq!(s.edge_count(), 0, "zero removes the pair");
        s.set(2, 2, 5);
        assert_eq!(s.get(2, 2), 5);
    }

    #[test]
    fn from_edges_aggregates_in_any_order() {
        let fwd = SparseCorrelation::from_edges(4, vec![(0, 1, 2), (1, 0, 3), (2, 3, 1)]);
        let rev = SparseCorrelation::from_edges(4, vec![(2, 3, 1), (0, 1, 3), (0, 1, 2)]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.get(0, 1), 5);
        let mut edges = Vec::new();
        CorrelationStore::for_each_edge(&fwd, |a, b, v| edges.push((a, b, v)));
        assert_eq!(edges, vec![(0, 1, 5), (2, 3, 1)]);
    }

    #[test]
    fn dense_round_trip() {
        let mut m = CorrelationMatrix::zeros(6);
        m.set(0, 3, 4);
        m.set(3, 5, 2);
        m.set(2, 2, 9);
        let s = SparseCorrelation::from_dense(&m);
        assert_eq!(s.to_dense(), m);
        assert_eq!(s.neighbors(3), &[(0, 4), (5, 2)]);
    }

    #[test]
    fn aged_compaction_drops_decayed_edges() {
        let mut aged = SparseAged::new(4, 0.5);
        let mut round = SparseCorrelation::zeros(4);
        round.set(0, 1, 100);
        aged.observe(&round);
        let quiet = SparseCorrelation::zeros(4);
        for _ in 0..20 {
            aged.observe(&quiet);
        }
        assert_eq!(aged.edge_count(), 1, "still decaying, still held");
        assert!(aged.get(0, 1) > 0.0);
        assert_eq!(aged.compact(1e-3), 1);
        assert_eq!(aged.edge_count(), 0);
        assert_eq!(aged.get(0, 1), 0.0);
    }

    #[test]
    fn aged_underflow_drop_is_exact() {
        // Exact-zero drops are lossless: 0.0 is absorbing under the dense
        // recurrence too.
        let mut aged = SparseAged::new(2, 0.0);
        let mut round = SparseCorrelation::zeros(2);
        round.set(0, 1, 7);
        aged.observe(&round);
        assert_eq!(aged.edge_count(), 1);
        // decay = 0.0 underflows the edge on the next quiet round.
        aged.observe(&SparseCorrelation::zeros(2));
        assert_eq!(aged.edge_count(), 0);
        assert_eq!(aged.get(0, 1), 0.0);
    }

    #[test]
    fn merge_is_commutative() {
        let a = SparseCorrelation::from_edges(5, vec![(0, 1, 3), (2, 4, 7)]);
        let b = SparseCorrelation::from_edges(5, vec![(0, 1, 1), (1, 3, 2)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get(0, 1), 4);
    }

    #[test]
    #[should_panic(expected = "same threads")]
    fn merge_shape_mismatch_panics() {
        SparseCorrelation::zeros(2).merge(&SparseCorrelation::zeros(3));
    }

    #[test]
    fn display_summarizes() {
        let s = SparseCorrelation::from_edges(3, vec![(0, 2, 1)]);
        assert!(s.to_string().contains("3 threads, 1 edges"));
        assert!(SparseAged::new(3, 0.25).to_string().contains("3 threads"));
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use crate::aging::AgedCorrelation;
    use crate::delta::correlation_delta;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary update/merge/aging/delta streams keep sparse and dense
        /// stores byte-equal (snapshots, deltas and aged values included).
        #[test]
        fn sparse_equals_dense_on_random_streams(
            ops in proptest::collection::vec((0usize..8, 0usize..8, 0u64..32), 0..150),
            decay in 0.0f64..0.99,
        ) {
            let n = 8;
            let mut dense = CorrelationMatrix::zeros(n);
            let mut sparse = SparseCorrelation::zeros(n);
            let mut dense_aged = AgedCorrelation::new(n, decay);
            let mut sparse_aged = SparseAged::new(n, decay);
            for (i, (a, b, v)) in ops.iter().copied().enumerate() {
                match i % 3 {
                    0 => {
                        dense.set(a, b, v);
                        sparse.set(a, b, v);
                    }
                    1 => {
                        if a == b {
                            dense.set(a, a, dense.get(a, a) + v);
                        } else {
                            dense.set(a, b, dense.get(a, b) + v);
                        }
                        sparse.add(a, b, v);
                    }
                    _ => {
                        dense_aged.observe(&dense);
                        sparse_aged.observe(&sparse);
                    }
                }
                prop_assert_eq!(sparse.to_dense(), dense.clone());
            }
            let ds = sparse.delta(&SparseCorrelation::from_dense(&dense));
            prop_assert_eq!(ds.to_bits(), correlation_delta(&dense, &dense).to_bits());
            prop_assert_eq!(
                sparse_aged.snapshot().to_dense(),
                dense_aged.snapshot()
            );
        }
    }
}
