//! Sharing-structure analysis of correlation maps.
//!
//! §3 and §5 of the paper read correlation maps *by eye*: nearest-neighbor
//! diagonals mean stretch is optimal, discrete thread blocks mean the block
//! size must divide the per-node thread count, uniform backgrounds mean no
//! placement helps. This module mechanizes that judgement so a runtime
//! system can act on tracked correlations without a human in the loop —
//! the "rough guess" §3 says a runtime could make.

use crate::correlation::CorrelationMatrix;
use std::fmt;

/// A machine judgement of a correlation map's dominant structure.
#[derive(Debug, Clone, PartialEq)]
pub enum Structure {
    /// No meaningful off-diagonal sharing.
    Independent,
    /// Sharing concentrated within `distance` of the diagonal
    /// (nearest-neighbor patterns; stretch with block size ≥ distance is
    /// near-optimal).
    NearestNeighbor {
        /// Maximum thread distance carrying significant sharing.
        distance: usize,
    },
    /// Sharing concentrated in contiguous blocks of `block` threads
    /// (placement must keep blocks whole: `block` should divide the
    /// per-node thread count).
    Blocked {
        /// The detected block size.
        block: usize,
    },
    /// Sharing spread broadly over all pairs; no placement avoids it.
    AllToAll,
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Structure::Independent => write!(f, "independent"),
            Structure::NearestNeighbor { distance } => {
                write!(f, "nearest-neighbor (distance {distance})")
            }
            Structure::Blocked { block } => write!(f, "blocked ({block} threads)"),
            Structure::AllToAll => write!(f, "all-to-all"),
        }
    }
}

/// Summary statistics of a correlation map.
#[derive(Debug, Clone, PartialEq)]
pub struct MapProfile {
    /// The detected dominant structure.
    pub structure: Structure,
    /// Fraction of total off-diagonal mass within distance 1 of the
    /// diagonal.
    pub neighbor_fraction: f64,
    /// Fraction of thread pairs with any sharing at all.
    pub density: f64,
    /// Mean off-diagonal correlation over *sharing* pairs.
    pub mean_sharing: f64,
}

impl fmt::Display for MapProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | neighbor mass {:.0}% | density {:.0}% | mean sharing {:.1}",
            self.structure,
            self.neighbor_fraction * 100.0,
            self.density * 100.0,
            self.mean_sharing
        )
    }
}

/// Total off-diagonal mass of unordered pairs at exactly thread distance
/// `d`.
fn mass_at_distance(corr: &CorrelationMatrix, d: usize) -> u64 {
    let n = corr.num_threads();
    (0..n.saturating_sub(d)).map(|a| corr.get(a, a + d)).sum()
}

/// Detects an aligned contiguous block size: the smallest divisor `b` such
/// that (i) ≥ 70% of the mass falls inside aligned blocks and (ii) almost
/// no mass crosses an aligned boundary at distance < `b` — the clean-edge
/// signature distinguishing true blocks from diagonal bands (a chain has
/// boundary-crossing neighbor pairs; blocks do not).
fn best_block(corr: &CorrelationMatrix) -> Option<usize> {
    let n = corr.num_threads();
    let total: u64 = corr.pairs().map(|(_, _, v)| v).sum();
    if total == 0 {
        return None;
    }
    let mut b = 2;
    while b <= n / 2 {
        if n.is_multiple_of(b) {
            // Contrast: mean in-block pair value must dominate the mean
            // cross-block pair value (robust to broad weak backgrounds,
            // like LU's perimeter sharing).
            let (mut in_mass, mut in_pairs) = (0u64, 0u64);
            let (mut cross_mass, mut cross_pairs) = (0u64, 0u64);
            for (a, c, v) in corr.pairs() {
                if a / b == c / b {
                    in_mass += v;
                    in_pairs += 1;
                } else {
                    cross_mass += v;
                    cross_pairs += 1;
                }
            }
            let in_mean = in_mass as f64 / in_pairs.max(1) as f64;
            let cross_mean = cross_mass as f64 / cross_pairs.max(1) as f64;
            // Edge sharpness at distance 1: aligned boundaries must be
            // clean (a chain or smooth band has strong boundary-crossing
            // neighbors and fails; true blocks pass).
            let (mut d1_in, mut d1_in_n) = (0u64, 0u64);
            let (mut d1_cross, mut d1_cross_n) = (0u64, 0u64);
            for a in 0..n - 1 {
                let v = corr.get(a, a + 1);
                if a / b == (a + 1) / b {
                    d1_in += v;
                    d1_in_n += 1;
                } else {
                    d1_cross += v;
                    d1_cross_n += 1;
                }
            }
            let d1_in_mean = d1_in as f64 / d1_in_n.max(1) as f64;
            let d1_cross_mean = d1_cross as f64 / d1_cross_n.max(1) as f64;
            let contrast_ok = in_mean > 0.0 && in_mean >= 4.0 * cross_mean;
            let edge_ok = d1_in_mean > 0.0 && d1_cross_mean <= 0.25 * d1_in_mean;
            if contrast_ok && edge_ok {
                return Some(b);
            }
        }
        b += 1;
    }
    None
}

/// Profiles a correlation map: classifies its structure and computes the
/// summary statistics above.
///
/// The classification rules mirror how §3 reads Table 3:
///
/// 1. no off-diagonal mass → [`Structure::Independent`];
/// 2. ≥ 80% of mass within a small band around the diagonal →
///    [`Structure::NearestNeighbor`];
/// 3. a divisor block size capturing ≥ 70% of mass →
///    [`Structure::Blocked`];
/// 4. otherwise → [`Structure::AllToAll`].
///
/// ```
/// use acorr_track::{profile_map, CorrelationMatrix, Structure};
/// let mut chain = CorrelationMatrix::zeros(8);
/// for i in 0..7 { chain.set(i, i + 1, 5); }
/// let p = profile_map(&chain);
/// assert_eq!(p.structure, Structure::NearestNeighbor { distance: 1 });
/// ```
pub fn profile_map(corr: &CorrelationMatrix) -> MapProfile {
    let n = corr.num_threads();
    let total: u64 = corr.pairs().map(|(_, _, v)| v).sum();
    let sharing_pairs = corr.pairs().filter(|&(_, _, v)| v > 0).count();
    let all_pairs = n * (n - 1) / 2;
    let density = if all_pairs == 0 {
        0.0
    } else {
        sharing_pairs as f64 / all_pairs as f64
    };
    let mean_sharing = if sharing_pairs == 0 {
        0.0
    } else {
        total as f64 / sharing_pairs as f64
    };
    let neighbor_fraction = if total == 0 {
        0.0
    } else {
        mass_at_distance(corr, 1) as f64 / total as f64
    };

    let structure = if total == 0 {
        Structure::Independent
    } else if let Some(block) = best_block(corr) {
        // Clean aligned-block structure takes precedence: small blocks are
        // also near-diagonal, but their hard boundaries distinguish them.
        Structure::Blocked { block }
    } else {
        // Band test: smallest distance band holding 80% of the mass.
        let mut cumulative = 0u64;
        let mut band = None;
        for d in 1..n {
            cumulative += mass_at_distance(corr, d);
            if cumulative as f64 >= 0.8 * total as f64 {
                band = Some(d);
                break;
            }
        }
        let band = band.unwrap_or(n - 1);
        if band <= (n / 8).max(1) {
            Structure::NearestNeighbor { distance: band }
        } else {
            Structure::AllToAll
        }
    };
    MapProfile {
        structure,
        neighbor_fraction,
        density,
        mean_sharing,
    }
}

/// Suggests the per-node thread counts (divisors of `threads`) compatible
/// with the detected structure — §3's "an eight-node configuration would
/// probably have much more communication than a four-node configuration"
/// judgement, mechanized.
///
/// For blocked sharing, a node size is compatible when it is a multiple of
/// the block; for nearest-neighbor, any node size ≥ 2·distance works; for
/// all-to-all or independent sharing every size is equivalent.
pub fn compatible_node_sizes(profile: &MapProfile, threads: usize) -> Vec<usize> {
    let divisors: Vec<usize> = (1..=threads)
        .filter(|d| threads.is_multiple_of(*d))
        .collect();
    match profile.structure {
        Structure::Blocked { block } => divisors.into_iter().filter(|&d| d % block == 0).collect(),
        Structure::NearestNeighbor { distance } => divisors
            .into_iter()
            .filter(|&d| d >= 2 * distance)
            .collect(),
        Structure::Independent | Structure::AllToAll => divisors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize, w: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for i in 0..n - 1 {
            c.set(i, i + 1, w);
        }
        c
    }

    fn blocks(n: usize, b: usize, w: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for d in (a + 1)..n {
                if a / b == d / b {
                    c.set(a, d, w);
                }
            }
        }
        c
    }

    fn uniform(n: usize, w: u64) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for d in (a + 1)..n {
                c.set(a, d, w);
            }
        }
        c
    }

    #[test]
    fn classifies_chain_as_nearest_neighbor() {
        let p = profile_map(&chain(32, 4));
        assert_eq!(p.structure, Structure::NearestNeighbor { distance: 1 });
        assert!((p.neighbor_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn classifies_blocks_of_each_size() {
        for b in [4usize, 8, 16] {
            let p = profile_map(&blocks(32, b, 3));
            assert_eq!(p.structure, Structure::Blocked { block: b }, "size {b}");
        }
    }

    #[test]
    fn classifies_uniform_as_all_to_all() {
        let p = profile_map(&uniform(32, 2));
        assert_eq!(p.structure, Structure::AllToAll);
        assert_eq!(p.density, 1.0);
    }

    #[test]
    fn classifies_empty_as_independent() {
        let p = profile_map(&CorrelationMatrix::zeros(16));
        assert_eq!(p.structure, Structure::Independent);
        assert_eq!(p.density, 0.0);
        assert_eq!(p.mean_sharing, 0.0);
    }

    #[test]
    fn blocks_with_weak_background_still_detected() {
        // Ocean/LU style: blocks over a faint uniform background.
        let mut c = blocks(32, 8, 20);
        for a in 0..32 {
            for d in (a + 1)..32 {
                if c.get(a, d) == 0 {
                    c.set(a, d, 1);
                }
            }
        }
        let p = profile_map(&c);
        assert_eq!(p.structure, Structure::Blocked { block: 8 });
        assert_eq!(p.density, 1.0);
    }

    #[test]
    fn strong_background_flips_to_all_to_all() {
        let mut c = blocks(32, 8, 4);
        for a in 0..32 {
            for d in (a + 1)..32 {
                if c.get(a, d) == 0 {
                    c.set(a, d, 3);
                }
            }
        }
        assert_eq!(profile_map(&c).structure, Structure::AllToAll);
    }

    #[test]
    fn node_size_suggestions_follow_structure() {
        let blocked = profile_map(&blocks(32, 8, 3));
        assert_eq!(compatible_node_sizes(&blocked, 32), vec![8, 16, 32]);
        let nn = profile_map(&chain(32, 3));
        assert_eq!(
            compatible_node_sizes(&nn, 32),
            vec![2, 4, 8, 16, 32],
            "any node size ≥ 2 keeps most neighbor pairs internal"
        );
        let a2a = profile_map(&uniform(32, 1));
        assert_eq!(compatible_node_sizes(&a2a, 32).len(), 6);
    }

    #[test]
    fn display_formats() {
        let p = profile_map(&blocks(16, 4, 2));
        let s = p.to_string();
        assert!(s.contains("blocked (4 threads)"));
        assert_eq!(Structure::AllToAll.to_string(), "all-to-all");
        assert_eq!(
            Structure::NearestNeighbor { distance: 2 }.to_string(),
            "nearest-neighbor (distance 2)"
        );
        assert_eq!(Structure::Independent.to_string(), "independent");
    }
}
