//! Correlation maps.
//!
//! §3 of the paper: *"Correlation maps are grids that summarize correlations
//! between all pairs of threads ... the darkness of each point represents
//! the degree of sharing between the two threads."* This module renders a
//! [`CorrelationMatrix`] as:
//!
//! * ASCII art ([`render_ascii`]) — darkness ramp `" .:-=+*#%@"`, origin in
//!   the lower left as in the paper's Table 3, optionally overlaying the
//!   same-node "free zones" of Figure 3;
//! * PGM ([`render_pgm`]) — a portable graymap (P2) where darker pixels mean
//!   more sharing, viewable in any image tool;
//! * CSV ([`render_csv`]) — raw values for external plotting.

use crate::correlation::CorrelationMatrix;
use acorr_sim::Mapping;
use std::fmt::Write as _;

/// Darkness ramp for ASCII maps, lightest to darkest.
const RAMP: &[u8] = b" .:-=+*#%@";
/// Ramp used for same-node pairs when free zones are overlaid, so the node
/// squares of Figure 3 are visible regardless of the sharing intensity.
const FREE_RAMP: &[u8] = b"\x000123456789"; // index 0 replaced by the dot

/// Rendering options for ASCII maps.
#[derive(Debug, Clone, Default)]
pub struct MapStyle {
    /// When set, same-node thread pairs (the "free zones" of Figure 3) are
    /// marked: zero-sharing same-node cells print `·` instead of a blank.
    pub free_zones: Option<Mapping>,
    /// Scale shading against this value instead of the matrix maximum
    /// (useful to compare maps across thread counts or inputs).
    pub scale_max: Option<u64>,
}

fn shade(v: u64, max: u64) -> u8 {
    if max == 0 || v == 0 {
        return RAMP[0];
    }
    // Ceiling mapping so any nonzero value is visible and v == max lands on
    // the darkest shade.
    let idx = (v as usize * (RAMP.len() - 1)).div_ceil(max as usize);
    RAMP[idx.min(RAMP.len() - 1)]
}

/// Renders the correlation map as ASCII art with the origin at the lower
/// left (thread 0 is the bottom row and the leftmost column, matching the
/// paper's figures). The diagonal is included.
///
/// ```
/// use acorr_track::{render_ascii, CorrelationMatrix, MapStyle};
/// let mut c = CorrelationMatrix::zeros(3);
/// c.set(0, 1, 5);
/// let art = render_ascii(&c, &MapStyle::default());
/// assert_eq!(art.lines().count(), 3);
/// ```
pub fn render_ascii(corr: &CorrelationMatrix, style: &MapStyle) -> String {
    let n = corr.num_threads();
    let max = style.scale_max.unwrap_or_else(|| corr.max_off_diagonal());
    let mut out = String::with_capacity(n * (n + 1));
    for row in (0..n).rev() {
        for col in 0..n {
            let v = if row == col {
                // Shade the diagonal by the thread's own footprint so the
                // map shows it, like the paper's figures.
                corr.get(row, col).min(max)
            } else {
                corr.get(row, col)
            };
            let mut ch = shade(v, max) as char;
            if let Some(mapping) = &style.free_zones {
                if mapping.node_of(row) == mapping.node_of(col) {
                    // Same-node "free zone": dotted when empty, digit ramp
                    // otherwise, so the node squares stand out.
                    let idx = RAMP.iter().position(|&r| r as char == ch).unwrap_or(0);
                    ch = if idx == 0 {
                        '\u{b7}' // '·'
                    } else {
                        FREE_RAMP[idx] as char
                    };
                }
            }
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Renders the correlation map as a PGM (P2) image: darker = more sharing,
/// row 0 of the image is the *top*, so thread 0 appears at the lower left
/// when the image is displayed, as in the paper.
pub fn render_pgm(corr: &CorrelationMatrix) -> String {
    let n = corr.num_threads();
    let max = corr.max_off_diagonal().max(1);
    let mut out = String::new();
    let _ = writeln!(out, "P2");
    let _ = writeln!(out, "# correlation map, {n} threads, darker = more sharing");
    let _ = writeln!(out, "{n} {n}");
    let _ = writeln!(out, "255");
    for row in (0..n).rev() {
        let mut line = String::new();
        for col in 0..n {
            let v = corr.get(row, col).min(max);
            let gray = 255 - (v * 255 / max);
            if col > 0 {
                line.push(' ');
            }
            let _ = write!(line, "{gray}");
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders the correlation map as a standalone SVG image: one rect per
/// thread pair, darker fill = more sharing, thread 0 at the lower left as
/// in the paper's figures. When `style.free_zones` is set, same-node cells
/// are outlined, making Figure 3's node squares visible in the image.
pub fn render_svg(corr: &CorrelationMatrix, style: &MapStyle) -> String {
    const CELL: usize = 8;
    let n = corr.num_threads();
    let size = n * CELL;
    let max = style
        .scale_max
        .unwrap_or_else(|| corr.max_off_diagonal())
        .max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{size}\" height=\"{size}\" \
         viewBox=\"0 0 {size} {size}\">"
    );
    let _ = writeln!(
        out,
        "  <rect width=\"{size}\" height=\"{size}\" fill=\"white\"/>"
    );
    for row in 0..n {
        for col in 0..n {
            let v = corr.get(row, col).min(max);
            if v == 0 && style.free_zones.is_none() {
                continue;
            }
            let gray = 255 - (v * 255 / max) as u32;
            // Thread 0 at the lower left: flip rows.
            let y = (n - 1 - row) * CELL;
            let x = col * CELL;
            let outline = match &style.free_zones {
                Some(mapping) if mapping.node_of(row) == mapping.node_of(col) => {
                    " stroke=\"#d06000\" stroke-width=\"1\""
                }
                _ => "",
            };
            if v == 0 && outline.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "  <rect x=\"{x}\" y=\"{y}\" width=\"{CELL}\" height=\"{CELL}\" \
                 fill=\"rgb({gray},{gray},{gray})\"{outline}/>"
            );
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Renders the raw matrix as CSV (`n` rows of `n` comma-separated values,
/// row 0 first).
pub fn render_csv(corr: &CorrelationMatrix) -> String {
    let n = corr.num_threads();
    let mut out = String::new();
    for row in 0..n {
        for col in 0..n {
            if col > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", corr.get(row, col));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_sim::ClusterConfig;

    fn nearest_neighbor(n: usize) -> CorrelationMatrix {
        let mut c = CorrelationMatrix::zeros(n);
        for i in 0..n.saturating_sub(1) {
            c.set(i, i + 1, 4);
        }
        for i in 0..n {
            c.set(i, i, 8);
        }
        c
    }

    #[test]
    fn ascii_shape_and_orientation() {
        let c = nearest_neighbor(4);
        let art = render_ascii(&c, &MapStyle::default());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.chars().count() == 4));
        // Origin lower-left: thread 0's row is the LAST line; its neighbor
        // correlation (0,1) is dark, (0,3) is blank.
        let bottom: Vec<char> = lines[3].chars().collect();
        assert_eq!(bottom[3], ' ');
        assert_ne!(bottom[1], ' ');
    }

    #[test]
    fn shading_is_monotonic() {
        let mut c = CorrelationMatrix::zeros(3);
        c.set(0, 1, 1);
        c.set(0, 2, 10);
        let art = render_ascii(&c, &MapStyle::default());
        let bottom: Vec<char> = art.lines().last().unwrap().chars().collect();
        let ramp_pos = |ch: char| RAMP.iter().position(|&r| r as char == ch).unwrap();
        assert!(ramp_pos(bottom[2]) > ramp_pos(bottom[1]));
        assert_eq!(bottom[2], '@', "max value gets the darkest shade");
    }

    #[test]
    fn free_zones_mark_same_node_blanks() {
        let c = CorrelationMatrix::zeros(4);
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let style = MapStyle {
            free_zones: Some(Mapping::stretch(&cluster)),
            scale_max: None,
        };
        let art = render_ascii(&c, &style);
        let lines: Vec<&str> = art.lines().collect();
        // Bottom row = thread 0 (node 0 with thread 1): cells 0,1 dotted.
        let bottom: Vec<char> = lines[3].chars().collect();
        assert_eq!(bottom[0], '\u{b7}');
        assert_eq!(bottom[1], '\u{b7}');
        assert_eq!(bottom[2], ' ');
        assert_eq!(bottom[3], ' ');
    }

    #[test]
    fn fixed_scale_dims_weak_maps() {
        let mut c = CorrelationMatrix::zeros(2);
        c.set(0, 1, 2);
        let auto = render_ascii(&c, &MapStyle::default());
        let scaled = render_ascii(
            &c,
            &MapStyle {
                free_zones: None,
                scale_max: Some(100),
            },
        );
        assert!(auto.contains('@'));
        assert!(!scaled.contains('@'));
    }

    #[test]
    fn pgm_is_well_formed() {
        let c = nearest_neighbor(3);
        let pgm = render_pgm(&c);
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        let _comment = lines.next().unwrap();
        assert_eq!(lines.next(), Some("3 3"));
        assert_eq!(lines.next(), Some("255"));
        let pixels: Vec<Vec<u32>> = lines
            .map(|l| l.split(' ').map(|v| v.parse().unwrap()).collect())
            .collect();
        assert_eq!(pixels.len(), 3);
        assert!(pixels.iter().all(|r| r.len() == 3));
        // Dark (low) where sharing is high: (0,1) shares 4 of max 4 → 0.
        assert_eq!(pixels[2][1], 0);
        assert_eq!(pixels[2][2], 255);
    }

    #[test]
    fn svg_is_well_formed_and_oriented() {
        let c = nearest_neighbor(4);
        let svg = render_svg(&c, &MapStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // (0,1) is dark: a near-black rect exists at flipped-row y.
        assert!(svg.contains("fill=\"rgb(0,0,0)\""));
        // Zero cells are skipped: far fewer rects than n^2 + background.
        let rects = svg.matches("<rect").count();
        assert!(rects < 17, "{rects} rects");
    }

    #[test]
    fn svg_free_zones_outline_same_node_cells() {
        let c = nearest_neighbor(4);
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let style = MapStyle {
            free_zones: Some(Mapping::stretch(&cluster)),
            scale_max: None,
        };
        let svg = render_svg(&c, &style);
        // 2 nodes x (2x2 cells) = 8 outlined cells.
        assert_eq!(svg.matches("stroke=\"#d06000\"").count(), 8);
    }

    #[test]
    fn csv_round_trips_values() {
        let mut c = CorrelationMatrix::zeros(2);
        c.set(0, 1, 7);
        c.set(0, 0, 3);
        let csv = render_csv(&c);
        assert_eq!(csv, "3,7\n7,0\n");
    }

    #[test]
    fn empty_matrix_renders_blank() {
        let c = CorrelationMatrix::zeros(2);
        let art = render_ascii(&c, &MapStyle::default());
        assert_eq!(art, "  \n  \n");
    }
}
