//! Aging of correlation information.
//!
//! §1 of the paper notes that systems tracking access sets over time
//! *"accommodate changes in sharing patterns through the use of an aging
//! mechanism"*, and §7 plans to rely on periodic re-tracking for dynamic
//! applications. [`AgedCorrelation`] implements the standard exponential
//! decay: each new tracking round contributes fully while older rounds fade
//! geometrically, so a phase change overtakes stale affinities after a few
//! rounds.

use crate::correlation::CorrelationMatrix;
use std::fmt;

/// An exponentially aged accumulation of correlation matrices.
///
/// ```
/// use acorr_track::{AgedCorrelation, CorrelationMatrix};
/// let mut aged = AgedCorrelation::new(2, 0.5);
/// let mut phase = CorrelationMatrix::zeros(2);
/// phase.set(0, 1, 100);
/// aged.observe(&phase);
/// assert_eq!(aged.snapshot().get(0, 1), 100);
/// aged.observe(&CorrelationMatrix::zeros(2)); // sharing stopped
/// // Weighted history: (0*1 + 100*0.5) / (1 + 0.5) ≈ 33 — fading, not gone.
/// assert_eq!(aged.snapshot().get(0, 1), 33);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AgedCorrelation {
    n: usize,
    decay: f64,
    vals: Vec<f64>,
    rounds: usize,
}

impl AgedCorrelation {
    /// Creates an empty accumulator over `n` threads with retention factor
    /// `decay` in `[0, 1)`: after each new observation, old mass is worth
    /// `decay` of its previous weight (0 = only the latest round counts).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= decay < 1.0`.
    pub fn new(n: usize, decay: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&decay),
            "decay must be in [0, 1), got {decay}"
        );
        AgedCorrelation {
            n,
            decay,
            vals: vec![0.0; n * n],
            rounds: 0,
        }
    }

    /// Number of threads covered.
    pub fn num_threads(&self) -> usize {
        self.n
    }

    /// Number of observations folded in so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Folds in a new tracking round.
    ///
    /// # Panics
    ///
    /// Panics if the matrix covers a different thread count.
    pub fn observe(&mut self, round: &CorrelationMatrix) {
        assert_eq!(round.num_threads(), self.n, "thread counts differ");
        for a in 0..self.n {
            for b in 0..self.n {
                let idx = a * self.n + b;
                self.vals[idx] = self.vals[idx] * self.decay + round.get(a, b) as f64;
            }
        }
        self.rounds += 1;
    }

    /// The aged value for one pair.
    pub fn get(&self, a: usize, b: usize) -> f64 {
        self.vals[a * self.n + b]
    }

    /// Rounds the aged values into an integer [`CorrelationMatrix`] usable
    /// by the placement heuristics.
    pub fn snapshot(&self) -> CorrelationMatrix {
        let mut m = CorrelationMatrix::zeros(self.n);
        // Normalize by the geometric-series weight so a *stable* pattern
        // snapshots to its per-round magnitude regardless of round count.
        let weight: f64 = (0..self.rounds).map(|r| self.decay.powi(r as i32)).sum();
        let scale = if weight > 0.0 { 1.0 / weight } else { 0.0 };
        for a in 0..self.n {
            for b in a..self.n {
                m.set(a, b, (self.get(a, b) * scale).round() as u64);
            }
        }
        m
    }
}

impl fmt::Display for AgedCorrelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aged correlation: {} threads, decay {}, {} rounds",
            self.n, self.decay, self.rounds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(n: usize, a: usize, b: usize, v: u64) -> CorrelationMatrix {
        let mut m = CorrelationMatrix::zeros(n);
        m.set(a, b, v);
        m
    }

    #[test]
    fn stable_pattern_snapshots_to_itself() {
        let mut aged = AgedCorrelation::new(3, 0.5);
        for _ in 0..10 {
            aged.observe(&pair(3, 0, 1, 40));
        }
        let snap = aged.snapshot();
        assert_eq!(snap.get(0, 1), 40);
        assert_eq!(snap.get(1, 2), 0);
        assert_eq!(aged.rounds(), 10);
    }

    #[test]
    fn phase_change_overtakes_old_affinity() {
        let mut aged = AgedCorrelation::new(3, 0.5);
        for _ in 0..5 {
            aged.observe(&pair(3, 0, 1, 100));
        }
        // Sharing moves from (0,1) to (1,2).
        for _ in 0..3 {
            aged.observe(&pair(3, 1, 2, 100));
        }
        assert!(
            aged.get(1, 2) > aged.get(0, 1),
            "new phase {} should dominate old {}",
            aged.get(1, 2),
            aged.get(0, 1)
        );
        assert!(aged.get(0, 1) > 0.0, "old affinity fades, not vanishes");
    }

    #[test]
    fn zero_decay_is_latest_round_only() {
        let mut aged = AgedCorrelation::new(2, 0.0);
        aged.observe(&pair(2, 0, 1, 77));
        aged.observe(&pair(2, 0, 1, 3));
        assert_eq!(aged.snapshot().get(0, 1), 3);
    }

    #[test]
    fn empty_accumulator_snapshots_to_zero() {
        let aged = AgedCorrelation::new(2, 0.9);
        assert_eq!(aged.snapshot().get(0, 1), 0);
    }

    #[test]
    #[should_panic(expected = "decay must be in [0, 1)")]
    fn decay_of_one_rejected() {
        AgedCorrelation::new(2, 1.0);
    }

    #[test]
    #[should_panic(expected = "thread counts differ")]
    fn mismatched_observation_rejected() {
        AgedCorrelation::new(2, 0.5).observe(&CorrelationMatrix::zeros(3));
    }

    #[test]
    fn display_summarizes() {
        let aged = AgedCorrelation::new(4, 0.25);
        assert!(aged.to_string().contains("4 threads"));
    }
}
