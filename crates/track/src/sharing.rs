//! Sharing degree.
//!
//! Table 5 of the paper reports a per-application *sharing degree*: the
//! number of tracking faults divided by the number of distinct shared pages
//! touched per node — equivalently, *"the average number of local threads
//! that access distinct shared pages that are touched locally"*. SOR's 1.08
//! reflects boundary-row-only sharing; Water's 6.8 means almost all eight
//! local threads touch every locally-used page.

use acorr_mem::{AccessMatrix, FixedBitset};
use acorr_sim::Mapping;

/// Per-node unions of the threads' access bitmaps: which pages each node
/// touches at all.
///
/// # Panics
///
/// Panics if the mapping covers a different thread count than the matrix.
pub fn node_page_unions(access: &AccessMatrix, mapping: &Mapping) -> Vec<FixedBitset> {
    assert_eq!(
        access.num_threads(),
        mapping.num_threads(),
        "matrix and mapping must cover the same threads"
    );
    let mut unions: Vec<FixedBitset> = (0..mapping.num_nodes())
        .map(|_| FixedBitset::new(access.num_pages()))
        .collect();
    for t in 0..access.num_threads() {
        unions[mapping.node_of(t).idx()].union_with(access.bitmap(t));
    }
    unions
}

/// The sharing degree of Table 5: total per-thread page touches (= induced
/// tracking faults) divided by the total number of distinct pages touched
/// per node. Returns 0 when nothing was touched.
///
/// ```
/// use acorr_mem::{AccessMatrix, PageId};
/// use acorr_sim::{ClusterConfig, Mapping};
/// use acorr_track::sharing_degree;
/// // Two threads on one node, both touching the same page: degree 2.
/// let mut access = AccessMatrix::new(2, 4);
/// access.record(0, PageId(0));
/// access.record(1, PageId(0));
/// let cluster = ClusterConfig::new(1, 2)?;
/// let d = sharing_degree(&access, &Mapping::stretch(&cluster));
/// assert!((d - 2.0).abs() < 1e-12);
/// # Ok::<(), acorr_sim::TopologyError>(())
/// ```
pub fn sharing_degree(access: &AccessMatrix, mapping: &Mapping) -> f64 {
    let faults = access.total_observations();
    let distinct: usize = node_page_unions(access, mapping)
        .iter()
        .map(|u| u.count())
        .sum();
    if distinct == 0 {
        0.0
    } else {
        faults as f64 / distinct as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_mem::PageId;
    use acorr_sim::ClusterConfig;

    #[test]
    fn papers_worked_example() {
        // §4.2: t1 → {x}, t2 → {x,y}, t3 → {y,z} on one node: 5 faults over
        // 3 distinct pages = 1.67 ("1.7" in the paper).
        let mut access = AccessMatrix::new(3, 4);
        access.record(0, PageId(0));
        access.record(1, PageId(0));
        access.record(1, PageId(1));
        access.record(2, PageId(1));
        access.record(2, PageId(2));
        let cluster = ClusterConfig::new(1, 3).unwrap();
        let d = sharing_degree(&access, &Mapping::stretch(&cluster));
        assert!((d - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_threads_have_degree_one() {
        let mut access = AccessMatrix::new(4, 8);
        for t in 0..4 {
            access.record(t, PageId(t as u32));
            access.record(t, PageId(4 + t as u32));
        }
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let d = sharing_degree(&access, &Mapping::stretch(&cluster));
        assert_eq!(d, 1.0);
    }

    #[test]
    fn degree_depends_on_placement() {
        // Threads 0 and 1 share a page. Same node → 2 faults / 1 page = 2.
        // Different nodes → 2 faults / 2 pages = 1.
        let mut access = AccessMatrix::new(2, 2);
        access.record(0, PageId(0));
        access.record(1, PageId(0));
        let one = ClusterConfig::new(1, 2).unwrap();
        let two = ClusterConfig::new(2, 2).unwrap();
        assert_eq!(sharing_degree(&access, &Mapping::stretch(&one)), 2.0);
        assert_eq!(sharing_degree(&access, &Mapping::stretch(&two)), 1.0);
    }

    #[test]
    fn empty_access_gives_zero() {
        let access = AccessMatrix::new(2, 2);
        let cluster = ClusterConfig::new(1, 2).unwrap();
        assert_eq!(sharing_degree(&access, &Mapping::stretch(&cluster)), 0.0);
    }

    #[test]
    fn unions_cover_exactly_touched_pages() {
        let mut access = AccessMatrix::new(2, 4);
        access.record(0, PageId(0));
        access.record(1, PageId(3));
        let cluster = ClusterConfig::new(2, 2).unwrap();
        let unions = node_page_unions(&access, &Mapping::stretch(&cluster));
        assert!(unions[0].contains(0) && !unions[0].contains(3));
        assert!(unions[1].contains(3) && !unions[1].contains(0));
    }
}
