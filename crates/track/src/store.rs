//! The correlation-store abstraction behind dense and sparse backends.
//!
//! The paper's 64-thread experiments are served perfectly well by the dense
//! [`CorrelationMatrix`]; the ROADMAP's production-scale target (10⁵–10⁶
//! threads) is not — O(T²) memory alone is the wall. [`CorrelationStore`]
//! captures the surface every consumer actually uses (updates, merging,
//! aging, divergence, edge iteration), so small-T code paths stay on the
//! dense matrix **unchanged and bit-identical** while large-T paths select
//! [`SparseCorrelation`](crate::SparseCorrelation) behind the same calls.
//!
//! Contracts every implementation must honour:
//!
//! * Values are symmetric: `get(a, b) == get(b, a)`; the diagonal holds a
//!   thread's own page count and never participates in cut costs.
//! * [`for_each_edge`](CorrelationStore::for_each_edge) visits each
//!   **non-zero** off-diagonal pair exactly once as `(a, b, v)` with
//!   `a < b`, in ascending lexicographic order — deterministic, so every
//!   downstream sum and tie-break is reproducible.
//! * [`delta`](CorrelationStore::delta) computes the same normalized L1
//!   divergence as [`correlation_delta`](crate::correlation_delta): the
//!   `u64` diff/mass sums are order-independent and zero pairs contribute
//!   nothing, so dense and sparse backends return **bit-identical** `f64`s.

use crate::aging::AgedCorrelation;
use crate::correlation::CorrelationMatrix;
use crate::delta::correlation_delta;

/// Common surface of correlation backends (dense matrix, sparse adjacency).
pub trait CorrelationStore: Clone + PartialEq + std::fmt::Debug {
    /// The aged (exponentially decayed) accumulator paired with this store.
    type Aged: AgedStore<Self>;

    /// An empty store over `n` threads.
    fn zeros(n: usize) -> Self;

    /// Number of threads covered.
    fn num_threads(&self) -> usize;

    /// The correlation of a thread pair (diagonal: own page count).
    fn get(&self, a: usize, b: usize) -> u64;

    /// Sets both symmetric entries.
    fn set(&mut self, a: usize, b: usize, v: u64);

    /// Adds `v` to both symmetric entries.
    fn add(&mut self, a: usize, b: usize, v: u64) {
        if v > 0 {
            let cur = self.get(a, b);
            self.set(a, b, cur + v);
        }
    }

    /// Accumulates another round (elementwise sum, diagonal included).
    ///
    /// # Panics
    ///
    /// Panics if the stores cover different thread counts.
    fn merge(&mut self, other: &Self);

    /// Normalized L1 divergence against `other` — bit-identical to
    /// [`correlation_delta`](crate::correlation_delta) on the dense matrix.
    ///
    /// # Panics
    ///
    /// Panics if the stores cover different thread counts.
    fn delta(&self, other: &Self) -> f64;

    /// Visits every non-zero off-diagonal pair once, `a < b`, ascending.
    fn for_each_edge(&self, f: impl FnMut(usize, usize, u64));

    /// Visits every thread `u != t` with `get(t, u) > 0`, ascending `u`.
    fn for_each_neighbor(&self, t: usize, f: impl FnMut(usize, u64));

    /// Number of non-zero off-diagonal (unordered) pairs.
    fn edge_count(&self) -> usize {
        let mut count = 0;
        self.for_each_edge(|_, _, _| count += 1);
        count
    }

    /// Sum of all off-diagonal entries (ordered-pair convention).
    fn total_correlation(&self) -> u64 {
        let mut sum = 0;
        self.for_each_edge(|_, _, v| sum += 2 * v);
        sum
    }

    /// The largest off-diagonal correlation.
    fn max_off_diagonal(&self) -> u64 {
        let mut max = 0;
        self.for_each_edge(|_, _, v| max = max.max(v));
        max
    }
}

/// Exponentially aged accumulation over a [`CorrelationStore`].
///
/// The observe/snapshot arithmetic is pinned by
/// [`AgedCorrelation`](crate::AgedCorrelation): per present pair,
/// `val = val * decay + round`, and snapshots normalize by the
/// geometric-series weight before rounding. Sparse implementations apply
/// the identical `f64` operation sequence per stored edge (absent edges
/// are exact zeros under it), so snapshots are bit-identical.
pub trait AgedStore<C>: Clone + std::fmt::Debug {
    /// An empty accumulator over `n` threads with retention `decay`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= decay < 1.0`.
    fn new(n: usize, decay: f64) -> Self;

    /// Number of threads covered.
    fn num_threads(&self) -> usize;

    /// Number of observations folded in so far.
    fn rounds(&self) -> usize;

    /// Folds in a new tracking round.
    ///
    /// # Panics
    ///
    /// Panics if the round covers a different thread count.
    fn observe(&mut self, round: &C);

    /// Rounds the aged values into an integer store for the placement
    /// heuristics.
    fn snapshot(&self) -> C;
}

impl CorrelationStore for CorrelationMatrix {
    type Aged = AgedCorrelation;

    fn zeros(n: usize) -> Self {
        CorrelationMatrix::zeros(n)
    }

    fn num_threads(&self) -> usize {
        self.num_threads()
    }

    fn get(&self, a: usize, b: usize) -> u64 {
        self.get(a, b)
    }

    fn set(&mut self, a: usize, b: usize, v: u64) {
        self.set(a, b, v);
    }

    fn merge(&mut self, other: &Self) {
        self.merge(other);
    }

    fn delta(&self, other: &Self) -> f64 {
        correlation_delta(self, other)
    }

    fn for_each_edge(&self, mut f: impl FnMut(usize, usize, u64)) {
        for (a, b, v) in self.pairs() {
            if v > 0 {
                f(a, b, v);
            }
        }
    }

    fn for_each_neighbor(&self, t: usize, mut f: impl FnMut(usize, u64)) {
        for u in 0..self.num_threads() {
            if u != t {
                let v = self.get(t, u);
                if v > 0 {
                    f(u, v);
                }
            }
        }
    }

    fn total_correlation(&self) -> u64 {
        self.total_correlation()
    }

    fn max_off_diagonal(&self) -> u64 {
        self.max_off_diagonal()
    }
}

impl AgedStore<CorrelationMatrix> for AgedCorrelation {
    fn new(n: usize, decay: f64) -> Self {
        AgedCorrelation::new(n, decay)
    }

    fn num_threads(&self) -> usize {
        self.num_threads()
    }

    fn rounds(&self) -> usize {
        self.rounds()
    }

    fn observe(&mut self, round: &CorrelationMatrix) {
        self.observe(round);
    }

    fn snapshot(&self) -> CorrelationMatrix {
        self.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(n: usize, edges: &[(usize, usize, u64)]) -> CorrelationMatrix {
        let mut m = CorrelationMatrix::zeros(n);
        for &(a, b, v) in edges {
            m.set(a, b, v);
        }
        m
    }

    #[test]
    fn dense_edge_iteration_is_sorted_and_nonzero() {
        let m = dense(4, &[(0, 3, 2), (1, 2, 5)]);
        let mut seen = Vec::new();
        CorrelationStore::for_each_edge(&m, |a, b, v| seen.push((a, b, v)));
        assert_eq!(seen, vec![(0, 3, 2), (1, 2, 5)]);
        assert_eq!(CorrelationStore::edge_count(&m), 2);
    }

    #[test]
    fn dense_neighbors_skip_zeros_and_self() {
        let m = dense(4, &[(1, 0, 3), (1, 3, 4)]);
        let mut seen = Vec::new();
        m.for_each_neighbor(1, |u, v| seen.push((u, v)));
        assert_eq!(seen, vec![(0, 3), (3, 4)]);
    }

    #[test]
    fn trait_delta_matches_free_function() {
        let a = dense(5, &[(0, 1, 10), (2, 3, 4)]);
        let b = dense(5, &[(0, 1, 8), (3, 4, 4)]);
        assert_eq!(
            CorrelationStore::delta(&a, &b).to_bits(),
            correlation_delta(&a, &b).to_bits()
        );
    }

    #[test]
    fn trait_add_accumulates() {
        let mut m = <CorrelationMatrix as CorrelationStore>::zeros(3);
        m.add(0, 2, 4);
        m.add(2, 0, 1);
        assert_eq!(m.get(0, 2), 5);
    }

    #[test]
    fn trait_totals_match_inherent() {
        let m = dense(6, &[(0, 1, 1), (0, 5, 9), (2, 4, 3)]);
        assert_eq!(
            CorrelationStore::total_correlation(&m),
            m.total_correlation()
        );
        assert_eq!(CorrelationStore::max_off_diagonal(&m), 9);
    }
}
