//! # acorr-track — correlation analysis
//!
//! Everything the paper derives *from* tracked access information:
//!
//! * [`correlation`] — the [`CorrelationMatrix`]: for every thread pair, the
//!   number of shared pages both touch (§1's *thread correlation*).
//! * [`cut`] — *cut costs* (§2): the pairwise correlation mass crossing node
//!   boundaries under a given [`Mapping`](acorr_sim::Mapping), the paper's
//!   predictor of communication.
//! * [`map`] — *correlation maps* (§3): renderings of the full pairwise
//!   grid (ASCII, PGM, CSV), optionally overlaying the same-node "free
//!   zones" of Figure 3.
//! * [`sharing`] — the *sharing degree* of Table 5 and per-node access
//!   unions.
//! * [`aging`] — exponential aging of correlations across tracking rounds,
//!   the adaptation mechanism prior systems used and the paper's future-work
//!   hook for dynamic applications.
//! * [`store`] / [`sparse`] — the [`CorrelationStore`] abstraction and the
//!   [`SparseCorrelation`] backend: `O(T + E)` adjacency storage with
//!   aging-aware compaction, bit-identical to the dense matrix on the same
//!   data, for the ROADMAP's 10⁵–10⁶-thread scale.
//! * [`structure`] — machine classification of a map's dominant sharing
//!   structure (nearest-neighbor / blocked / all-to-all) with a node-size
//!   advisor, mechanizing §3's by-eye judgement.
//! * [`pages`] — per-page sharer counts, hot-page ranking and histograms:
//!   the page-level complement to the thread-pair view.
//!
//! ```
//! use acorr_mem::{AccessMatrix, PageId};
//! use acorr_sim::{ClusterConfig, Mapping};
//! use acorr_track::{cut_cost, CorrelationMatrix};
//!
//! let mut access = AccessMatrix::new(4, 8);
//! for t in 0..4 {
//!     access.record(t, PageId(0)); // everyone shares page 0
//! }
//! let corr = CorrelationMatrix::from_access(&access);
//! let cluster = ClusterConfig::new(2, 4)?;
//! let together = Mapping::stretch(&cluster);
//! assert_eq!(cut_cost(&corr, &together), 8); // 4 cross-node ordered pairs × 1 page... × 2
//! # Ok::<(), acorr_sim::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
pub mod correlation;
pub mod cut;
pub mod delta;
pub mod estimate;
pub mod map;
pub mod pages;
pub mod sharing;
pub mod sparse;
pub mod store;
pub mod structure;

pub use aging::AgedCorrelation;
pub use correlation::CorrelationMatrix;
pub use cut::{cut_cost, internal_cost, pair_is_cut};
pub use delta::{correlation_delta, has_shifted};
pub use estimate::MissModel;
pub use map::{render_ascii, render_csv, render_pgm, render_svg, MapStyle};
pub use pages::{
    hottest_pages, page_report, page_sharers, sharer_histogram, sharers_of, PageReport, PageSharers,
};
pub use sharing::{node_page_unions, sharing_degree};
pub use sparse::{SparseAged, SparseCorrelation};
pub use store::{AgedStore, CorrelationStore};
pub use structure::{compatible_node_sizes, profile_map, MapProfile, Structure};
