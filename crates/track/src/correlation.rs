//! Thread correlation matrices.
//!
//! §1 of the paper: *"We define thread correlation as the number of pages
//! shared in common between a pair of threads."* The matrix is symmetric;
//! its diagonal holds each thread's own page count (used for map shading
//! and sharing statistics, never for cut costs).

use acorr_mem::AccessMatrix;
use std::fmt;

/// Symmetric matrix of pairwise thread correlations.
///
/// ```
/// use acorr_mem::{AccessMatrix, PageId};
/// use acorr_track::CorrelationMatrix;
/// let mut access = AccessMatrix::new(2, 4);
/// access.record(0, PageId(0));
/// access.record(0, PageId(1));
/// access.record(1, PageId(1));
/// let corr = CorrelationMatrix::from_access(&access);
/// assert_eq!(corr.get(0, 1), 1);
/// assert_eq!(corr.get(0, 0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelationMatrix {
    n: usize,
    vals: Vec<u64>,
}

impl CorrelationMatrix {
    /// A zero matrix over `n` threads.
    pub fn zeros(n: usize) -> Self {
        CorrelationMatrix {
            n,
            vals: vec![0; n * n],
        }
    }

    /// Builds the matrix from tracked access bitmaps.
    pub fn from_access(access: &AccessMatrix) -> Self {
        let n = access.num_threads();
        let mut m = CorrelationMatrix::zeros(n);
        for a in 0..n {
            for b in a..n {
                let v = access.shared_pages(a, b) as u64;
                m.set(a, b, v);
            }
        }
        m
    }

    /// Builds a matrix from explicit values (row-major, must be symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != n * n` or the data is not symmetric.
    pub fn from_raw(n: usize, vals: Vec<u64>) -> Self {
        assert_eq!(vals.len(), n * n, "matrix must be n x n");
        let m = CorrelationMatrix { n, vals };
        for a in 0..n {
            for b in 0..a {
                assert_eq!(m.get(a, b), m.get(b, a), "matrix must be symmetric");
            }
        }
        m
    }

    /// Parses a matrix from the CSV produced by
    /// [`render_csv`](crate::render_csv): `n` lines of `n` comma-separated
    /// integers.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed cell, ragged row,
    /// or asymmetry.
    pub fn from_csv(csv: &str) -> Result<Self, String> {
        let rows: Vec<&str> = csv.lines().filter(|l| !l.trim().is_empty()).collect();
        let n = rows.len();
        let mut vals = Vec::with_capacity(n * n);
        for (r, line) in rows.iter().enumerate() {
            let cells: Vec<&str> = line.split(',').collect();
            if cells.len() != n {
                return Err(format!("row {r} has {} cells, expected {n}", cells.len()));
            }
            for (c, cell) in cells.iter().enumerate() {
                let v: u64 = cell
                    .trim()
                    .parse()
                    .map_err(|e| format!("row {r}, col {c}: {e}"))?;
                vals.push(v);
            }
        }
        let m = CorrelationMatrix { n, vals };
        for a in 0..n {
            for b in 0..a {
                if m.get(a, b) != m.get(b, a) {
                    return Err(format!("asymmetry at ({a},{b})"));
                }
            }
        }
        Ok(m)
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.n
    }

    /// The correlation of a thread pair (diagonal: own page count).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, a: usize, b: usize) -> u64 {
        self.vals[a * self.n + b]
    }

    /// Sets both symmetric entries.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn set(&mut self, a: usize, b: usize, v: u64) {
        self.vals[a * self.n + b] = v;
        self.vals[b * self.n + a] = v;
    }

    /// Accumulates another tracked round into this matrix (elementwise
    /// sum, diagonal included). Partial rounds — per-node shards, or a
    /// re-track split across barrier intervals — therefore combine in any
    /// order: merging is commutative and associative.
    ///
    /// # Panics
    ///
    /// Panics if the matrices cover different thread counts.
    pub fn merge(&mut self, other: &CorrelationMatrix) {
        assert_eq!(self.n, other.n, "matrices must cover the same threads");
        for (v, o) in self.vals.iter_mut().zip(&other.vals) {
            *v += o;
        }
    }

    /// The largest off-diagonal correlation (used to scale map shading).
    pub fn max_off_diagonal(&self) -> u64 {
        let mut max = 0;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    max = max.max(self.get(a, b));
                }
            }
        }
        max
    }

    /// Sum of all off-diagonal entries (ordered pairs — the paper's
    /// "`n²` terms").
    pub fn total_correlation(&self) -> u64 {
        let mut sum = 0;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    sum += self.get(a, b);
                }
            }
        }
        sum
    }

    /// Iterates over unordered pairs `(a, b, correlation)` with `a < b`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, u64)> + '_ {
        (0..self.n).flat_map(move |a| ((a + 1)..self.n).map(move |b| (a, b, self.get(a, b))))
    }
}

impl fmt::Display for CorrelationMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "correlation matrix ({} threads):", self.n)?;
        for a in 0..self.n {
            for b in 0..self.n {
                write!(f, "{:>5}", self.get(a, b))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_mem::PageId;

    fn three_thread_access() -> AccessMatrix {
        let mut m = AccessMatrix::new(3, 8);
        // t0: {0,1,2}, t1: {2,3}, t2: {0,2,3,4}
        for p in [0, 1, 2] {
            m.record(0, PageId(p));
        }
        for p in [2, 3] {
            m.record(1, PageId(p));
        }
        for p in [0, 2, 3, 4] {
            m.record(2, PageId(p));
        }
        m
    }

    #[test]
    fn from_access_matches_hand_counts() {
        let c = CorrelationMatrix::from_access(&three_thread_access());
        assert_eq!(c.get(0, 1), 1); // {2}
        assert_eq!(c.get(0, 2), 2); // {0,2}
        assert_eq!(c.get(1, 2), 2); // {2,3}
        assert_eq!(c.get(0, 0), 3);
        assert_eq!(c.get(2, 2), 4);
        assert_eq!(c.get(1, 0), c.get(0, 1), "symmetric");
    }

    #[test]
    fn totals_and_max() {
        let c = CorrelationMatrix::from_access(&three_thread_access());
        assert_eq!(c.total_correlation(), 2 * (1 + 2 + 2));
        assert_eq!(c.max_off_diagonal(), 2);
        let pairs: Vec<_> = c.pairs().collect();
        assert_eq!(pairs, vec![(0, 1, 1), (0, 2, 2), (1, 2, 2)]);
    }

    #[test]
    fn zeros_and_set() {
        let mut c = CorrelationMatrix::zeros(4);
        assert_eq!(c.total_correlation(), 0);
        c.set(1, 3, 7);
        assert_eq!(c.get(3, 1), 7);
        assert_eq!(c.max_off_diagonal(), 7);
    }

    #[test]
    fn from_raw_checks_shape_and_symmetry() {
        let ok = CorrelationMatrix::from_raw(2, vec![0, 5, 5, 0]);
        assert_eq!(ok.get(0, 1), 5);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_raw_rejects_asymmetry() {
        CorrelationMatrix::from_raw(2, vec![0, 5, 4, 0]);
    }

    #[test]
    #[should_panic(expected = "n x n")]
    fn from_raw_rejects_bad_shape() {
        CorrelationMatrix::from_raw(2, vec![0, 5, 5]);
    }

    #[test]
    fn merge_accumulates_rounds() {
        let mut a = CorrelationMatrix::from_raw(2, vec![1, 2, 2, 3]);
        let b = CorrelationMatrix::from_raw(2, vec![10, 0, 0, 5]);
        a.merge(&b);
        assert_eq!(a, CorrelationMatrix::from_raw(2, vec![11, 2, 2, 8]));
    }

    #[test]
    #[should_panic(expected = "same threads")]
    fn merge_shape_mismatch_panics() {
        CorrelationMatrix::zeros(2).merge(&CorrelationMatrix::zeros(3));
    }

    #[test]
    fn csv_round_trips() {
        let m = CorrelationMatrix::from_access(&three_thread_access());
        let csv = crate::render_csv(&m);
        let back = CorrelationMatrix::from_csv(&csv).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(CorrelationMatrix::from_csv("1,2\n3").is_err(), "ragged");
        assert!(
            CorrelationMatrix::from_csv("1,x\n2,3").is_err(),
            "non-numeric"
        );
        assert!(
            CorrelationMatrix::from_csv("0,1\n2,0").is_err(),
            "asymmetric"
        );
        assert_eq!(CorrelationMatrix::from_csv("").unwrap().num_threads(), 0);
    }

    #[test]
    fn display_prints_grid() {
        let c = CorrelationMatrix::from_raw(2, vec![1, 2, 2, 3]);
        let s = c.to_string();
        assert!(s.contains("2 threads"));
        assert!(s.contains('3'));
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use acorr_mem::PageId;
    use proptest::prelude::*;

    proptest! {
        /// Correlation never exceeds either thread's own page count, and the
        /// matrix is symmetric by construction.
        #[test]
        fn bounded_by_diagonal(
            touches in proptest::collection::vec((0usize..6, 0u32..64), 0..200)
        ) {
            let mut access = AccessMatrix::new(6, 64);
            for (t, p) in touches {
                access.record(t, PageId(p));
            }
            let c = CorrelationMatrix::from_access(&access);
            for a in 0..6 {
                for b in 0..6 {
                    prop_assert_eq!(c.get(a, b), c.get(b, a));
                    if a != b {
                        prop_assert!(c.get(a, b) <= c.get(a, a));
                        prop_assert!(c.get(a, b) <= c.get(b, b));
                    }
                }
            }
        }
    }
}
