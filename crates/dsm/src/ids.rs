//! Thread identity.

use std::fmt;

/// Identifies one application thread (global across the cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u16);

impl ThreadId {
    /// The thread's index, for use with slices.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_roundtrip() {
        assert_eq!(ThreadId(5).idx(), 5);
        assert_eq!(ThreadId(5).to_string(), "t5");
        assert!(ThreadId(1) < ThreadId(2));
    }
}
